"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` can fall back to setuptools' legacy editable mode in
environments without the ``wheel`` package (modern PEP-660 editable
installs need it).
"""

from setuptools import setup

setup()
