"""The daemon: scheduling, admission control, HTTP surface, identity."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.corpus import all_apps, app
from repro.obs import LiveAggregator
from repro.report import build_report
from repro.runner import CorpusRunner, ResultCache
from repro.service import (
    AnalysisService,
    JobResult,
    JobSpec,
    QueueFullError,
    ServiceServer,
)
import repro.service.server as server_mod


def _spec(client="anonymous", names=("todolist",)):
    return JobSpec.from_request({
        "apps": [
            {"name": name,
             "files": [{"path": app(name).filename,
                        "text": app(name).source()}]}
            for name in names
        ],
        "client": client,
    }, batch=True)


def _request(url, payload=None):
    """GET (payload None) or POST; returns (status, headers, body bytes)."""
    req = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={} if payload is None
        else {"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture
def server(tmp_path):
    service = AnalysisService(
        jobs=1, cache=ResultCache(tmp_path / "cache"),
        telemetry=LiveAggregator(), queue_limit=4,
    )
    srv = ServiceServer(service, port=0).start()
    yield srv
    srv.close()


# -- scheduler ----------------------------------------------------------------


def test_submit_rejects_past_the_queue_bound():
    service = AnalysisService(queue_limit=2)  # not started: nothing drains
    service.submit(_spec())
    service.submit(_spec())
    with pytest.raises(QueueFullError) as excinfo:
        service.submit(_spec())
    assert excinfo.value.retry_after == 1
    assert service.queue_depth() == 2


def test_clients_are_served_round_robin(monkeypatch):
    served = []

    def fake_execute(spec, runner):
        served.append(spec.client)
        return JobResult(report=build_report([]))

    monkeypatch.setattr(server_mod, "execute_job", fake_execute)
    service = AnalysisService(queue_limit=8)
    jobs = [service.submit(_spec(client=c))
            for c in ("alice", "alice", "alice", "bob", "bob")]
    service.start()
    for job in jobs:
        assert service.wait(job.id, timeout=30).status == "done"
    service.shutdown()
    # alice's backlog does not starve bob: strict alternation while
    # both have queued work
    assert served == ["alice", "bob", "alice", "bob", "alice"]


def test_shutdown_with_jobs_in_flight(monkeypatch):
    release = threading.Event()
    started = threading.Event()

    def slow_execute(spec, runner):
        started.set()
        assert release.wait(timeout=30)
        return JobResult(report=build_report([]))

    monkeypatch.setattr(server_mod, "execute_job", slow_execute)
    service = AnalysisService(queue_limit=8)
    in_flight = service.submit(_spec(client="a"))
    queued = [service.submit(_spec(client="a")) for _ in range(2)]
    service.start()
    assert started.wait(timeout=30)

    done = threading.Event()
    shutter = threading.Thread(
        target=lambda: (service.shutdown(timeout=30), done.set())
    )
    shutter.start()
    release.set()
    shutter.join(timeout=30)
    assert done.is_set()
    # the in-flight job finished; the queued ones were cancelled, with
    # their waiters released
    assert in_flight.status == "done"
    for job in queued:
        assert job.status == "cancelled"
        assert job.done.is_set()
    # a daemon that is shutting down admits nothing
    with pytest.raises(QueueFullError):
        service.submit(_spec())


def test_failed_job_reports_its_error_without_killing_the_daemon(
        monkeypatch):
    calls = []

    def flaky_execute(spec, runner):
        calls.append(spec.client)
        if len(calls) == 1:
            raise RuntimeError("boom")
        return JobResult(report=build_report([]))

    monkeypatch.setattr(server_mod, "execute_job", flaky_execute)
    service = AnalysisService(queue_limit=8)
    first = service.submit(_spec(client="a"))
    second = service.submit(_spec(client="a"))
    service.start()
    assert service.wait(first.id, timeout=30).status == "failed"
    assert "RuntimeError: boom" in first.error
    assert service.wait(second.id, timeout=30).status == "done"
    service.shutdown()


# -- HTTP surface -------------------------------------------------------------


def _analyze_payload(name="todolist", **extra):
    spec = app(name)
    payload = {"files": [{"path": spec.filename, "text": spec.source()}],
               "wait": True}
    payload.update(extra)
    return payload


def test_post_analyze_and_read_back_artifacts(server):
    status, _, body = _request(server.url + "/v1/analyze",
                               _analyze_payload(sarif=True))
    assert status == 200
    job = json.loads(body)
    assert job["status"] == "done"
    assert job["stats"]["analyzed"] == 1
    assert job["apps"] == ["app"]
    assert set(job["counts"]) == {"app"}

    status, _, report = _request(server.url + job["report"])
    assert status == 200
    assert sorted(json.loads(report)["apps"]) == ["app"]
    status, _, sarif = _request(server.url + job["sarif"])
    assert status == 200
    assert json.loads(sarif)["version"] == "2.1.0"

    status, _, listing = _request(server.url + "/v1/jobs")
    assert status == 200
    listed = json.loads(listing)
    assert [j["id"] for j in listed["jobs"]] == [job["id"]]
    assert listed["queued"] == 0


def test_second_post_of_the_same_app_hits_the_warm_cache(server):
    _, _, first_body = _request(server.url + "/v1/analyze",
                                _analyze_payload())
    first = json.loads(first_body)
    assert first["stats"] == {"analyzed": 1, "cached": 0, "faulted": 0,
                              "retries": 0, "cache_hits": 0,
                              "cache_misses": 1, "cache_stores": 1}
    status, _, second_body = _request(server.url + "/v1/analyze",
                                      _analyze_payload())
    assert status == 200
    second = json.loads(second_body)
    # the warm path: no parse/compile/analyze work at all, one replay
    assert second["stats"] == {"analyzed": 0, "cached": 1, "faulted": 0,
                               "retries": 0, "cache_hits": 1,
                               "cache_misses": 0, "cache_stores": 0}
    # warm and cold runs publish byte-identical reports
    _, _, cold = _request(server.url + first["report"])
    _, _, warm = _request(server.url + second["report"])
    assert cold == warm
    # the mounted telemetry surface counts the replay too
    _, _, metrics = _request(server.url + "/metrics")
    text = metrics.decode()
    assert "nadroid_telemetry_apps_cached_total 1" in text
    assert "nadroid_telemetry_apps_analyzed_total 1" in text


def test_overlapping_batches_from_two_clients(server, tmp_path):
    alice = {"apps": [
        {"name": n, "files": [{"path": app(n).filename,
                               "text": app(n).source()}]}
        for n in ("todolist", "clipstack")
    ], "client": "alice", "wait": True}
    bob = {"apps": [
        {"name": n, "files": [{"path": app(n).filename,
                               "text": app(n).source()}]}
        for n in ("clipstack", "swiftnotes")
    ], "client": "bob", "wait": True}

    status, _, body = _request(server.url + "/v1/batch", alice)
    assert status == 200
    alice_job = json.loads(body)
    assert alice_job["stats"]["analyzed"] == 2

    status, _, body = _request(server.url + "/v1/batch", bob)
    assert status == 200
    bob_job = json.loads(body)
    # the shared app rides alice's cache entry across clients
    assert bob_job["stats"]["cached"] == 1
    assert bob_job["stats"]["analyzed"] == 1

    # and the HTTP path's bytes match a direct, uncached job execution
    from repro.service import execute_job

    _, _, served = _request(server.url + bob_job["report"])
    direct = execute_job(
        JobSpec.from_request(bob, batch=True), CorpusRunner(jobs=1)
    )
    assert served.decode() == direct.report_json()


def test_queue_bound_surfaces_as_429_with_retry_after(tmp_path,
                                                      monkeypatch):
    release = threading.Event()
    started = threading.Event()

    def slow_execute(spec, runner):
        started.set()
        assert release.wait(timeout=30)
        return JobResult(report=build_report([]))

    monkeypatch.setattr(server_mod, "execute_job", slow_execute)
    service = AnalysisService(queue_limit=1)
    srv = ServiceServer(service, port=0).start()
    try:
        payload = _analyze_payload()
        payload.pop("wait")
        status, headers, _ = _request(srv.url + "/v1/analyze", payload)
        assert status == 202
        assert started.wait(timeout=30)  # running: the queue is empty
        status, _, _ = _request(srv.url + "/v1/analyze", payload)
        assert status == 202  # fills the one queue slot
        status, headers, body = _request(srv.url + "/v1/analyze", payload)
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert "queue is full" in json.loads(body)["error"]
        # draining the queue clears the backpressure
        release.set()
        status, _, body = _request(srv.url + "/v1/analyze",
                                   dict(payload, wait=True))
        assert status == 200
    finally:
        release.set()
        srv.close()


def test_http_errors(server):
    status, _, _ = _request(server.url + "/v1/jobs/nope")
    assert status == 404
    status, _, _ = _request(server.url + "/nope")
    assert status == 404
    status, _, body = _request(server.url + "/v1/analyze", {"files": []})
    assert status == 400
    assert "files" in json.loads(body)["error"]
    req = urllib.request.Request(server.url + "/v1/analyze",
                                 data=b"not json{",
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        urllib.request.urlopen(req)
        raise AssertionError("malformed body passed")
    except urllib.error.HTTPError as exc:
        assert exc.code == 400


def test_server_reuses_addresses_and_accepts_port_zero():
    from repro.obs.telemetry import LoopbackHTTPServer

    assert LoopbackHTTPServer.allow_reuse_address is True
    service = AnalysisService()
    first = ServiceServer(service, port=0).bind()
    port = first.port
    assert port not in (None, 0)
    first.close()
    # back-to-back rebinds of the just-released port must not flake
    second = ServiceServer(AnalysisService(), port=port).bind()
    assert second.port == port
    second.close()


# -- corpus-wide byte-identity ------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 4])
def test_daemon_reports_match_repro_analyze_over_the_corpus(
        tmp_path, jobs):
    """The acceptance bar: for every corpus app, the daemon's report is
    byte-identical to ``repro analyze --report-out``, at daemon fan-out
    1 and 4 alike."""
    from repro.cli import main

    sources = tmp_path / "sources"
    sources.mkdir()
    service = AnalysisService(
        jobs=jobs, cache=ResultCache(tmp_path / f"cache-{jobs}"),
        queue_limit=64,
    )
    srv = ServiceServer(service, port=0).start()
    try:
        for spec in all_apps():
            path = sources / spec.filename
            path.write_text(spec.source())
            out = tmp_path / f"{spec.name}-cli.json"
            code = main(["analyze", str(path),
                         "--report-out", str(out)])
            assert code in (0, 1)
            status, _, body = _request(srv.url + "/v1/analyze", {
                "files": [{"path": str(path), "text": spec.source()}],
                "wait": True,
            })
            assert status == 200
            job = json.loads(body)
            assert job["status"] == "done"
            _, _, served = _request(srv.url + job["report"])
            assert served.decode() == out.read_text(), spec.name
    finally:
        srv.close()


def test_batch_reports_are_identical_across_daemon_fanout(tmp_path):
    """One 27-app batch, executed at --jobs 1 and --jobs 4 with cold
    separate caches, publishes byte-identical reports."""
    batch = {"apps": [
        {"name": spec.name,
         "files": [{"path": spec.filename, "text": spec.source()}]}
        for spec in all_apps()
    ], "wait": True}
    reports = []
    for jobs in (1, 4):
        service = AnalysisService(
            jobs=jobs, cache=ResultCache(tmp_path / f"cache-{jobs}"),
        )
        srv = ServiceServer(service, port=0).start()
        try:
            status, _, body = _request(srv.url + "/v1/batch", batch)
            assert status == 200
            job = json.loads(body)
            assert job["status"] == "done"
            assert job["stats"]["analyzed"] == len(batch["apps"])
            _, _, served = _request(srv.url + job["report"])
            reports.append(served)
        finally:
            srv.close()
    assert reports[0] == reports[1]
