"""The job layer: spec validation, execution, CLI byte-identity."""

import json

import pytest

from repro.corpus import app
from repro.runner import CorpusRunner
from repro.service import (
    AppSource,
    execute_job,
    JobSpec,
    JobSpecError,
    SINGLE_APP_NAME,
)


def _app_source(name="todolist", app_name="a"):
    spec = app(name)
    return AppSource(name=app_name, files=((spec.filename, spec.source()),))


# -- spec validation ----------------------------------------------------------


def test_spec_rejects_empty_apps():
    with pytest.raises(JobSpecError, match="at least one app"):
        JobSpec(apps=())


def test_spec_rejects_unknown_engine():
    with pytest.raises(JobSpecError, match="unknown engine"):
        JobSpec(apps=(_app_source(),), engine="prolog")


def test_spec_rejects_duplicate_app_names():
    with pytest.raises(JobSpecError, match="unique"):
        JobSpec(apps=(_app_source(app_name="x"),
                      _app_source(name="clipstack", app_name="x")))


@pytest.mark.parametrize("kwargs", [
    {"k": -1},
    {"timeout": 0},
    {"timeout": -2.5},
    {"max_retries": -1},
])
def test_spec_rejects_bad_numbers(kwargs):
    with pytest.raises(JobSpecError):
        JobSpec(apps=(_app_source(),), **kwargs)


def test_policy_always_keeps_going():
    spec = JobSpec(apps=(_app_source(),), timeout=5.0, max_retries=2)
    policy = spec.policy()
    assert policy.keep_going is True
    assert policy.timeout == 5.0
    assert policy.max_retries == 2


# -- request parsing ----------------------------------------------------------


def test_from_request_single_app_uses_the_cli_app_key():
    spec = JobSpec.from_request(
        {"files": [{"path": "a.mjava", "text": "class A {}"}]},
        batch=False,
    )
    assert [a.name for a in spec.apps] == [SINGLE_APP_NAME]
    assert spec.apps[0].files == (("a.mjava", "class A {}"),)
    assert spec.k == 2
    assert spec.engine == "datalog"
    assert spec.client == "anonymous"
    assert spec.sarif is False


def test_from_request_batch_parses_every_app():
    spec = JobSpec.from_request({
        "apps": [
            {"name": "one", "files": [{"path": "a", "text": "x"}]},
            {"name": "two", "files": [{"path": "b", "text": "y"}]},
        ],
        "client": "ci",
        "k": 1,
        "engine": "imperative",
        "timeout": 30,
        "sarif": True,
    }, batch=True)
    assert [a.name for a in spec.apps] == ["one", "two"]
    assert (spec.client, spec.k, spec.engine) == ("ci", 1, "imperative")
    assert spec.timeout == 30.0
    assert spec.sarif is True


@pytest.mark.parametrize("payload, batch, match", [
    ({}, False, "files"),
    ({"files": []}, False, "files"),
    ({"files": [{"path": "a"}]}, False, "text"),
    ({"files": [{"path": "a", "text": 3}]}, False, "text"),
    ({}, True, "apps"),
    ({"apps": []}, True, "apps"),
    ({"apps": [{"files": [{"path": "a", "text": "x"}]}]}, True, "name"),
    ({"files": [{"path": "a", "text": "x"}], "client": ""}, False,
     "client"),
    ({"files": [{"path": "a", "text": "x"}], "k": "lots"}, False,
     "numeric"),
])
def test_from_request_rejects_malformed_bodies(payload, batch, match):
    with pytest.raises(JobSpecError, match=match):
        JobSpec.from_request(payload, batch=batch)


# -- execution ----------------------------------------------------------------


def test_execute_job_analyzes_a_batch():
    spec = JobSpec(apps=(
        _app_source("todolist", "todolist"),
        _app_source("clipstack", "clipstack"),
    ))
    result = execute_job(spec, CorpusRunner(jobs=1))
    assert sorted(result.report.apps) == ["clipstack", "todolist"]
    assert result.stats["analyzed"] == 2
    assert result.stats["faulted"] == 0
    assert result.faults == []
    assert result.sarif_dict() is None
    counts = result.counts()
    assert set(counts) == {"clipstack", "todolist"}
    # the report text is the canonical report-file format
    payload = json.loads(result.report_json())
    assert sorted(payload["apps"]) == ["clipstack", "todolist"]


def test_execute_job_records_a_fault_per_broken_app():
    spec = JobSpec(apps=(
        AppSource(name="broken", files=(("b.mjava", "class {"),)),
        _app_source("todolist", "todolist"),
    ))
    result = execute_job(spec, CorpusRunner(jobs=1, policy=spec.policy()))
    assert result.stats["faulted"] == 1
    assert result.stats["analyzed"] == 1
    assert len(result.faults) == 1
    assert result.faults[0]["app"] == "broken"
    # the report still carries one entry per input app
    assert sorted(result.report.apps) == ["broken", "todolist"]


def test_execute_job_sarif_round_trips():
    spec = JobSpec(apps=(_app_source(),), sarif=True)
    result = execute_job(spec, CorpusRunner(jobs=1))
    sarif = result.sarif_dict()
    assert sarif is not None and sarif["version"] == "2.1.0"


# -- CLI byte-identity --------------------------------------------------------


def test_single_app_job_matches_repro_analyze(tmp_path):
    """The tentpole contract in miniature: one job's report equals the
    ``repro analyze --report-out`` artifact, byte for byte."""
    from repro.cli import main

    spec_app = app("todolist")
    src = tmp_path / spec_app.filename
    src.write_text(spec_app.source())
    out = tmp_path / "cli-report.json"
    code = main(["analyze", str(src), "--report-out", str(out)])
    assert code in (0, 1)  # 1 = warnings remain, still a clean run

    job = JobSpec.from_request({
        "files": [{"path": str(src), "text": spec_app.source()}],
    }, batch=False)
    result = execute_job(job, CorpusRunner(jobs=1))
    assert result.report_json() == out.read_text()
