"""Injector unit tests: patch integrity and injection census."""

import pytest

from repro.corpus.injector import (
    all_injections,
    DETECTED,
    INJECTED_APPS,
    injected_module,
    injected_source,
    injections_for,
    MISSED,
    PRUNED_UNSOUND,
)


def test_injection_totals_match_paper():
    injections = all_injections()
    assert len(injections) == 28
    by_expectation = {}
    for injection in injections:
        by_expectation.setdefault(injection.expectation, []).append(injection)
    assert len(by_expectation[MISSED]) == 2
    assert len(by_expectation[PRUNED_UNSOUND]) == 3
    assert len(by_expectation[DETECTED]) == 23


def test_per_app_counts_match_table2():
    counts = {name: len(injections_for(name)) for name in INJECTED_APPS}
    assert counts == {
        "tomdroid": 1, "sgtpuzzles": 9, "aard": 1, "music": 6,
        "mms": 6, "browser": 3, "mytracks2": 1, "k9mail": 1,
    }


@pytest.mark.parametrize("name", INJECTED_APPS)
def test_injected_source_differs_and_compiles(name):
    from repro.corpus import app

    original = app(name).source()
    patched = injected_source(name)
    assert patched != original
    assert "injected" in patched
    module = injected_module(name)
    assert module.lookup_class("DummyMain") is None  # not yet threadified


def test_injection_ids_unique():
    ids = [i.injection_id for i in all_injections()]
    assert len(set(ids)) == len(ids)


def test_patches_only_touch_their_app():
    # applying tomdroid's patches must not depend on other apps' sources
    text = injected_source("tomdroid")
    assert "syncManager = null;" in text
