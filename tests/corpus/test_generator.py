"""The seeded app generator: determinism, ground-truth labels, the
pattern catalog end-to-end, negative controls, and the registry error."""

import pytest

from repro.core import analyze_module
from repro.corpus import (
    app,
    generate_app,
    generate_corpus,
    generated_app_index,
    generated_app_name,
    GeneratorConfig,
    GroundTruthLabel,
    label_manifest,
    labels_from_manifest,
    PATTERNS,
    UnknownAppError,
)
from repro.corpus.generator import _emit_skeleton, _Source
from repro.lowering import lower_sources

CONFIG = GeneratorConfig(seed=42, count=12)


# -- determinism --------------------------------------------------------------


def test_same_seed_same_apps():
    first = generate_corpus(CONFIG)
    second = generate_corpus(CONFIG)
    assert [a.source for a in first] == [a.source for a in second]
    assert [a.labels for a in first] == [a.labels for a in second]
    assert label_manifest(CONFIG, first) == label_manifest(CONFIG, second)


def test_apps_are_independently_reproducible():
    # generate_app(config, i) must not depend on apps 0..i-1 having been
    # generated (workers regenerate single apps in isolation)
    corpus = generate_corpus(CONFIG)
    lone = generate_app(CONFIG, 7)
    assert lone.source == corpus[7].source
    assert lone.labels == corpus[7].labels


def test_different_seeds_differ():
    a = generate_corpus(GeneratorConfig(seed=1, count=6))
    b = generate_corpus(GeneratorConfig(seed=2, count=6))
    assert [x.source for x in a] != [y.source for y in b]


def test_app_names_encode_seed_and_index():
    name = generated_app_name(42, 3)
    assert name == "g42-0003"
    assert generated_app_index(name) == 3


def test_labels_point_at_the_marked_lines():
    for gen in generate_corpus(CONFIG):
        lines = gen.source.splitlines()
        for label in gen.labels:
            assert f"{label.field_name}." in lines[label.use_line - 1] \
                or f"{label.field_name} " in lines[label.use_line - 1]
            assert f"{label.field_name} = null" in lines[label.free_line - 1]


def test_manifest_round_trips():
    apps = generate_corpus(CONFIG)
    manifest = label_manifest(CONFIG, apps)
    assert manifest["seed"] == CONFIG.seed
    assert manifest["count"] == CONFIG.count
    assert GeneratorConfig.from_dict(manifest["config"]) == CONFIG
    flat = labels_from_manifest(manifest)
    assert flat == [label for a in apps for label in a.labels]
    assert all(isinstance(label, GroundTruthLabel) for label in flat)


# -- the pattern catalog, end-to-end ------------------------------------------


def _analyze_single_pattern(emitter):
    src = _Source()
    _emit_skeleton(src)
    injection = emitter(src, 0)
    module = lower_sources(src.render(), module_name="single", seal=False)
    result = analyze_module(module)
    use_line = src.marks[injection.use_key]
    free_line = src.marks[injection.free_key]
    matched = [
        w for w in result.warnings
        if (w.fieldref.class_name, w.fieldref.field_name)
        == (injection.class_name, injection.field_name)
        and any(o.use.line == use_line and o.free.line == free_line
                for o in w.occurrences)
    ]
    return injection, matched


@pytest.mark.parametrize("name,emitter", PATTERNS)
def test_pattern_detected_with_expected_outcome(name, emitter):
    injection, matched = _analyze_single_pattern(emitter)
    assert matched, f"{name}: injected pair not detected"
    surviving = [w for w in matched if w.status == "remaining"]
    if injection.expected == "surviving":
        assert surviving, f"{name}: expected to survive, was filtered"
        assert injection.pair_type in {w.pair_type() for w in surviving}
    else:
        assert not surviving, f"{name}: expected filtered, survived"


# -- negative control ---------------------------------------------------------


def test_clean_apps_produce_zero_warnings():
    # clean_ratio=1.0 forces every app clean; a clean app has no frees at
    # all, so even the *potential* warning set must be empty
    config = GeneratorConfig(seed=9, count=8, clean_ratio=1.0)
    for gen in generate_corpus(config):
        assert gen.clean and not gen.labels
        module = lower_sources(gen.source, module_name=gen.name, seal=False)
        result = analyze_module(module)
        assert not result.warnings, f"{gen.name}: {result.warnings}"


# -- the registry error (unknown --apps entry) --------------------------------


def test_registry_raises_self_describing_error():
    with pytest.raises(UnknownAppError) as excinfo:
        app("nosuchapp")
    message = str(excinfo.value)
    assert "nosuchapp" in message
    assert "connectbot" in message  # names the known apps
    assert isinstance(excinfo.value, KeyError)  # old callers still catch


def test_cli_unknown_app_exits_2_with_one_line(capsys):
    from repro.cli import main

    code = main(["corpus", "--apps", "nosuchapp", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 2
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1
    assert "unknown corpus app 'nosuchapp'" in lines[0]
