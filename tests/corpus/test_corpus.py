"""Corpus integrity: every app compiles, analyzes, and matches its spec."""

import pytest

from repro.core import analyze_module
from repro.corpus import all_apps, app, train_apps
from repro.corpus import test_apps as corpus_test_group

ALL_NAMES = sorted(a.name for a in all_apps())

_RESULTS = {}


def analyzed(spec):
    if spec.name not in _RESULTS:
        module = spec.compile()
        _RESULTS[spec.name] = analyze_module(module, spec.manifest_for(module))
    return _RESULTS[spec.name]


def test_corpus_has_27_apps():
    assert len(all_apps()) == 27
    assert len(train_apps()) == 7
    assert len(corpus_test_group()) == 20


def test_app_names_unique_and_sources_exist():
    for spec in all_apps():
        assert spec.source().strip(), f"{spec.name} source is empty"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_app_compiles_and_seals(name):
    spec = app(name)
    result = analyzed(spec)
    assert result.program.module.sealed


@pytest.mark.parametrize("name", ALL_NAMES)
def test_surviving_fields_match_ground_truth(name):
    spec = app(name)
    result = analyzed(spec)
    surviving = {w.fieldref.field_name for w in result.remaining()}
    expected = set(spec.true_uaf_fields) | set(spec.fp_fields)
    assert surviving == expected, (
        f"{name}: surviving {sorted(surviving)} != expected {sorted(expected)}"
    )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_counts_are_monotone(name):
    spec = app(name)
    counts = analyzed(spec).counts()
    assert counts["potential"] >= counts["after_sound"] >= counts["after_unsound"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_shape_matches_paper_row(name):
    """Zero/non-zero structure of the Table 1 row is preserved."""
    spec = app(name)
    counts = analyzed(spec).counts()
    assert (counts["potential"] > 0) == (spec.paper.potential > 0)
    assert (counts["after_unsound"] > 0) == (spec.paper.after_unsound > 0)
    if spec.paper.after_sound == 0:
        assert counts["after_sound"] == 0


def test_true_uafs_concentrate_in_pc_and_thread_categories():
    """Section 8.4's hypotheses: harmful UAFs live mostly where PCs or
    non-reachable threads are involved."""
    harmful_categories = []
    for spec in all_apps():
        if not spec.true_uaf_fields:
            continue
        result = analyzed(spec)
        for w in result.remaining():
            if w.fieldref.field_name in spec.true_uaf_fields:
                harmful_categories.append(w.pair_type())
    assert harmful_categories
    pc_or_thread = [
        c for c in harmful_categories
        if "PC" in c or c in ("C-RT", "C-NT")
    ]
    assert len(pc_or_thread) / len(harmful_categories) > 0.8


def test_total_true_fields_shape():
    # paper: 88 harmful UAFs concentrated in 6 apps; we scale the counts
    # but keep the distribution
    apps_with_true = {a.name for a in all_apps() if a.true_uaf_fields}
    assert apps_with_true == {
        "connectbot", "mytracks1", "firefox", "aard", "mytracks2", "qksms",
    }


@pytest.mark.parametrize(
    "name", ["connectbot", "aard", "qksms", "mytracks2"]
)
def test_validator_confirms_ground_truth_sample(name):
    """Dynamic cross-check on a fast subset (the full sweep is a bench)."""
    from repro.runtime import Simulator, validate_warning

    spec = app(name)
    result = analyzed(spec)
    program = result.program

    def make_sim():
        return Simulator(program.module, program.manifest)

    for warning in result.remaining():
        expected = warning.fieldref.field_name in spec.true_uaf_fields
        verdict = validate_warning(
            make_sim, warning, random_attempts=40,
            systematic_branches=15, max_decisions=800,
        )
        assert verdict.confirmed == expected, (
            f"{name}.{warning.fieldref.field_name}: "
            f"confirmed={verdict.confirmed}, expected={expected}"
        )
