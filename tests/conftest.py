"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.lowering import compile_app


@pytest.fixture
def compile_source():
    """Compile MiniDroid source text to a sealed, verified IR module."""

    def _compile(source: str, **kwargs):
        return compile_app(source, **kwargs)

    return _compile
