"""Tests for repro.obs.exporters (ISSUE 8): the Prometheus text,
Chrome trace-event, and collapsed-stack translations.

Covers the format contracts documented in ``docs/observability.md``:
byte-stable Prometheus exposition with the structured label mapping
(hotspot.*/mem.*/runner.* families), label escaping for hostile and
unicode names, structurally valid trace JSON that round-trips
``json.loads`` with monotone timestamps per (pid, tid) lane, and
self-time-weighted collapsed stacks.
"""

import json

from repro.obs import (
    chrome_trace,
    collapsed_stacks,
    MetricsSnapshot,
    prometheus_text,
    trace_from_events,
    write_trace,
)
from repro.obs.exporters import (
    escape_label_value,
    metric_family,
    sanitize_metric_name,
)


def _span(name, duration, children=(), attrs=None):
    node = {"name": name, "duration_s": duration,
            "children": list(children)}
    if attrs:
        node["attrs"] = attrs
    return node


# -- Prometheus text exposition ----------------------------------------------


def test_prometheus_empty_snapshot_is_empty_string():
    assert prometheus_text(MetricsSnapshot()) == ""


def test_prometheus_counter_and_gauge_families():
    snapshot = MetricsSnapshot(
        counters={"datalog.passes": 3, "pointsto.worklist.popped": 41},
        gauges={"telemetry.uptime_seconds": 1.5},
    )
    text = prometheus_text(snapshot)
    assert "# TYPE nadroid_datalog_passes_total counter" in text
    assert "nadroid_datalog_passes_total 3" in text
    assert "nadroid_pointsto_worklist_popped_total 41" in text
    assert "# TYPE nadroid_telemetry_uptime_seconds gauge" in text
    assert "nadroid_telemetry_uptime_seconds 1.5" in text
    assert text.endswith("\n")


def test_prometheus_output_is_byte_stable():
    snapshot = MetricsSnapshot(
        counters={"b.two": 2, "a.one": 1},
        gauges={"z.gauge": 0.25},
    )
    assert prometheus_text(snapshot) == prometheus_text(snapshot)
    # families come out sorted regardless of insertion order
    reversed_snapshot = MetricsSnapshot(
        counters={"a.one": 1, "b.two": 2},
        gauges={"z.gauge": 0.25},
    )
    assert prometheus_text(snapshot) == prometheus_text(reversed_snapshot)


def test_prometheus_hotspot_family_mapping():
    snapshot = MetricsSnapshot(
        counters={"hotspot.datalog.rule.race#1.derived": 7},
        gauges={"hotspot.pointsto.pair.M@ctx.seconds": 0.5},
    )
    text = prometheus_text(snapshot)
    assert ('nadroid_hotspot_count_total{domain="datalog.rule",'
            'metric="derived",unit="race#1"} 7') in text
    assert ('nadroid_hotspot_seconds{domain="pointsto.pair",'
            'unit="M@ctx"} 0.5') in text


def test_prometheus_mem_and_runner_family_mapping():
    snapshot = MetricsSnapshot(
        counters={"runner.faults.timeout": 2, "runner.cache.hits": 5},
        gauges={"mem.app.peak_kb": 100.0,
                "mem.stage.pointsto.peak_kb": 40.0},
    )
    text = prometheus_text(snapshot)
    assert 'nadroid_runner_faults_total{kind="timeout"} 2' in text
    assert "nadroid_runner_cache_hits_total 5" in text
    assert 'nadroid_mem_peak_kb{scope="app"} 100' in text
    assert ('nadroid_mem_peak_kb{scope="stage",stage="pointsto"} 40'
            in text)
    # one # TYPE header per family even with several labeled samples
    assert text.count("# TYPE nadroid_mem_peak_kb gauge") == 1


def test_prometheus_label_escaping():
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("a\nb") == "a\\nb"
    snapshot = MetricsSnapshot(
        counters={'runner.faults.we"ird': 1},
    )
    text = prometheus_text(snapshot)
    assert 'kind="we\\"ird"' in text


def test_prometheus_metric_names_are_always_legal():
    import re

    legal = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
    for name in ("höt.mötric", "hotspot.datalog.rule.r#@!.x",
                 "mem.stage.po intso.peak_kb", "123.starts.with.digit"):
        family, _ = metric_family(name, True)
        assert legal.match(family), family
    assert legal.match(sanitize_metric_name("ünïcode.metric"))


def test_prometheus_unicode_app_name_survives_in_labels():
    snapshot = MetricsSnapshot(
        counters={"hotspot.datalog.rule.règle-α.derived": 1},
    )
    text = prometheus_text(snapshot)
    assert 'unit="règle-α"' in text
    # the family name itself stays ASCII-legal
    for line in text.splitlines():
        if not line.startswith("#"):
            assert line.split("{")[0].isascii()


# -- Chrome trace-event JSON --------------------------------------------------


def _lane_timestamps(trace):
    lanes = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "M":
            continue
        lanes.setdefault((event["pid"], event["tid"]), []).append(
            event["ts"]
        )
    return lanes


def test_chrome_trace_structure_and_roundtrip():
    snapshot = MetricsSnapshot(spans=[
        _span("app:demo", 0.01, [
            _span("lowering", 0.004),
            _span("detection", 0.005, [_span("detect", 0.003)]),
        ]),
    ])
    trace = chrome_trace({"demo": snapshot})
    assert trace["displayTimeUnit"] == "ms"
    # round-trips json exactly
    assert json.loads(json.dumps(trace)) == trace
    names = [e["name"] for e in trace["traceEvents"]]
    assert "process_name" in names  # the pid metadata
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in complete] == \
        ["app:demo", "lowering", "detection", "detect"]
    for event in complete:
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert isinstance(event["dur"], int) and event["dur"] >= 0
    # children are laid out inside the parent: lowering at 0,
    # detection after it
    by_name = {e["name"]: e for e in complete}
    assert by_name["app:demo"]["ts"] == 0
    assert by_name["lowering"]["ts"] == 0
    assert by_name["detection"]["ts"] == by_name["lowering"]["dur"]


def test_chrome_trace_timestamps_monotone_per_lane():
    snapshot = MetricsSnapshot(spans=[
        _span("root", 0.02, [
            _span("a", 0.005), _span("b", 0.007, [_span("c", 0.002)]),
        ]),
    ])
    other = MetricsSnapshot(spans=[_span("root", 0.01)])
    trace = chrome_trace({"one": snapshot, "twö": other})
    for lane, stamps in _lane_timestamps(trace).items():
        assert stamps == sorted(stamps), lane


def test_chrome_trace_assigns_one_pid_per_app_in_input_order():
    apps = {"alpha": MetricsSnapshot(spans=[_span("x", 0.001)]),
            "beta": MetricsSnapshot(spans=[_span("y", 0.001)])}
    trace = chrome_trace(apps)
    metas = [e for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert [(m["pid"], m["args"]["name"]) for m in metas] == \
        [(1, "app:alpha"), (2, "app:beta")]


def test_chrome_trace_unclosed_span_gets_zero_duration():
    snapshot = MetricsSnapshot(spans=[
        {"name": "open", "duration_s": None, "children": []},
    ])
    trace = chrome_trace({"app": snapshot})
    (event,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert event["dur"] == 0


def test_chrome_trace_includes_event_stream_instants():
    snapshot = MetricsSnapshot(spans=[_span("root", 0.01)])
    records = [
        {"schema": 1, "event": "run-start", "t": 0.0, "kind": "table1"},
        {"schema": 1, "event": "cache-hit", "t": 0.002, "app": "demo"},
    ]
    trace = chrome_trace({"demo": snapshot}, events=records)
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["run-start", "cache-hit"]
    assert all(e["pid"] == 0 for e in instants)
    assert instants[1]["ts"] == 2000  # microseconds


def test_trace_from_events_builds_real_time_lanes():
    records = [
        {"schema": 1, "event": "run-start", "t": 0.0, "kind": "x",
         "apps": 2},
        {"schema": 1, "event": "app-start", "t": 0.001, "app": "a"},
        {"schema": 1, "event": "app-start", "t": 0.001, "app": "b"},
        {"schema": 1, "event": "retry", "t": 0.002, "app": "a"},
        {"schema": 1, "event": "app-done", "t": 0.010, "app": "a",
         "status": "analyzed", "duration_s": 0.009},
        {"schema": 1, "event": "app-done", "t": 0.012, "app": "b",
         "status": "faulted"},
        {"schema": 1, "event": "run-end", "t": 0.012},
    ]
    trace = trace_from_events(records)
    assert json.loads(json.dumps(trace)) == trace
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"a", "b"}
    by_name = {e["name"]: e for e in complete}
    # apps get distinct lanes, so the overlap is visible
    assert by_name["a"]["tid"] != by_name["b"]["tid"]
    assert by_name["a"]["ts"] == 1000 and by_name["a"]["dur"] == 9000
    assert by_name["a"]["args"]["status"] == "analyzed"
    retry = [e for e in trace["traceEvents"] if e["name"] == "retry"]
    assert retry and retry[0]["tid"] == by_name["a"]["tid"]
    for lane, stamps in _lane_timestamps(trace).items():
        assert stamps == sorted(stamps), lane


def test_write_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    trace = chrome_trace(
        {"app": MetricsSnapshot(spans=[_span("root", 0.001)])}
    )
    write_trace(str(path), trace)
    assert json.loads(path.read_text()) == trace


# -- collapsed-stack flamegraph -----------------------------------------------


def test_collapsed_stacks_empty_input():
    assert collapsed_stacks([]) == ""
    assert collapsed_stacks([MetricsSnapshot()]) == ""


def test_collapsed_stacks_self_time_weighting():
    snapshot = MetricsSnapshot(spans=[
        _span("root", 0.010, [_span("child", 0.004)]),
    ])
    text = collapsed_stacks([snapshot])
    lines = dict(
        line.rsplit(" ", 1) for line in text.strip().splitlines()
    )
    # root's self time is 10ms - 4ms = 6ms
    assert int(lines["root"]) == 6000
    assert int(lines["root;child"]) == 4000


def test_collapsed_stacks_sanitizes_separators_and_aggregates():
    one = MetricsSnapshot(spans=[_span("a b;c", 0.002)])
    two = MetricsSnapshot(spans=[_span("a b;c", 0.003)])
    text = collapsed_stacks([one, two])
    (line,) = text.strip().splitlines()
    frame, value = line.rsplit(" ", 1)
    assert ";" not in frame.replace("_", "") and " " not in frame
    assert int(value) == 5000  # aggregated across snapshots


def test_collapsed_stacks_includes_hotspot_lines():
    snapshot = MetricsSnapshot(
        gauges={"hotspot.datalog.rule.race.seconds": 0.5},
    )
    text = collapsed_stacks([snapshot])
    assert "hotspot;datalog.rule;race 500000" in text
