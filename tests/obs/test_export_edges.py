"""Edge cases in the text exporters: zero-duration spans, unclosed
spans, and run summaries built from sparse snapshots."""

from repro.obs import MetricsSnapshot, render_spans
from repro.obs.export import describe_run


def test_render_spans_zero_duration_span():
    text = render_spans([{"name": "noop", "duration_s": 0.0}])
    assert text == "noop  0.00ms"


def test_render_spans_unclosed_span_shows_a_question_mark():
    """A crash can serialize a span before it closes; the renderer must
    not blow up on the missing duration."""
    spans = [{
        "name": "app:demo", "duration_s": None,
        "children": [{"name": "lowering", "duration_s": 0.002}],
    }]
    lines = render_spans(spans).splitlines()
    assert lines[0] == "app:demo  ?"
    assert lines[1] == "  lowering  2.00ms"


def test_render_spans_boundary_between_ms_and_s():
    text = render_spans([{"name": "slow", "duration_s": 1.5},
                         {"name": "fast", "duration_s": 0.9994}])
    assert text.splitlines() == ["slow  1.50s", "fast  999.40ms"]


def test_describe_run_with_gauges_but_no_counters():
    """A run that analyzed nothing (empty corpus) still produces a
    coherent line from gauges alone."""
    snapshot = MetricsSnapshot(
        counters={},
        gauges={"runner.jobs": 4.0, "runner.wall_seconds": 1.25},
        spans=[],
    )
    assert describe_run(snapshot) == \
        "0 apps (0 analyzed, 0 from cache) in 1.25s with 4 jobs"


def test_describe_run_empty_snapshot():
    line = describe_run(MetricsSnapshot(counters={}, gauges={}, spans=[]))
    assert line == "0 apps (0 analyzed, 0 from cache) in 0.00s with 1 job"
