"""Edge cases in the text exporters: zero-duration spans, unclosed
spans, and run summaries built from sparse snapshots."""

from repro.obs import MetricsSnapshot, render_spans
from repro.obs.export import describe_run


def test_render_spans_zero_duration_span():
    text = render_spans([{"name": "noop", "duration_s": 0.0}])
    assert text == "noop  0.00ms"


def test_render_spans_unclosed_span_shows_a_question_mark():
    """A crash can serialize a span before it closes; the renderer must
    not blow up on the missing duration."""
    spans = [{
        "name": "app:demo", "duration_s": None,
        "children": [{"name": "lowering", "duration_s": 0.002}],
    }]
    lines = render_spans(spans).splitlines()
    assert lines[0] == "app:demo  ?"
    assert lines[1] == "  lowering  2.00ms"


def test_render_spans_boundary_between_ms_and_s():
    text = render_spans([{"name": "slow", "duration_s": 1.5},
                         {"name": "fast", "duration_s": 0.9994}])
    assert text.splitlines() == ["slow  1.50s", "fast  999.40ms"]


def test_describe_run_with_gauges_but_no_counters():
    """A run that analyzed nothing (empty corpus) still produces a
    coherent line from gauges alone."""
    snapshot = MetricsSnapshot(
        counters={},
        gauges={"runner.jobs": 4.0, "runner.wall_seconds": 1.25},
        spans=[],
    )
    assert describe_run(snapshot) == \
        "0 apps (0 analyzed, 0 from cache) in 1.25s with 4 jobs"


def test_describe_run_empty_snapshot():
    line = describe_run(MetricsSnapshot(counters={}, gauges={}, spans=[]))
    assert line == "0 apps (0 analyzed, 0 from cache) in 0.00s with 1 job"


def test_describe_run_breaks_faults_down_by_kind():
    snapshot = MetricsSnapshot(
        counters={"runner.apps.analyzed": 3, "runner.apps.faulted": 2,
                  "runner.faults.timeout": 1, "runner.faults.crash": 1,
                  "runner.retries": 1},
        gauges={"runner.jobs": 2.0, "runner.wall_seconds": 1.0},
        spans=[],
    )
    line = describe_run(snapshot)
    assert "2 faulted (crash=1, timeout=1)" in line
    assert "1 retry" in line


def test_describe_run_falls_back_to_timeout_count():
    # payloads from before per-kind fault counters existed
    snapshot = MetricsSnapshot(
        counters={"runner.apps.analyzed": 1, "runner.apps.faulted": 1,
                  "runner.timeouts": 1},
        gauges={"runner.jobs": 1.0, "runner.wall_seconds": 0.5},
        spans=[],
    )
    assert "1 faulted (1 timed out)" in describe_run(snapshot)
