"""The structured event stream: ordered flushing, JSONL round-trips,
the summary digest, and the --progress renderer."""

import io
import itertools

import pytest

from repro.obs.events import (
    encode_event,
    EVENTS_SCHEMA,
    JsonlEventSink,
    percentile,
    ProgressSink,
    read_events,
    render_events_summary,
    RunEventLog,
    summarize_events,
)


class ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


def _log(sink):
    """A log with a fake clock so ``t`` is deterministic."""
    ticks = itertools.count()
    return RunEventLog([sink], clock=lambda: float(next(ticks)))


def _trace(sink):
    return [(r["event"], r.get("app")) for r in sink.records]


# -- ordered flushing ---------------------------------------------------------


def test_events_flush_in_input_order_despite_completion_order():
    """App b finishes first, but its block must wait for app a: the
    stream is identical to what a serial run would produce."""
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a", "b", "c"])
    log.app_event("b", "app-start")
    log.app_done("b", "analyzed", duration_s=0.5)
    assert _trace(sink) == [("run-start", None)]  # a still open
    log.app_event("a", "app-start")
    log.app_done("a", "analyzed", duration_s=0.25)
    # a's close releases both a's and b's blocks, in input order
    assert _trace(sink) == [
        ("run-start", None),
        ("app-start", "a"), ("app-done", "a"),
        ("app-start", "b"), ("app-done", "b"),
    ]
    log.app_event("c", "cache-hit")
    log.app_done("c", "cached")
    log.run_end(analyzed=2, cached=1, faulted=0, wall_seconds=1.0)
    assert _trace(sink)[-3:] == [
        ("cache-hit", "c"), ("app-done", "c"), ("run-end", None),
    ]


def test_timestamps_are_relative_and_schema_stamped():
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a"])
    log.app_done("a", "analyzed", duration_s=1.0)
    assert all(r["schema"] == EVENTS_SCHEMA for r in sink.records)
    # the first event anchors t=0; later events carry the fake-clock delta
    assert sink.records[0]["t"] == 0.0
    assert all(r["t"] >= 0.0 for r in sink.records)


def test_events_for_unknown_apps_are_dropped():
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a"])
    log.app_event("ghost", "app-start")
    log.app_done("ghost", "analyzed")
    log.app_done("a", "analyzed")
    assert [r.get("app") for r in sink.records[1:]] == ["a"]


def test_run_end_force_flushes_unclosed_apps():
    """A fail-fast abort leaves apps open; run_end still flushes their
    buffered prefix so the stream is a faithful record."""
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a", "b"])
    log.app_event("a", "app-start")
    log.app_event("b", "app-start")
    log.app_done("a", "analyzed", duration_s=0.1)
    log.run_end(analyzed=1, cached=0, faulted=0, wall_seconds=0.2)
    assert _trace(sink) == [
        ("run-start", None),
        ("app-start", "a"), ("app-done", "a"),
        ("app-start", "b"),        # buffered prefix, no app-done
        ("run-end", None),
    ]


def test_duplicate_app_done_is_ignored():
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a"])
    log.app_done("a", "analyzed")
    log.app_done("a", "faulted")
    done = [r for r in sink.records if r["event"] == "app-done"]
    assert len(done) == 1 and done[0]["status"] == "analyzed"


# -- sinks --------------------------------------------------------------------


def test_jsonl_sink_roundtrips_through_read_events(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlEventSink(str(path))
    log = _log(sink)
    log.run_start("timing", ["a"])
    log.app_event("a", "app-start")
    log.app_done("a", "analyzed", duration_s=0.125)
    log.run_end(analyzed=1, cached=0, faulted=0, wall_seconds=0.5)
    log.close()
    records = read_events(str(path))
    assert [r["event"] for r in records] == [
        "run-start", "app-start", "app-done", "run-end",
    ]
    assert records[2] == {
        "schema": EVENTS_SCHEMA, "event": "app-done", "t": records[2]["t"],
        "app": "a", "status": "analyzed", "duration_s": 0.125,
    }
    # canonical lines: sorted keys, compact separators
    first_line = path.read_text().splitlines()[0]
    assert first_line == encode_event(records[0])


def test_read_events_rejects_bad_json_and_foreign_schemas(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"schema": 1, "event": "run-start", "t": 0.0}\n{oops\n')
    with pytest.raises(ValueError, match="line 2 is not valid JSON"):
        read_events(str(path))
    path.write_text('{"schema": 99, "event": "run-start", "t": 0.0}\n')
    with pytest.raises(ValueError, match="line 1 is not a nadroid event"):
        read_events(str(path))


def test_progress_sink_line_format():
    stream = io.StringIO()
    sink = ProgressSink(stream)
    sink.emit({"event": "run-start", "apps": 3})
    sink.emit({"event": "app-done", "status": "analyzed"})
    sink.emit({"event": "app-done", "status": "cached"})
    sink.emit({"event": "app-done", "status": "faulted"})
    assert stream.getvalue().splitlines() == [
        "[progress] 1/3 apps, 0 faults, 0 cache hits",
        "[progress] 2/3 apps, 0 faults, 1 cache hit",
        "[progress] 3/3 apps, 1 fault, 1 cache hit",
    ]


# -- summary ------------------------------------------------------------------


def test_percentile_is_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.50) == 20.0
    assert percentile(values, 0.95) == 40.0
    assert percentile([7.0], 0.95) == 7.0


def test_summarize_events_builds_the_funnel():
    sink = ListSink()
    log = _log(sink)
    log.run_start("timing", ["a", "b", "c"])
    log.app_event("a", "app-start")
    log.app_done("a", "analyzed", duration_s=0.2)
    log.app_event("b", "cache-hit")
    log.app_done("b", "cached", duration_s=0.1)
    log.app_event("c", "app-start")
    log.app_event("c", "retry", kind="oom")
    log.app_event("c", "timeout", seconds=5.0)
    log.app_event("c", "fault", kind="timeout")
    log.app_done("c", "faulted")
    log.run_end(analyzed=1, cached=1, faulted=1, wall_seconds=0.4)
    summary = summarize_events(sink.records)
    assert summary["runs"] == 1 and summary["apps"] == 3
    assert (summary["analyzed"], summary["cached"], summary["faulted"]) \
        == (1, 1, 1)
    assert summary["retries"] == 1 and summary["timeouts"] == 1
    assert summary["fault_kinds"] == {"timeout": 1}
    assert summary["latency"]["apps"] == 2
    assert summary["latency"]["p50_s"] == pytest.approx(0.1)
    assert summary["latency"]["max_s"] == pytest.approx(0.2)

    text = render_events_summary(summary)
    assert "1 run(s), 3 apps" in text
    assert "fault[timeout]: 1" in text
    assert "p50 100.0ms" in text


def test_render_summary_without_completed_apps():
    summary = summarize_events([
        {"schema": 1, "event": "run-start", "t": 0.0,
         "kind": "timing", "apps": 2},
    ])
    assert summary["latency"] is None
    assert "per-app latency: no completed apps" \
        in render_events_summary(summary)
