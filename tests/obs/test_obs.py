"""Tests for the repro.obs observability subsystem (ISSUE 2).

Covers: span nesting and timing monotonicity, counter merging across
simulated worker snapshots, deterministic JSON export (stable key order,
no absolute timestamps), ``AnalysisResult.timings`` backward
compatibility, pipeline counter determinism across ``--jobs`` settings,
and the ``repro bench`` payload schema.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    merge_snapshots,
    MetricsSnapshot,
    Recorder,
    render_spans,
    snapshot_to_json,
    Span,
)


# -- spans --------------------------------------------------------------------


def test_span_nesting_builds_a_tree():
    rec = Recorder()
    with obs.use(rec):
        with obs.span("outer"):
            with obs.span("inner-a"):
                pass
            with obs.span("inner-b"):
                with obs.span("leaf"):
                    pass
    assert [root.name for root in rec.roots] == ["outer"]
    outer = rec.roots[0]
    assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
    assert [c.name for c in outer.children[1].children] == ["leaf"]


def test_span_timing_monotonicity():
    """Every span closes with a non-negative duration no smaller than the
    sum of its children (children run inside the parent)."""
    rec = Recorder()
    with obs.use(rec):
        with obs.span("parent"):
            for i in range(3):
                with obs.span(f"child{i}"):
                    sum(range(1000))
    for node in rec.roots[0].walk():
        assert node.closed
        assert node.duration >= 0.0
    parent = rec.roots[0]
    assert parent.duration >= sum(c.duration for c in parent.children)


def test_span_times_without_a_recorder():
    with obs.span("standalone") as sp:
        sum(range(1000))
    assert sp.closed and sp.duration > 0.0
    assert obs.current() is None


def test_counters_are_noops_without_a_recorder():
    obs.add("nobody.home", 7)  # must not raise


def test_on_span_end_callback_fires_per_span():
    rec = Recorder()
    seen = []
    rec.on_span_end.append(lambda sp: seen.append(sp.name))
    with obs.use(rec):
        with obs.span("a"):
            with obs.span("b"):
                pass
    assert seen == ["b", "a"]  # children close before parents


def test_profile_stage_captures_cprofile_output():
    rec = Recorder(profile_stages={"hot"})
    with obs.use(rec):
        with obs.span("hot"):
            sorted(range(1000), key=lambda x: -x)
        with obs.span("cold"):
            pass
    hot, cold = rec.roots
    assert "cumulative" in hot.attrs["profile"]
    assert "profile" not in cold.attrs


def test_span_roundtrip_through_dict():
    rec = Recorder()
    with obs.use(rec):
        with obs.span("root", k=2):
            with obs.span("child"):
                pass
    restored = Span.from_dict(rec.roots[0].to_dict())
    assert restored.name == "root"
    assert restored.attrs == {"k": 2}
    assert [c.name for c in restored.children] == ["child"]
    assert restored.duration == pytest.approx(rec.roots[0].duration)


# -- counters, gauges, merging ------------------------------------------------


def test_counter_merge_across_simulated_worker_snapshots():
    """Per-worker snapshots (one per app, as the runner produces them)
    merge counters by summation, independent of order; gauges are
    measurements, so a same-named gauge takes the last write instead
    of a meaningless sum."""
    workers = []
    for passes in (3, 5, 7):
        rec = Recorder()
        rec.add("pointsto.passes", passes)
        rec.add("shared.count")
        rec.set_gauge("wall", 0.5)
        workers.append(rec.snapshot())
    merged = merge_snapshots(workers)
    assert merged.counters["pointsto.passes"] == 15
    assert merged.counters["shared.count"] == 3
    assert merged.gauges["wall"] == pytest.approx(0.5)
    reversed_merge = merge_snapshots(list(reversed(workers)))
    assert merged.counters == reversed_merge.counters


def test_gauge_merge_peak_gauges_take_the_max():
    """``*.peak_*`` gauges are high-water marks: merging keeps the max,
    in either order, while plain gauges stay last-write."""
    first, second = Recorder(), Recorder()
    first.set_gauge("mem.app.peak_kb", 100.0)
    first.set_gauge("wall", 1.0)
    second.set_gauge("mem.app.peak_kb", 40.0)
    second.set_gauge("wall", 2.0)
    snapshots = [first.snapshot(), second.snapshot()]
    merged = merge_snapshots(snapshots)
    assert merged.gauges["mem.app.peak_kb"] == pytest.approx(100.0)
    assert merged.gauges["wall"] == pytest.approx(2.0)
    reversed_merge = merge_snapshots(list(reversed(snapshots)))
    assert reversed_merge.gauges["mem.app.peak_kb"] == pytest.approx(100.0)
    assert reversed_merge.gauges["wall"] == pytest.approx(1.0)


def test_snapshot_roundtrip():
    rec = Recorder()
    with obs.use(rec):
        with obs.span("stage"):
            obs.add("facts", 42)
            obs.set_gauge("load", 0.25)
    snap = MetricsSnapshot.from_dict(rec.snapshot().to_dict())
    assert snap.counters == {"facts": 42}
    assert snap.gauges == {"load": 0.25}
    assert snap.spans[0]["name"] == "stage"


# -- exporters ----------------------------------------------------------------


def test_json_export_is_deterministic_modulo_durations():
    """Two runs of the same work produce identical JSON once durations
    are zeroed: stable key order, no absolute timestamps anywhere."""

    def one_run():
        rec = Recorder()
        with obs.use(rec):
            with obs.span("outer", k=2):
                with obs.span("inner"):
                    pass
            # insertion order deliberately differs between runs below
            obs.add("z.last", 1)
            obs.add("a.first", 2)
        return rec.snapshot()

    def zero_durations(node):
        node["duration_s"] = 0.0
        for child in node.get("children", ()):
            zero_durations(child)

    payloads = []
    for _ in range(2):
        data = json.loads(snapshot_to_json(one_run()))
        for root in data["spans"]:
            zero_durations(root)
        payloads.append(json.dumps(data, sort_keys=True))
    assert payloads[0] == payloads[1]


def test_span_dicts_carry_no_absolute_timestamps():
    rec = Recorder()
    with obs.use(rec):
        with obs.span("stage"):
            pass
    payload = rec.roots[0].to_dict()
    assert set(payload) <= {"name", "duration_s", "attrs", "children"}


def test_render_spans_tree_shape():
    rec = Recorder()
    with obs.use(rec):
        with obs.span("outer"):
            with obs.span("inner", engine="datalog"):
                pass
    text = render_spans(rec.snapshot().spans)
    lines = text.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "engine=datalog" in lines[1]


# -- pipeline integration -----------------------------------------------------


@pytest.fixture(scope="module")
def instrumented_result():
    from repro.corpus import app
    from repro.harness.table1 import analyze_corpus_app

    rec = Recorder()
    with obs.use(rec):
        result = analyze_corpus_app(app("todolist"))
    return rec, result


def test_analysis_result_timings_backward_compatible(instrumented_result):
    _, result = instrumented_result
    timings = result.timings
    assert set(timings) >= {"lowering", "modeling", "detection",
                            "filtering", "total"}
    stages = [k for k in timings if k != "total"]
    assert timings["total"] == pytest.approx(
        sum(timings[s] for s in stages)
    )
    assert all(v >= 0 for v in timings.values())


def test_pipeline_records_expected_counter_families(instrumented_result):
    rec, _ = instrumented_result
    counters = rec.snapshot().counters
    for required in (
        "pointsto.passes", "pointsto.var_facts", "pointsto.abstract_objects",
        "datalog.passes", "datalog.total_facts",
        "detector.candidate_pairs", "detector.potential_warnings",
        "filters.potential", "filters.after_sound", "filters.after_unsound",
        "funnel.potential", "funnel.after_sound", "funnel.remaining",
    ):
        assert required in counters, required


def test_funnel_counters_are_monotone(instrumented_result):
    rec, _ = instrumented_result
    counters = rec.snapshot().counters
    assert counters["detector.candidate_pairs"] \
        >= counters["detector.potential_warnings"]
    assert counters["funnel.potential"] >= counters["funnel.after_sound"] \
        >= counters["funnel.remaining"]


def test_detection_span_nests_pointsto_and_detect(instrumented_result):
    rec, _ = instrumented_result
    by_name = {root.name: root for root in rec.roots}
    detection = by_name["detection"]
    child_names = [c.name for c in detection.children]
    assert child_names == ["pointsto", "lockset", "detect"]


# -- runner and bench ---------------------------------------------------------


SUBSET = ["todolist", "swiftnotes", "clipstack"]


def _specs():
    from repro.corpus import app

    return [app(name) for name in SUBSET]


def test_runner_counters_identical_across_jobs():
    """The acceptance criterion: --jobs 1 and --jobs 4 yield identical
    counter values (only durations may differ)."""
    from repro.runner import CorpusRunner

    snapshots = {}
    for jobs in (1, 4):
        runner = CorpusRunner(jobs=jobs)
        runner.run("timing", SUBSET, {})
        snapshots[jobs] = runner.last_metrics
    for name in SUBSET:
        assert snapshots[1].apps[name].counters \
            == snapshots[4].apps[name].counters, name
    assert snapshots[1].totals().counters == snapshots[4].totals().counters


def test_cache_replays_recorded_metric_snapshots(tmp_path):
    from repro.runner import CorpusRunner, ResultCache

    cold = CorpusRunner(cache=ResultCache(tmp_path))
    cold.run("timing", SUBSET, {})
    warm = CorpusRunner(cache=ResultCache(tmp_path))
    warm.run("timing", SUBSET, {})
    assert warm.last_stats.analyzed == 0
    assert warm.last_stats.cache_hits == len(SUBSET)
    for name in SUBSET:
        assert cold.last_metrics.apps[name].to_dict() \
            == warm.last_metrics.apps[name].to_dict()


def test_worker_spans_root_at_app_name():
    from repro.runner import CorpusRunner

    runner = CorpusRunner(jobs=2)
    runner.run("timing", SUBSET, {})
    for name in SUBSET:
        spans = runner.last_metrics.apps[name].spans
        assert len(spans) == 1
        assert spans[0]["name"] == f"app:{name}"
        child_names = [c["name"] for c in spans[0]["children"]]
        assert child_names == ["lowering", "modeling", "detection",
                               "filtering"]


def test_run_stats_describe_includes_cache_counts(tmp_path):
    from repro.runner import CorpusRunner, ResultCache

    runner = CorpusRunner(cache=ResultCache(tmp_path))
    runner.run("timing", SUBSET[:1], {})
    line = runner.last_stats.describe()
    assert "1 analyzed, 0 from cache" in line
    assert "cache: 0 hits, 1 misses, 1 stores" in line


def test_bench_payload_schema(tmp_path):
    from repro.harness import run_bench, write_bench
    from repro.runner import CorpusRunner

    payload = run_bench(CorpusRunner(jobs=2), apps=_specs())
    assert payload["schema"] == 1
    assert sorted(payload["apps"]) == sorted(SUBSET)
    for entry in payload["apps"].values():
        assert set(entry["timings"]) >= {"lowering", "modeling",
                                         "detection", "filtering", "total"}
        assert "pointsto.passes" in entry["counters"]
        assert entry["spans"][0]["children"]
    assert payload["totals"]["counters"]["funnel.potential"] == sum(
        entry["counters"]["funnel.potential"]
        for entry in payload["apps"].values()
    )

    out = tmp_path / "BENCH_test.json"
    write_bench(payload, str(out))
    assert json.loads(out.read_text()) == payload
