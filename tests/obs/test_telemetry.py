"""Tests for repro.obs.telemetry (ISSUE 8): the live run aggregator and
the 127.0.0.1-only ``--serve-telemetry`` HTTP endpoint.

The load-bearing property is the determinism contract: attaching the
aggregator to a run must leave results, reports and bench counters
byte-identical -- the endpoint observes, it never participates.
"""

import json
import urllib.request

import pytest

from repro.obs import (
    LiveAggregator,
    MetricsSnapshot,
    prometheus_text,
)
from repro.obs.telemetry import TELEMETRY_HOST, TelemetryServer
from repro.runner import CorpusRunner

SUBSET = ["todolist", "swiftnotes", "clipstack"]


# -- LiveAggregator -----------------------------------------------------------


def test_aggregator_starts_idle():
    agg = LiveAggregator()
    progress = agg.progress()
    assert progress["phase"] == "idle"
    assert progress["apps"] == {"total": 0, "done": 0, "analyzed": 0,
                                "cached": 0, "faulted": 0}
    assert progress["latency"] is None
    assert agg.healthy()


def test_aggregator_tracks_the_run_funnel():
    agg = LiveAggregator(clock=lambda: 0.0)
    agg.run_started("timing", 3)
    agg.app_started("a")
    agg.app_started("b")
    assert agg.progress()["active"] == ["a", "b"]
    agg.record_retry()
    agg.app_finished("a", "analyzed", duration_s=0.2)
    agg.app_finished("b", "cached", duration_s=0.1)
    agg.app_finished("c", "faulted")
    progress = agg.progress()
    assert progress["phase"] == "timing"
    assert progress["apps"] == {"total": 3, "done": 3, "analyzed": 1,
                                "cached": 1, "faulted": 1}
    assert progress["active"] == []
    assert progress["retries"] == 1
    assert progress["latency"]["apps"] == 2
    assert progress["latency"]["max_s"] == 0.2
    agg.run_finished()
    assert agg.progress()["phase"] == "idle"


def test_aggregator_explicit_phase_wins_over_kind():
    agg = LiveAggregator()
    agg.set_phase("bench:generated:50")
    agg.run_started("gen-timing", 50)
    progress = agg.progress()
    assert progress["phase"] == "bench:generated:50"
    assert progress["kind"] == "gen-timing"


def test_aggregator_merges_finished_snapshots():
    agg = LiveAggregator()
    agg.run_started("timing", 2)
    agg.app_finished("a", "analyzed", snapshot=MetricsSnapshot(
        counters={"datalog.passes": 2},
        gauges={"mem.app.peak_kb": 10.0},
    ))
    agg.app_finished("b", "analyzed", snapshot=MetricsSnapshot(
        counters={"datalog.passes": 3},
        gauges={"mem.app.peak_kb": 30.0},
    ))
    agg.run_finished(MetricsSnapshot(counters={"runner.apps.analyzed": 2}))
    snapshot = agg.snapshot()
    assert snapshot.counters["datalog.passes"] == 5
    assert snapshot.counters["runner.apps.analyzed"] == 2
    # peak gauges merge max-wins
    assert snapshot.gauges["mem.app.peak_kb"] == 30.0
    # the aggregator's own funnel rides along
    assert snapshot.counters["telemetry.apps.done"] == 2
    assert snapshot.counters["telemetry.runs"] == 1
    # spans are never retained
    assert snapshot.spans == []


def test_aggregator_prometheus_is_valid_exposition():
    agg = LiveAggregator(clock=lambda: 0.0)  # pin the uptime gauge
    agg.run_started("timing", 1)
    agg.app_finished("a", "analyzed",
                     snapshot=MetricsSnapshot(counters={"x.y": 1}))
    text = agg.prometheus()
    assert "# TYPE nadroid_x_y_total counter" in text
    assert "nadroid_telemetry_apps_done_total 1" in text
    assert text == prometheus_text(agg.snapshot())


# -- TelemetryServer ----------------------------------------------------------


@pytest.fixture()
def server():
    agg = LiveAggregator()
    srv = TelemetryServer(agg, port=0).start()
    yield srv
    srv.close()


def _get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}") as response:
        return response.status, dict(response.headers), \
            response.read().decode("utf-8")


def test_server_binds_loopback_ephemeral_port(server):
    assert server.port and server.port > 0
    assert server.url == f"http://{TELEMETRY_HOST}:{server.port}"
    assert TELEMETRY_HOST == "127.0.0.1"


def test_server_serves_healthz(server):
    status, _, body = _get(server, "/healthz")
    assert status == 200
    assert body == "ok\n"


def test_server_serves_metrics(server):
    server.aggregator.run_started("timing", 2)
    server.aggregator.app_finished("a", "analyzed")
    status, headers, body = _get(server, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert "nadroid_telemetry_apps_done_total 1" in body
    assert "nadroid_telemetry_apps_total_total 2" in body


def test_server_serves_progress_json(server):
    server.aggregator.run_started("table1", 5)
    status, headers, body = _get(server, "/progress")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    progress = json.loads(body)
    assert progress["phase"] == "table1"
    assert progress["apps"]["total"] == 5


def test_server_404_on_unknown_path(server):
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server, "/nope")
    assert exc.value.code == 404


def test_server_close_is_idempotent():
    srv = TelemetryServer(LiveAggregator(), port=0).start()
    srv.close()
    srv.close()
    assert srv.port is None


# -- runner integration and the determinism contract --------------------------


def test_runner_feeds_the_aggregator():
    agg = LiveAggregator()
    runner = CorpusRunner(jobs=1, telemetry=agg)
    runner.run("timing", SUBSET, {})
    progress = agg.progress()
    assert progress["apps"]["total"] == len(SUBSET)
    assert progress["apps"]["done"] == len(SUBSET)
    assert progress["apps"]["analyzed"] == len(SUBSET)
    assert progress["active"] == []
    assert progress["phase"] == "idle"  # run closed
    assert progress["latency"]["apps"] == len(SUBSET)
    snapshot = agg.snapshot()
    # the per-app analysis counters merged in
    assert snapshot.counters["datalog.passes"] > 0
    # the runner's own fan-out counters joined at run_finished
    assert snapshot.counters["runner.apps.analyzed"] == len(SUBSET)


def test_runner_reports_cache_hits_to_the_aggregator(tmp_path):
    from repro.runner import ResultCache

    CorpusRunner(cache=ResultCache(tmp_path)).run("timing", SUBSET, {})
    agg = LiveAggregator()
    warm = CorpusRunner(cache=ResultCache(tmp_path), telemetry=agg)
    warm.run("timing", SUBSET, {})
    progress = agg.progress()
    assert progress["apps"]["cached"] == len(SUBSET)
    # replayed envelopes still carry their recorded metrics
    assert agg.snapshot().counters["datalog.passes"] > 0


def _run_payloads(telemetry, jobs):
    runner = CorpusRunner(jobs=jobs, telemetry=telemetry)
    payloads, _ = runner.run("table1", SUBSET, {})
    # drop the wall-clock fields (nested per-stage timings); everything
    # else is analysis output and must come out byte-identical
    def strip(value):
        if isinstance(value, dict):
            return {key: strip(inner) for key, inner in value.items()
                    if key != "timings"}
        if isinstance(value, list):
            return [strip(inner) for inner in value]
        return value

    payloads = [strip(payload) for payload in payloads]
    counters = {
        name: dict(snapshot.counters)
        for name, snapshot in runner.last_metrics.apps.items()
    }
    return payloads, counters


def test_telemetry_does_not_perturb_results_or_counters():
    """The determinism contract: byte-identical payloads and identical
    per-app counters with and without the aggregator, serial and
    parallel."""
    base_payloads, base_counters = _run_payloads(None, 1)
    for telemetry, jobs in ((LiveAggregator(), 1), (None, 4),
                            (LiveAggregator(), 4)):
        payloads, counters = _run_payloads(telemetry, jobs)
        assert json.dumps(payloads, sort_keys=True) == \
            json.dumps(base_payloads, sort_keys=True)
        assert counters == base_counters
