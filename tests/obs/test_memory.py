"""tracemalloc memory gauges: per-stage windows, parent propagation,
and graceful no-ops when tracing is off."""

import tracemalloc

import pytest

from repro import obs
from repro.obs import Recorder, track_memory
from repro.obs.memory import gauge_name_for_span, MemoryTracker


def test_gauge_name_maps_task_roots_to_the_app_gauge():
    assert gauge_name_for_span("app:todolist") == "mem.app.peak_kb"
    assert gauge_name_for_span("lowering") == "mem.stage.lowering.peak_kb"


def test_track_memory_records_per_stage_and_app_gauges():
    rec = Recorder()
    with track_memory(rec), obs.use(rec):
        with obs.span("app:demo"):
            with obs.span("lowering"):
                ballast = [bytearray(4096) for _ in range(64)]
            with obs.span("detection"):
                pass
            del ballast
    assert not tracemalloc.is_tracing()
    gauges = rec.snapshot().gauges
    for name in ("mem.app.peak_kb", "mem.stage.lowering.peak_kb",
                 "mem.stage.detection.peak_kb"):
        assert name in gauges and gauges[name] >= 0.0
    # the lowering stage allocated ~256 KiB of ballast; its window must
    # see a substantial fraction of it
    assert gauges["mem.stage.lowering.peak_kb"] >= 128.0


def test_parent_peak_is_at_least_every_childs():
    """A child's high-water mark happens inside its parent's window, so
    the propagated parent gauge can never undercut a child gauge."""
    rec = Recorder()
    with track_memory(rec), obs.use(rec):
        with obs.span("app:demo"):
            with obs.span("lowering"):
                ballast = [bytearray(4096) for _ in range(64)]
                del ballast
            with obs.span("detection"):
                small = bytearray(16)
                del small
    gauges = rec.snapshot().gauges
    assert gauges["mem.app.peak_kb"] >= \
        gauges["mem.stage.lowering.peak_kb"]
    assert gauges["mem.app.peak_kb"] >= \
        gauges["mem.stage.detection.peak_kb"]


def test_max_gauge_keeps_the_high_water_mark():
    rec = Recorder()
    rec.max_gauge("mem.app.peak_kb", 10.0)
    rec.max_gauge("mem.app.peak_kb", 4.0)
    rec.max_gauge("mem.app.peak_kb", 25.0)
    assert rec.gauges["mem.app.peak_kb"] == pytest.approx(25.0)


def test_tracker_is_a_noop_when_tracing_is_off():
    assert not tracemalloc.is_tracing()
    rec = Recorder()
    MemoryTracker(rec)  # installed, but tracemalloc never started
    with obs.use(rec):
        with obs.span("app:demo"):
            with obs.span("lowering"):
                pass
    assert rec.snapshot().gauges == {}


def test_track_memory_defers_to_an_outer_tracing_scope():
    tracemalloc.start()
    try:
        rec = Recorder()
        with track_memory(rec):
            assert tracemalloc.is_tracing()
        # the outer owner keeps tracing across the block's exit
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()
