"""Hotspot attribution: emitters in the two fixpoint cores, the
collector, and the deterministic top-K table."""

import pytest

from repro import obs
from repro.analysis import run_pointsto
from repro.datalog import engine as dl_engine
from repro.datalog.terms import Literal, Program, Rule, Var
from repro.lowering import compile_app
from repro.obs import (
    collect_hotspots,
    HotspotEntry,
    Recorder,
    render_hotspots,
    top_hotspots,
)
from repro.obs.hotspots import _parse
from repro.threadify import threadify

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def _path_program():
    program = Program()
    program.add_facts("edge", [("a", "b"), ("b", "c"), ("c", "d")])
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    program.rule(Literal("path", (X, Z)),
                 Literal("edge", (X, Y)), Literal("path", (Y, Z)))
    return program


APP = """
class MainActivity extends Activity {
    Worker w;
    void onCreate() { this.w = new Worker(); }
    void onClick() { this.w.ping(); }
}
class Worker {
    void ping() { }
}
"""


# -- emitters -----------------------------------------------------------------


def test_datalog_emits_per_rule_and_per_stratum_attribution():
    rec = Recorder()
    with obs.use(rec):
        relations = dl_engine.evaluate(_path_program())
    assert len(relations["path"]) == 6
    # rule ids are <head>#<stratum>.<rule>: both rules live in stratum 0
    assert rec.counters["hotspot.datalog.rule.path#0.0.facts"] == 3
    assert rec.counters["hotspot.datalog.rule.path#0.1.facts"] == 3
    assert rec.counters["hotspot.datalog.stratum.0.facts"] == 6
    # per-rule facts sum to the existing derived-facts counter, which
    # must be unchanged by the instrumentation
    assert rec.counters["datalog.derived_facts"] == 6
    for name in ("hotspot.datalog.rule.path#0.0.seconds",
                 "hotspot.datalog.rule.path#0.1.seconds",
                 "hotspot.datalog.stratum.0.seconds"):
        assert rec.gauges[name] >= 0.0


def test_datalog_zero_fact_rules_still_get_a_counter():
    """The counter key set is a function of the program alone, so a
    rule that never fires still appears (deterministically) with 0."""
    program = Program()
    program.add_facts("edge", [("a", "b")])
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    # never fires: no self-loop edges exist
    program.rule(Literal("loop", (X, X)), Literal("edge", (X, X)))
    rec = Recorder()
    with obs.use(rec):
        dl_engine.evaluate(program)
    assert rec.counters["hotspot.datalog.rule.loop#0.1.facts"] == 0


def test_pointsto_emits_per_pair_attribution():
    module = compile_app([("app.mjava", APP)], seal=False)
    program = threadify(module)
    rec = Recorder()
    with obs.use(rec):
        result = run_pointsto(program.module)
    pops = {name: value for name, value in rec.counters.items()
            if name.startswith("hotspot.pointsto.pair.")}
    assert pops, "expected per-pair pop counters"
    # every pair key ends in .pops and total pops match the existing
    # worklist counter, which stays untouched
    assert all(name.endswith(".pops") for name in pops)
    assert sum(pops.values()) == rec.counters["pointsto.worklist.popped"]
    # the entry pair is context-free: qname@ with an empty context
    assert "hotspot.pointsto.pair.DummyMain.main@.pops" in pops
    for name in pops:
        gauge = name[:-len("pops")] + "seconds"
        assert rec.gauges[gauge] >= 0.0
    assert result.var_pts  # the analysis still computed something


def test_hotspot_counters_are_deterministic_across_runs():
    def snapshot_counters():
        rec = Recorder()
        with obs.use(rec):
            dl_engine.evaluate(_path_program())
        return {name: value for name, value in rec.counters.items()
                if name.startswith("hotspot.")}

    assert snapshot_counters() == snapshot_counters()


# -- collector and table ------------------------------------------------------


def test_parse_handles_dotted_names_and_rejects_unknown_domains():
    assert _parse("hotspot.datalog.rule.path#0.1.facts") == \
        ("datalog.rule", "path#0.1", "facts")
    assert _parse("hotspot.pointsto.pair.A.m@B.n#3.pops") == \
        ("pointsto.pair", "A.m@B.n#3", "pops")
    with pytest.raises(ValueError):
        _parse("hotspot.unknown.domain.x.facts")


def test_collect_hotspots_sums_across_snapshots_and_ranks_by_count():
    first, second = Recorder(), Recorder()
    for rec, facts in ((first, 5), (second, 7)):
        rec.add("hotspot.datalog.rule.r#0.0.facts", facts)
        rec.add_gauge("hotspot.datalog.rule.r#0.0.seconds", 0.5)
        rec.add("hotspot.pointsto.pair.A.m@.pops", 1)
        rec.add_gauge("hotspot.pointsto.pair.A.m@.seconds", 0.1)
        rec.add("unrelated.counter", 99)
    entries = collect_hotspots([first.snapshot(), second.snapshot()])
    assert [(e.domain, e.name, e.count) for e in entries] == [
        ("datalog.rule", "r#0.0", 12),
        ("pointsto.pair", "A.m@", 2),
    ]
    assert entries[0].seconds == pytest.approx(1.0)
    assert entries[1].seconds == pytest.approx(0.2)


def test_collect_hotspots_ignores_unparseable_names():
    rec = Recorder()
    rec.add("hotspot.future.domain.x.facts", 3)
    assert collect_hotspots([rec.snapshot()]) == []


def test_top_hotspots_restricts_by_domain():
    entries = [
        HotspotEntry("datalog.rule", "a", 10, 0.0),
        HotspotEntry("pointsto.pair", "b", 5, 0.0),
    ]
    assert top_hotspots(entries, 10, domain="pointsto.pair") == [entries[1]]
    assert top_hotspots(entries, 1) == [entries[0]]


def test_render_hotspots_table_shape():
    entries = [
        HotspotEntry("datalog.rule", "path#0.1", 42, 0.1234),
        HotspotEntry("pointsto.pair", "A.m@", 7, 0.0),
    ]
    text = render_hotspots(entries, top=1)
    lines = text.splitlines()
    assert lines[0].split() == ["#", "domain", "name", "count", "seconds"]
    assert "path#0.1" in lines[2] and "42" in lines[2]
    assert lines[-1] == "... 1 more unit(s) below the top 1"
    assert render_hotspots([], top=5) == "no hotspot metrics recorded"
