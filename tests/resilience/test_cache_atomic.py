"""Atomic cache publication: a writer killed mid-store leaves no torn entry.

``ResultCache.store`` spools to a same-directory ``.tmp`` sibling,
fsyncs, and ``os.replace``s into place.  These tests SIGKILL a real
writer process *inside* the store (after partial bytes hit the spool
file) and assert the contract: readers see either nothing or the old
complete entry -- never a truncated ``<key>.json`` -- and the orphaned
spool file is swept by ``prune``.
"""

import json
import multiprocessing
import os
import signal
from pathlib import Path

from repro.runner import ResultCache

KEY = "ab" + "0" * 62
PAYLOAD = {"data": {"rows": list(range(200))}, "obs": None}


def _fork():
    return multiprocessing.get_context("fork")


def _killed_writer(root: str) -> None:
    """Child: start a store, die by SIGKILL after partial bytes are on
    disk (patching the module's ``json.dump`` seam; the fork dies, so
    the patch never leaks anywhere)."""
    from repro.runner import cache as cache_mod

    def dump_and_die(obj, handle, **kwargs):
        handle.write('{"schema": 999, "data": "tr')
        handle.flush()
        os.fsync(handle.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    cache_mod.json = type(
        "_TornJson", (), {
            "dump": staticmethod(dump_and_die),
            "dumps": staticmethod(json.dumps),
            "load": staticmethod(json.load),
        },
    )
    ResultCache(Path(root)).store(KEY, PAYLOAD)


def _run_killed_writer(root: Path) -> None:
    proc = _fork().Process(target=_killed_writer, args=(str(root),))
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == -signal.SIGKILL


def test_killed_writer_publishes_nothing(tmp_path):
    _run_killed_writer(tmp_path)
    # no torn <key>.json was published ...
    assert not list(tmp_path.glob("*/*.json"))
    # ... so the lookup is a clean miss, not a quarantine
    cache = ResultCache(tmp_path)
    assert cache.lookup(KEY) is None
    assert cache.corrupt == 0
    # the partial bytes sit in an orphaned spool file ...
    orphans = list(tmp_path.glob("*/*.tmp"))
    assert len(orphans) == 1
    # ... which prune sweeps
    assert cache.prune() == 1
    assert not list(tmp_path.glob("*/*.tmp"))
    # and a fresh store at the same key publishes normally afterwards
    cache.store(KEY, PAYLOAD)
    entry = cache.lookup(KEY)
    assert entry is not None and entry["data"] == PAYLOAD["data"]


def test_killed_rewriter_preserves_the_old_entry(tmp_path):
    old = ResultCache(tmp_path)
    old.store(KEY, {"data": {"generation": 1}, "obs": None})
    _run_killed_writer(tmp_path)
    # the complete old entry survives the torn rewrite untouched
    fresh = ResultCache(tmp_path)
    entry = fresh.lookup(KEY)
    assert entry is not None and entry["data"] == {"generation": 1}
    assert fresh.corrupt == 0
    # exactly the one orphaned spool file to sweep
    assert fresh.prune() == 1


def test_failed_dump_cleans_up_its_spool_file(tmp_path):
    """A store that *raises* (full disk, unserializable payload) unlinks
    its spool file on the way out instead of orphaning it."""
    cache = ResultCache(tmp_path)
    try:
        cache.store(KEY, {"data": object()})  # not JSON-serializable
    except TypeError:
        pass
    else:  # pragma: no cover - the store must raise
        raise AssertionError("store of an unserializable payload passed")
    assert not list(tmp_path.glob("*/*"))
    assert cache.stores == 0
