"""Graceful filter degradation: a crashing filter is skipped, not fatal.

Soundness argument under test: a skipped filter prunes nothing, so every
warning it would have removed *survives* -- degradation can only add
false positives, never hide a true violation.
"""

import pytest

from repro import obs
from repro.corpus import app
from repro.filters.base import Filter
from repro.filters.pipeline import FilterPipeline, FilterReport
from repro.race.warnings import Occurrence, UafWarning, Witness
from repro.resilience import (
    CooperativeTimeout,
    FaultPlan,
    FaultSpec,
    install,
)
from repro.runner.serialize import _report_from_dict, _report_to_dict


class BoomFilter(Filter):
    name = "BOOM"
    sound = True

    def witness(self, occ, warning, ctx):
        raise RuntimeError("synthetic filter crash")


class QuietFilter(Filter):
    name = "QUIET"
    sound = True

    def witness(self, occ, warning, ctx):
        return None


class PruneAllFilter(Filter):
    name = "ALL"
    sound = True

    def witness(self, occ, warning, ctx):
        return Witness(kind="test", detail="pruned by ALL")


class TimeoutFilter(Filter):
    name = "SLOW"
    sound = True

    def witness(self, occ, warning, ctx):
        raise CooperativeTimeout(1.0)


def fake_warnings(n=3):
    return [
        UafWarning(
            fieldref=None, use_uid=i, free_uid=i + 100,
            use_method="A.use", free_method="A.free",
            occurrences=[Occurrence(use=None, free=None,
                                    pair_type="EC-EC")],
        )
        for i in range(n)
    ]


def test_crashed_sound_filter_is_skipped_and_warnings_survive():
    pipeline = FilterPipeline(ctx=None, sound_filters=(BoomFilter(),),
                              unsound_filters=())
    warnings = fake_warnings()
    report = pipeline.apply(warnings, with_individual_stats=False)
    # Nothing pruned: the conservative outcome.
    assert report.after_sound == report.potential == len(warnings)
    assert all(w.survives_sound for w in warnings)
    assert report.degraded == [{
        "filter": "BOOM", "sound": True,
        "message": "RuntimeError: synthetic filter crash",
    }]
    assert report.is_degraded


def test_crashed_filter_leaves_a_filter_fault_witness():
    pipeline = FilterPipeline(ctx=None, sound_filters=(BoomFilter(),),
                              unsound_filters=())
    warnings = fake_warnings(1)
    pipeline.apply(warnings, with_individual_stats=False)
    witness = warnings[0].occurrences[0].witness
    assert witness is not None
    assert witness.kind == "filter-fault"
    assert "BOOM" in witness.detail


def test_other_filters_keep_running_after_one_crashes():
    pipeline = FilterPipeline(
        ctx=None, sound_filters=(BoomFilter(), PruneAllFilter()),
        unsound_filters=(),
    )
    warnings = fake_warnings()
    report = pipeline.apply(warnings, with_individual_stats=False)
    assert report.after_sound == 0  # ALL still pruned everything
    assert [entry["filter"] for entry in report.degraded] == ["BOOM"]


def test_unsound_filter_crash_degrades_without_tripping_is_degraded():
    boom = BoomFilter()
    boom.sound = False
    pipeline = FilterPipeline(ctx=None, sound_filters=(QuietFilter(),),
                              unsound_filters=(boom,))
    report = pipeline.apply(fake_warnings(), with_individual_stats=False)
    assert report.degraded[0]["sound"] is False
    assert not report.is_degraded  # precision bar concerns sound filters


def test_degradation_increments_the_obs_counter():
    recorder = obs.Recorder()
    pipeline = FilterPipeline(ctx=None, sound_filters=(BoomFilter(),),
                              unsound_filters=())
    with obs.use(recorder):
        pipeline.apply(fake_warnings(), with_individual_stats=False)
    assert recorder.snapshot().counters["filters.degraded"] == 1


def test_timeouts_outrank_degradation():
    # A deadline expiry inside a filter must propagate (the app times
    # out) rather than silently disabling the filter.
    pipeline = FilterPipeline(ctx=None, sound_filters=(TimeoutFilter(),),
                              unsound_filters=())
    with pytest.raises(CooperativeTimeout):
        pipeline.apply(fake_warnings(1), with_individual_stats=False)


def test_degraded_entries_round_trip_through_serialization():
    from repro.core import analyze_app

    result = analyze_app(app("todolist").source())
    result.report.degraded = [{"filter": "MHB", "sound": True,
                               "message": "RuntimeError: boom"}]
    clone = _report_from_dict(_report_to_dict(result.report))
    assert clone.degraded == result.report.degraded
    assert clone.is_degraded


def test_injected_filter_fault_degrades_a_real_analysis():
    from repro.core import analyze_app

    source = app("todolist").source()
    clean = analyze_app(source)
    plan = FaultPlan(faults=(FaultSpec(app="*", stage="filter:MHB",
                                       action="raise"),))
    with install(plan):
        degraded = analyze_app(source)
    report = degraded.report
    assert [entry["filter"] for entry in report.degraded] == ["MHB"]
    assert report.is_degraded
    # Soundness: skipping MHB can only let MORE warnings survive.
    assert report.after_sound >= clean.report.after_sound
    surviving = {w.key for w in clean.warnings if w.survives_sound}
    surviving_degraded = {w.key for w in degraded.warnings
                          if w.survives_sound}
    assert surviving <= surviving_degraded
