"""CLI surface of fault tolerance: flags, exit codes, fault reporting."""

import json

import pytest

from repro.cli import EXIT_FAULTS, main
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faultinject import ENV_VAR


@pytest.fixture()
def crash_env(monkeypatch):
    plan = FaultPlan(faults=(FaultSpec(app="todolist", stage="detection",
                                       action="raise"),))
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))


CORPUS_ARGS = ["corpus", "--apps", "todolist", "clipstack", "--no-cache"]


def test_keep_going_completes_with_exit_faults(crash_env, capsys):
    code = main(CORPUS_ARGS + ["--keep-going"])
    captured = capsys.readouterr()
    assert code == EXIT_FAULTS
    assert "[fault] app 'todolist': analysis at detection:" in captured.err
    # The surviving app's row still renders.
    assert "clipstack" in captured.out
    assert "1 faulted" in captured.err


def test_fail_fast_is_the_default(crash_env, capsys):
    code = main(CORPUS_ARGS)
    captured = capsys.readouterr()
    assert code == 2
    assert "nadroid: error: analysis of app 'todolist' failed" \
        in captured.err
    assert "--keep-going" in captured.err


def test_faulted_apps_reach_the_report_and_sarif(crash_env, tmp_path,
                                                 capsys):
    report_path = tmp_path / "report.json"
    sarif_path = tmp_path / "report.sarif"
    code = main(CORPUS_ARGS + [
        "--keep-going",
        "--report-out", str(report_path),
        "--sarif-out", str(sarif_path),
    ])
    capsys.readouterr()
    assert code == EXIT_FAULTS

    report = json.loads(report_path.read_text())
    apps = report["apps"]
    assert apps["todolist"]["fault"]["kind"] == "analysis"
    assert apps["todolist"]["fault"]["stage"] == "detection"
    assert "fault" not in apps["clipstack"]

    sarif = json.loads(sarif_path.read_text())
    invocation = sarif["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert any(n["descriptor"]["id"] == "fault/analysis" for n in notes)


def test_invalid_timeout_is_a_cli_error(capsys):
    code = main(CORPUS_ARGS + ["--timeout", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "nadroid: error:" in captured.err
    assert "--timeout" in captured.err


def test_invalid_max_retries_is_a_cli_error(capsys):
    code = main(CORPUS_ARGS + ["--max-retries", "-1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--max-retries" in captured.err


def test_cache_prune_sweeps_quarantined_entries(tmp_path, capsys):
    sub = tmp_path / "ab"
    sub.mkdir()
    (sub / "keep.json").write_text("{}")
    (sub / "broken.json.corrupt").write_text("garbage")
    code = main(["cache", "prune", "--cache-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "pruned 1 quarantined entries" in captured.err
    assert (sub / "keep.json").exists()
    assert not (sub / "broken.json.corrupt").exists()


def test_cache_prune_all_sweeps_everything(tmp_path, capsys):
    sub = tmp_path / "ab"
    sub.mkdir()
    (sub / "keep.json").write_text("{}")
    code = main(["cache", "prune", "--cache-dir", str(tmp_path), "--all"])
    captured = capsys.readouterr()
    assert code == 0
    assert "pruned 1 entries" in captured.err
    assert not (sub / "keep.json").exists()


def test_cache_prune_missing_dir_is_fine(tmp_path, capsys):
    code = main(["cache", "prune", "--cache-dir",
                 str(tmp_path / "nowhere")])
    captured = capsys.readouterr()
    assert code == 0
    assert "nothing to prune" in captured.err
