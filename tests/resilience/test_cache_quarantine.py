"""Corrupt cache entries: quarantine on read, sweep via ``cache prune``."""

import json

from repro.runner import cache_key, CorpusRunner, ResultCache
from repro.runner.cache import CACHE_SCHEMA

APPS = ["todolist", "clipstack"]
PARAMS = {"validate": False, "random_attempts": 0}


def test_corrupt_entry_is_quarantined_and_misses(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache_key("table1", "source", {"config": None})
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{ this is not json")
    assert cache.lookup(key) is None
    assert cache.misses == 1
    assert cache.corrupt == 1
    assert not path.exists()
    quarantined = path.with_suffix(".json.corrupt")
    assert quarantined.exists()
    assert quarantined.read_text() == "{ this is not json"


def test_missing_entry_is_a_plain_miss_not_a_quarantine(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.lookup("0" * 64) is None
    assert cache.corrupt == 0


def test_stale_schema_misses_without_quarantine(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" + "0" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"schema": CACHE_SCHEMA - 1, "data": {}}))
    assert cache.lookup(key) is None
    assert cache.corrupt == 0
    assert path.exists()  # valid JSON, just old: left in place


def test_runner_recovers_from_a_corrupted_entry(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = CorpusRunner(jobs=1, cache=cache)
    first.run("table1", APPS, PARAMS)

    # Truncate one entry (simulated torn write), corrupt-count the rerun.
    victim = sorted(cache.root.glob("*/*.json"))[0]
    victim.write_text(victim.read_text()[: 40])
    second = CorpusRunner(jobs=1, cache=cache)
    rows, stats = second.run("table1", APPS, PARAMS)
    assert stats.cache_corrupt == 1
    assert stats.cache_hits == 1
    assert stats.analyzed == 1  # the corrupted app was re-analyzed
    assert all("error" not in row for row in rows)
    assert len(list(cache.root.glob("*/*.json.corrupt"))) == 1

    # ... and the re-analysis restored the entry.
    third = CorpusRunner(jobs=1, cache=cache)
    _, stats = third.run("table1", APPS, PARAMS)
    assert stats.cache_hits == len(APPS)


def test_prune_sweeps_quarantined_entries_only(tmp_path):
    cache = ResultCache(tmp_path)
    sub = tmp_path / "ab"
    sub.mkdir()
    (sub / "x.json").write_text("{}")
    (sub / "y.json.corrupt").write_text("garbage")
    (sub / "z.json.corrupt").write_text("garbage")
    assert cache.prune() == 2
    assert (sub / "x.json").exists()
    assert not list(tmp_path.glob("*/*.json.corrupt"))


def test_prune_all_sweeps_everything(tmp_path):
    cache = ResultCache(tmp_path)
    sub = tmp_path / "ab"
    sub.mkdir()
    (sub / "x.json").write_text("{}")
    (sub / "y.json.corrupt").write_text("garbage")
    assert cache.prune(everything=True) == 2
    assert not list(tmp_path.glob("*/*.json*"))
