"""The deterministic fault-injection harness itself."""

import json

import pytest

from repro.lang.errors import ParseError
from repro.resilience import (
    CooperativeTimeout,
    deadline_scope,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    install,
    maybe_fault,
    SimulatedWorkerLoss,
)
from repro.resilience.faultinject import ENV_VAR, active_plan


def plan_with(action, app="myapp", stage="detection", **kwargs):
    return FaultPlan(
        faults=(FaultSpec(app=app, stage=stage, action=action),), **kwargs
    )


# -- plan parsing and validation ----------------------------------------------


def test_plan_round_trips_through_json():
    plan = FaultPlan(
        faults=(FaultSpec(app="a", stage="modeling", action="hang"),),
        state_dir=None,
        hang_seconds=12.0,
    )
    clone = FaultPlan.from_json(json.dumps(plan.to_dict()))
    assert clone == plan


def test_plan_digest_is_stable():
    a = plan_with("raise")
    b = plan_with("raise")
    assert a.digest() == b.digest()
    assert a.digest() != plan_with("hang").digest()


def test_unknown_action_is_rejected():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultPlan.from_dict(
            {"faults": [{"app": "a", "stage": "s", "action": "explode"}]}
        )


def test_times_requires_state_dir():
    with pytest.raises(ValueError, match="state_dir"):
        FaultPlan.from_dict(
            {"faults": [{"app": "a", "stage": "s", "action": "kill",
                         "times": 1}]}
        )


def test_spec_wildcard_matches_any_app():
    spec = FaultSpec(app="*", stage="detection", action="raise")
    assert spec.matches("anything", "detection")
    assert not spec.matches("anything", "modeling")


# -- firing -------------------------------------------------------------------


def test_no_plan_is_a_noop():
    maybe_fault("myapp", "detection")  # must not raise


def test_raise_fires_only_on_matching_app_and_stage():
    with install(plan_with("raise")):
        maybe_fault("otherapp", "detection")
        maybe_fault("myapp", "modeling")
        with pytest.raises(InjectedFaultError, match="myapp"):
            maybe_fault("myapp", "detection")


def test_parse_error_action_raises_minidroid_parse_error():
    with install(plan_with("parse-error")):
        with pytest.raises(ParseError):
            maybe_fault("myapp", "detection")


def test_kill_in_process_simulates_worker_loss():
    # In the main process an injected kill must NOT os._exit (that would
    # take the whole run down); it raises the simulated loss instead.
    with install(plan_with("kill")):
        with pytest.raises(SimulatedWorkerLoss):
            maybe_fault("myapp", "detection")


def test_hang_is_interrupted_by_the_cooperative_deadline():
    with install(plan_with("hang", hang_seconds=30.0)):
        with deadline_scope(0.1):
            with pytest.raises(CooperativeTimeout):
                maybe_fault("myapp", "detection")


def test_hang_backstop_returns_without_a_deadline():
    # No deadline installed: the hang must still terminate after
    # hang_seconds rather than block the suite forever.
    with install(plan_with("hang", hang_seconds=0.05)):
        maybe_fault("myapp", "detection")


# -- attempt accounting (``times``) -------------------------------------------


def test_times_limits_firing_to_first_k_attempts(tmp_path):
    plan = FaultPlan(
        faults=(FaultSpec(app="myapp", stage="detection", action="raise",
                          times=2),),
        state_dir=str(tmp_path),
    )
    with install(plan):
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                maybe_fault("myapp", "detection")
        # third and later attempts succeed: the marker files persist
        maybe_fault("myapp", "detection")
        maybe_fault("myapp", "detection")
    assert len(list(tmp_path.glob("*.attempt.*"))) == 2


# -- activation ---------------------------------------------------------------


def test_env_var_inline_json_activates_a_plan(monkeypatch):
    plan = plan_with("raise")
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))
    assert active_plan() == plan
    with pytest.raises(InjectedFaultError):
        maybe_fault("myapp", "detection")


def test_env_var_path_form_activates_a_plan(tmp_path, monkeypatch):
    plan = plan_with("raise")
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    monkeypatch.setenv(ENV_VAR, str(path))
    assert active_plan() == plan


def test_install_outranks_the_environment(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps(plan_with("raise").to_dict()))
    quiet = FaultPlan()
    with install(quiet):
        assert active_plan() == quiet
        maybe_fault("myapp", "detection")  # env plan must not fire
