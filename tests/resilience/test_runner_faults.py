"""Corpus-runner fault tolerance: isolation, retries, timeouts, determinism.

The ISSUE 4 acceptance scenario lives here: a corpus run where one app
crashes and another hangs must, under ``--keep-going`` with a timeout,
produce every other app's golden row plus exactly two structured fault
entries -- byte-identical between ``--jobs 1`` and ``--jobs 4`` and
between cold and warm cache.
"""

import json

import pytest

from repro.resilience import (
    FaultError,
    FaultPlan,
    FaultPolicy,
    FaultSpec,
    install,
    timeout_fault,
)
from repro.resilience.faultinject import ENV_VAR
from repro.runner import CorpusRunner, ResultCache

APPS = ["todolist", "clipstack", "swiftnotes"]
PARAMS = {"validate": False, "random_attempts": 0}


def raise_plan(app="todolist", stage="detection"):
    return FaultPlan(faults=(FaultSpec(app=app, stage=stage,
                                       action="raise"),))


def canonical(rows, faults):
    """Rows + fault records as canonical JSON, timings stripped."""
    payloads = []
    for row in rows:
        payload = json.loads(json.dumps(row))
        if "error" not in payload:
            payload["result"]["timings"] = {}
        payloads.append(payload)
    return json.dumps(
        {"rows": payloads, "faults": [f.to_dict() for f in faults]},
        sort_keys=True,
    )


# -- isolation ----------------------------------------------------------------


def test_keep_going_isolates_the_faulting_app():
    runner = CorpusRunner(jobs=1, policy=FaultPolicy(keep_going=True))
    with install(raise_plan()):
        rows, stats = runner.run("table1", APPS, PARAMS)
    assert len(rows) == len(APPS)
    assert "error" in rows[0]
    assert rows[0]["error"]["kind"] == "analysis"
    assert rows[0]["error"]["stage"] == "detection"
    assert all("error" not in row for row in rows[1:])
    assert stats.faulted == 1
    assert stats.analyzed == len(APPS) - 1
    assert stats.fault_kinds == {"analysis": 1}
    assert [f.app for f in runner.last_faults] == ["todolist"]


def test_fail_fast_is_the_default_and_names_the_app():
    runner = CorpusRunner(jobs=1)
    with install(raise_plan()):
        with pytest.raises(FaultError, match="todolist") as excinfo:
            runner.run("table1", APPS, PARAMS)
    assert "--keep-going" in str(excinfo.value)


def test_fault_counters_reach_the_metrics_snapshot():
    runner = CorpusRunner(jobs=1, policy=FaultPolicy(keep_going=True))
    with install(raise_plan()):
        _, stats = runner.run("table1", APPS, PARAMS)
    counters = stats.to_snapshot().counters
    assert counters["runner.apps.faulted"] == 1
    assert counters["runner.faults.analysis"] == 1
    assert "runner.timeouts" not in counters  # only present when nonzero


# -- timeouts -----------------------------------------------------------------


def test_cooperative_timeout_produces_the_canonical_fault():
    plan = FaultPlan(faults=(FaultSpec(app="clipstack", stage="modeling",
                                       action="hang"),))
    runner = CorpusRunner(
        jobs=1, policy=FaultPolicy(timeout=0.5, keep_going=True)
    )
    with install(plan):
        rows, stats = runner.run("table1", APPS, PARAMS)
    assert stats.timeouts == 1
    assert runner.last_faults == [timeout_fault("clipstack", 0.5)]
    assert "error" in rows[1]


def test_watchdog_timeout_matches_the_cooperative_fault(monkeypatch):
    # The parallel watchdog terminate() and the serial cooperative check
    # must record byte-identical fault entries.
    plan = FaultPlan(faults=(FaultSpec(app="clipstack", stage="modeling",
                                       action="hang"),))
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))
    runner = CorpusRunner(
        jobs=2, policy=FaultPolicy(timeout=0.5, keep_going=True)
    )
    rows, stats = runner.run("table1", APPS, PARAMS)
    assert stats.timeouts == 1
    assert runner.last_faults == [timeout_fault("clipstack", 0.5)]


# -- retries ------------------------------------------------------------------


def test_transient_worker_loss_is_retried_serial(tmp_path):
    plan = FaultPlan(
        faults=(FaultSpec(app="todolist", stage="detection", action="kill",
                          times=1),),
        state_dir=str(tmp_path),
    )
    runner = CorpusRunner(jobs=1, policy=FaultPolicy(max_retries=1))
    with install(plan):
        rows, stats = runner.run("table1", APPS, PARAMS)
    assert stats.retries == 1
    assert stats.faulted == 0
    assert all("error" not in row for row in rows)


def test_real_worker_death_is_retried_parallel(tmp_path, monkeypatch):
    # jobs > 1: the injected kill really os._exit()s the worker; the
    # parent sees EOF on the pipe and re-submits the app.
    plan = FaultPlan(
        faults=(FaultSpec(app="todolist", stage="detection", action="kill",
                          times=1),),
        state_dir=str(tmp_path),
    )
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))
    runner = CorpusRunner(jobs=2, policy=FaultPolicy(max_retries=1))
    rows, stats = runner.run("table1", APPS, PARAMS)
    assert stats.retries == 1
    assert stats.faulted == 0
    assert all("error" not in row for row in rows)


def test_exhausted_retries_surface_the_worker_loss(tmp_path):
    plan = FaultPlan(
        faults=(FaultSpec(app="todolist", stage="detection", action="kill",
                          times=5),),
        state_dir=str(tmp_path),
    )
    runner = CorpusRunner(
        jobs=1, policy=FaultPolicy(max_retries=1, keep_going=True)
    )
    with install(plan):
        rows, stats = runner.run("table1", APPS, PARAMS)
    assert stats.retries == 1  # one re-submission, then recorded
    assert stats.fault_kinds == {"worker-lost": 1}
    assert "todolist" in rows[0]["error"]["message"]


def test_deterministic_faults_are_never_retried():
    # A parse error fails identically every attempt; even a generous
    # retry budget must not re-run it.
    plan = FaultPlan(faults=(FaultSpec(app="todolist", stage="lowering",
                                       action="parse-error"),))
    runner = CorpusRunner(
        jobs=1, policy=FaultPolicy(max_retries=5, keep_going=True)
    )
    with install(plan):
        _, stats = runner.run("table1", APPS, PARAMS)
    assert stats.retries == 0
    assert stats.fault_kinds == {"parse": 1}


# -- determinism (the acceptance scenario) ------------------------------------


@pytest.fixture()
def crash_and_hang_env(monkeypatch):
    plan = FaultPlan(faults=(
        FaultSpec(app="todolist", stage="detection", action="raise"),
        FaultSpec(app="clipstack", stage="modeling", action="hang"),
    ))
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))


def test_faulted_run_is_byte_identical_across_jobs(crash_and_hang_env):
    policy = FaultPolicy(timeout=1.0, keep_going=True)
    serial = CorpusRunner(jobs=1, policy=policy)
    parallel = CorpusRunner(jobs=4, policy=policy)
    rows_s, stats_s = serial.run("table1", APPS, PARAMS)
    rows_p, stats_p = parallel.run("table1", APPS, PARAMS)
    assert canonical(rows_s, serial.last_faults) == \
        canonical(rows_p, parallel.last_faults)
    assert stats_s.faulted == stats_p.faulted == 2
    assert stats_s.timeouts == stats_p.timeouts == 1


def test_faulted_run_is_byte_identical_cold_vs_warm(crash_and_hang_env,
                                                    tmp_path):
    policy = FaultPolicy(timeout=1.0, keep_going=True)
    cache = ResultCache(tmp_path / "cache")
    cold = CorpusRunner(jobs=1, cache=cache, policy=policy)
    rows_cold, stats_cold = cold.run("table1", APPS, PARAMS)
    warm = CorpusRunner(jobs=1, cache=cache, policy=policy)
    rows_warm, stats_warm = warm.run("table1", APPS, PARAMS)
    assert canonical(rows_cold, cold.last_faults) == \
        canonical(rows_warm, warm.last_faults)
    # Error envelopes are never cached: the clean app replays from disk,
    # the faulty apps re-run (and re-fault) every time.
    assert stats_cold.cache_stores == 1
    assert stats_warm.cache_hits == 1
    assert stats_warm.faulted == 2


def test_error_envelopes_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    runner = CorpusRunner(
        jobs=1, cache=cache, policy=FaultPolicy(keep_going=True)
    )
    with install(raise_plan()):
        runner.run("table1", APPS, PARAMS)
    assert cache.stores == len(APPS) - 1
    # With the plan gone the previously-faulty app analyzes cleanly --
    # nothing poisoned the cache, but note the key ALSO changed (the
    # plan digest participates), so this is a full miss for todolist.
    clean = CorpusRunner(jobs=1, cache=cache)
    rows, stats = clean.run("table1", APPS, PARAMS)
    assert stats.faulted == 0
    assert all("error" not in row for row in rows)


def test_fault_plan_digest_participates_in_the_cache_key(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    baseline = CorpusRunner(jobs=1, cache=cache)
    baseline.run("table1", APPS, PARAMS)
    assert cache.stores == len(APPS)

    # An active plan -- even one whose specs never fire -- must miss the
    # regular cache: injected runs can neither use nor poison it.
    dormant = FaultPlan(faults=(FaultSpec(
        app="no-such-app", stage="detection", action="raise"),))
    injected = CorpusRunner(jobs=1, cache=cache)
    with install(dormant):
        _, stats = injected.run("table1", APPS, PARAMS)
    assert stats.cache_hits == 0
    assert stats.analyzed == len(APPS)

    # ... while a plan-free rerun still hits the original entries.
    rerun = CorpusRunner(jobs=1, cache=cache)
    _, stats = rerun.run("table1", APPS, PARAMS)
    assert stats.cache_hits == len(APPS)
