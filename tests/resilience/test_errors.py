"""The fault taxonomy: classification, determinism, retry policy."""

import pytest

from repro.lang.errors import ParseError
from repro.resilience import (
    AnalysisFault,
    CooperativeTimeout,
    Fault,
    FAULT_KINDS,
    FaultError,
    fault_digest,
    fault_from_dict,
    fault_from_exception,
    ParseFault,
    SimulatedWorkerLoss,
    TimeoutFault,
    timeout_fault,
    WorkerLostFault,
    worker_lost_fault,
)


def test_taxonomy_covers_the_issue_kinds():
    assert set(FAULT_KINDS) == {
        "parse", "analysis", "timeout", "worker-lost", "filter",
    }


def test_only_worker_loss_is_transient():
    transient = {kind for kind, cls in FAULT_KINDS.items() if cls.transient}
    assert transient == {"worker-lost"}


def test_parse_error_classifies_as_parse_fault():
    exc = ParseError("unexpected token", 3, 7, "bad.mjava")
    fault = fault_from_exception(exc, "badapp", stage="lowering")
    assert isinstance(fault, ParseFault)
    assert fault.app == "badapp"
    assert fault.stage == "lowering"
    assert "unexpected token" in fault.message
    assert not fault.transient


def test_cooperative_timeout_classifies_canonically():
    fault = fault_from_exception(CooperativeTimeout(5.0), "slowapp")
    assert isinstance(fault, TimeoutFault)
    assert fault == timeout_fault("slowapp", 5.0)


def test_simulated_worker_loss_classifies_canonically():
    fault = fault_from_exception(SimulatedWorkerLoss("boom"), "oomapp")
    assert isinstance(fault, WorkerLostFault)
    assert fault == worker_lost_fault("oomapp")
    assert fault.transient


def test_worker_lost_fault_names_the_app():
    # The satellite bugfix: a dead worker must produce one actionable
    # line naming the app, not an opaque pool traceback.
    fault = worker_lost_fault("k9mail")
    assert "k9mail" in fault.message
    assert "died" in fault.message


def test_generic_exception_is_analysis_fault_with_type_name():
    fault = fault_from_exception(ZeroDivisionError("division by zero"),
                                 "app", stage="detection")
    assert isinstance(fault, AnalysisFault)
    assert fault.message == "ZeroDivisionError: division by zero"


def test_digest_is_stable_and_path_independent():
    # The digest hashes kind/app/message only -- never traceback frames,
    # which differ between the in-process and worker execution paths.
    a = fault_digest("analysis", "app", "boom")
    b = fault_digest("analysis", "app", "boom")
    assert a == b
    assert len(a) == 12
    assert fault_digest("parse", "app", "boom") != a


def test_fault_round_trips_through_dict():
    fault = fault_from_exception(ValueError("nope"), "app", stage="modeling")
    clone = fault_from_dict(fault.to_dict())
    assert clone == fault
    assert type(clone) is type(fault)


def test_unknown_kind_falls_back_to_analysis_fault():
    fault = fault_from_dict({"kind": "martian", "app": "a", "stage": "s",
                             "message": "m"})
    assert isinstance(fault, AnalysisFault)


def test_fault_error_message_is_actionable():
    fault = timeout_fault("mytracks1", 5.0)
    err = FaultError(fault)
    assert "mytracks1" in str(err)
    assert "--keep-going" in str(err)
    assert err.fault is fault


def test_describe_is_one_line():
    fault = worker_lost_fault("app")
    assert "\n" not in fault.describe()
    assert fault.describe().startswith("app 'app': worker-lost")


def test_base_fault_is_frozen():
    fault = Fault(app="a", stage="s", message="m")
    with pytest.raises(Exception):
        fault.app = "b"
