"""SARIF 2.1.0 export shape tests (the ISSUE acceptance checklist).

The SARIF must carry: the version string, one rule per pair type under
``runs[].tool.driver.rules``, and non-empty ``locations`` on every
result.  Downgraded warnings ship as notes, pruned ones not at all.
"""

from pathlib import Path

import json

import pytest

from repro.core import analyze_app
from repro.race.warnings import PAIR_TYPES
from repro.report import (
    build_app_report,
    build_report,
    report_to_sarif,
    SARIF_VERSION,
    write_sarif,
)

QUICKSTART = (
    Path(__file__).resolve().parents[2] / "examples" / "quickstart.mjava"
)

# native-native pair: TT downgrades it, so the report has a "downgraded"
TT_APP = """
class F { void use() { } }
class Shared { static F f; }
class A extends Activity {
  void onCreate(Bundle b) {
    Shared.f = new F();
    new Thread(new W1()).start();
    new Thread(new W2()).start();
  }
}
class W1 implements Runnable {
  public void run() { Shared.f.use(); }
}
class W2 implements Runnable {
  public void run() { Shared.f = null; }
}
"""


@pytest.fixture(scope="module")
def sarif():
    report = build_report([
        build_app_report("quickstart", analyze_app(QUICKSTART.read_text()),
                         source="examples/quickstart.mjava"),
        build_app_report("ttapp", analyze_app(TT_APP)),
    ])
    return report_to_sarif(report)


def test_sarif_version_and_schema(sarif):
    assert sarif["version"] == SARIF_VERSION == "2.1.0"
    assert "sarif-schema-2.1.0" in sarif["$schema"]
    assert len(sarif["runs"]) == 1


def test_sarif_rules_cover_every_pair_type(sarif):
    rules = sarif["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == [f"uaf-{pt}" for pt in PAIR_TYPES]
    for rule in rules:
        assert rule["shortDescription"]["text"]


def test_sarif_results_have_locations(sarif):
    results = sarif["runs"][0]["results"]
    assert results, "remaining + downgraded warnings must export"
    for result in results:
        assert result["locations"], "every result needs a location"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert result["relatedLocations"], "free site + lineage expected"
        assert result["partialFingerprints"]["nadroidWarningId"]


def test_sarif_levels_follow_status(sarif):
    results = sarif["runs"][0]["results"]
    levels = {r["partialFingerprints"]["nadroidWarningId"]: r["level"]
              for r in results}
    remaining = [wid for wid, level in levels.items()
                 if wid.startswith("quickstart::")]
    assert remaining and all(levels[wid] == "warning" for wid in remaining)
    downgraded = [wid for wid, level in levels.items()
                  if wid.startswith("ttapp::")]
    assert downgraded and all(levels[wid] == "note" for wid in downgraded)


def test_sarif_excludes_pruned_warnings(sarif):
    # quickstart has 3 potential warnings but 2 are pruned by IG
    quickstart = [r for r in sarif["runs"][0]["results"]
                  if r["partialFingerprints"]["nadroidWarningId"]
                  .startswith("quickstart::")]
    assert len(quickstart) == 1


def test_sarif_lineage_in_related_locations(sarif):
    quickstart = [r for r in sarif["runs"][0]["results"]
                  if r["partialFingerprints"]["nadroidWarningId"]
                  .startswith("quickstart::")]
    messages = [loc.get("message", {}).get("text", "")
                for loc in quickstart[0]["relatedLocations"]]
    assert any(m.startswith("use lineage[0]: main") for m in messages)
    assert any("onServiceDisconnected" in m for m in messages)


def test_write_sarif_is_valid_json(sarif, tmp_path):
    report = build_report([
        build_app_report("quickstart", analyze_app(QUICKSTART.read_text())),
    ])
    out = tmp_path / "out.sarif"
    write_sarif(report, out)
    payload = json.loads(out.read_text())
    assert payload["version"] == "2.1.0"
