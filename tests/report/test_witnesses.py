"""Witness vocabulary tests: each filter names *why* it fired.

One app per filter (the same patterns the filter unit tests use), each
asserting the witness kind and the load-bearing payload fields --
docs/reporting.md documents this vocabulary, so these tests pin it.
"""

from repro.core import analyze_app, AnalysisConfig
from repro.filters.base import FilterOptions


def sound_only_config():
    return AnalysisConfig(filters=FilterOptions(sound_only=True))


def witnesses_on(result, field_name, filter_name):
    out = []
    for warning in result.warnings:
        if warning.fieldref.field_name != field_name:
            continue
        for occ in warning.occurrences:
            if filter_name in (occ.pruned_by, occ.downgraded_by):
                assert occ.witness is not None, \
                    f"{filter_name} pruned without a witness"
                out.append(occ.witness)
    return out


MHB_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onResume() {
    f.use();
  }
  void onDestroy() {
    f = null;
  }
}
"""


def test_mhb_witness_names_the_lifecycle_edge():
    result = analyze_app(MHB_APP, config=sound_only_config())
    witnesses = witnesses_on(result, "f", "MHB")
    assert witnesses
    for witness in witnesses:
        assert witness.kind == "mhb-edge"
        assert witness.data["edge"] == "MHB-Lifecycle"
        assert "onResume" in witness.data["use_callback"]
        assert "onDestroy" in witness.data["free_callback"]
        assert "must happen before" in witness.detail


IG_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (f != null) {
          f.use();
        }
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_ig_witness_names_guard_and_atomicity():
    result = analyze_app(IG_APP, config=sound_only_config())
    witnesses = witnesses_on(result, "f", "IG")
    assert witnesses
    assert any(
        w.kind == "guard" and w.data.get("guard") == "null-check"
        and w.data["atomicity"]["kind"] == "same-looper"
        for w in witnesses
    )


IA_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = new F();
        f.use();
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_ia_witness_names_the_allocation_site():
    result = analyze_app(IA_APP, config=sound_only_config())
    witnesses = witnesses_on(result, "f", "IA")
    assert witnesses
    for witness in witnesses:
        assert witness.kind == "allocation"
        assert witness.data["source"] == "new"
        assert witness.data["field"].endswith(".f")
        assert witness.data["store_sites"], "the fresh store must be named"


RHB_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View button;
  void onCreate(Bundle b) {
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f.use();
      }
    });
  }
  void onResume() {
    f = new F();
  }
  void onPause() {
    f = null;
  }
}
"""


def test_rhb_witness_names_the_reallocating_resume():
    result = analyze_app(RHB_APP)
    witnesses = witnesses_on(result, "f", "RHB")
    assert witnesses
    for witness in witnesses:
        assert witness.kind == "resume-hb"
        assert witness.data["edge"] == "Resume-HB"
        assert "onResume" in witness.data["reallocation_method"]


CHB_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        finish();
        f = null;
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f.use();
      }
    });
  }
}
"""


def test_chb_witness_names_the_cancellation_site():
    result = analyze_app(CHB_APP)
    witnesses = witnesses_on(result, "f", "CHB")
    assert witnesses
    for witness in witnesses:
        assert witness.kind == "cancel-hb"
        assert "FINISH" in witness.data["api"]
        assert witness.data["cancel_line"] > 0


PHB_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  MyHandler handler;
  View button;
  void onCreate(Bundle b) {
    handler = new MyHandler();
    handler.app = this;
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        handler.sendEmptyMessage(1);
        f.use();
      }
    });
  }
}
class MyHandler extends Handler {
  A app;
  public void handleMessage(Message msg) {
    app.f = null;
  }
}
"""


def test_phb_witness_names_poster_and_postee():
    result = analyze_app(PHB_APP)
    witnesses = witnesses_on(result, "f", "PHB")
    assert witnesses
    for witness in witnesses:
        assert witness.kind == "post-hb"
        assert "onClick" in witness.data["poster"]
        assert "handleMessage" in witness.data["postee"]
        assert witness.data["post_site"] > 0


UR_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  F getF() { return f; }
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (getF() != null) {
          Log.d("a", "present");
        }
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_ur_witness_is_return_use():
    result = analyze_app(UR_APP)
    witnesses = witnesses_on(result, "f", "UR")
    assert witnesses
    assert all(w.kind == "return-use" for w in witnesses)


TT_APP = """
class F { void use() { } }
class Shared { static F f; }
class A extends Activity {
  void onCreate(Bundle b) {
    Shared.f = new F();
    new Thread(new W1()).start();
    new Thread(new W2()).start();
  }
}
class W1 implements Runnable {
  public void run() { Shared.f.use(); }
}
class W2 implements Runnable {
  public void run() { Shared.f = null; }
}
"""


def test_tt_witness_and_static_field_alias():
    result = analyze_app(TT_APP)
    witnesses = witnesses_on(result, "f", "TT")
    assert witnesses
    assert all(w.kind == "thread-thread" for w in witnesses)
    # a static field's aliasing witness is the field itself
    tt_warnings = [w for w in result.warnings
                   if w.fieldref.field_name == "f"]
    for warning in tt_warnings:
        for occ in warning.occurrences:
            assert occ.alias is not None
            assert occ.alias.kind == "static-field"


def test_points_to_alias_witness_on_instance_fields():
    result = analyze_app(IG_APP, config=sound_only_config())
    for warning in result.warnings:
        if warning.fieldref.field_name != "f":
            continue
        for occ in warning.occurrences:
            assert occ.alias is not None
            assert occ.alias.kind == "points-to"
            assert occ.alias.data["objects"], \
                "the overlapping abstract objects must be listed"
