"""Run-diff semantics: classification, regression gating, exit codes.

Dict-level tests against hand-built report payloads (the diff consumes
the JSON form directly), pinning the ISSUE acceptance criteria: identical
reports diff clean with zero metric deltas; one injected warning turns
``--fail-on-new`` into a non-zero exit naming exactly that warning.
"""

import copy

from repro.report import diff_reports, exit_code, render_diff
from repro.report.model import REPORT_SCHEMA


def make_report(warnings, metrics=None):
    return {
        "schema": REPORT_SCHEMA,
        "version": "1.3.0",
        "apps": {
            "app": {
                "counts": {},
                "source": "app.mjava",
                "metrics": metrics or {},
                "warnings": [
                    {"id": wid, "status": status}
                    for wid, status in warnings.items()
                ],
            },
        },
    }


BASE = {"app::A.f::A.use:3::A.free:9": "remaining",
        "app::A.g::A.use:5::A.free:7": "pruned"}


def test_identical_reports_diff_clean():
    old = make_report(BASE, metrics={"filters.potential": 2})
    diff = diff_reports(old, copy.deepcopy(old))
    assert diff.clean
    assert diff.metric_deltas == {}
    assert render_diff(diff) == \
        "reports are identical (0 warning changes, 0 metric deltas)"
    assert exit_code(diff, fail_on_new=True) == 0
    assert exit_code(diff, fail_on_new=False) == 0


def test_injected_warning_is_the_only_regression():
    injected = "app::A.h::A.use:11::A.free:12"
    new = dict(BASE)
    new[injected] = "remaining"
    diff = diff_reports(make_report(BASE), make_report(new))
    assert [d.warning_id for d in diff.new] == [injected]
    assert not diff.fixed and not diff.changed
    assert [d.warning_id for d in diff.regressions()] == [injected]
    assert exit_code(diff, fail_on_new=True) == 1
    assert exit_code(diff, fail_on_new=False) == 0
    rendered = render_diff(diff)
    assert injected in rendered
    assert "[REGRESSION]" in rendered


def test_new_pruned_warning_is_not_a_regression():
    new = dict(BASE)
    new["app::A.h::A.use:11::A.free:12"] = "pruned"
    diff = diff_reports(make_report(BASE), make_report(new))
    assert len(diff.new) == 1
    assert not diff.regressions()
    assert exit_code(diff, fail_on_new=True) == 0


def test_changed_to_remaining_is_a_regression():
    new = dict(BASE)
    new["app::A.g::A.use:5::A.free:7"] = "remaining"
    diff = diff_reports(make_report(BASE), make_report(new))
    assert not diff.new and not diff.fixed
    delta = diff.changed[0]
    assert (delta.old_status, delta.new_status) == ("pruned", "remaining")
    assert delta.is_regression
    assert exit_code(diff, fail_on_new=True) == 1


def test_changed_away_from_remaining_is_an_improvement():
    new = dict(BASE)
    new["app::A.f::A.use:3::A.free:9"] = "downgraded"
    diff = diff_reports(make_report(BASE), make_report(new))
    assert diff.changed and not diff.regressions()
    assert exit_code(diff, fail_on_new=True) == 0


def test_fixed_warning_reported_not_gated():
    new = dict(BASE)
    del new["app::A.f::A.use:3::A.free:9"]
    diff = diff_reports(make_report(BASE), make_report(new))
    assert [d.warning_id for d in diff.fixed] == \
        ["app::A.f::A.use:3::A.free:9"]
    assert not diff.regressions()
    assert "fixed (was remaining)" in render_diff(diff)


def test_metric_deltas_keep_nonzero_only():
    old = make_report(BASE, metrics={"filters.potential": 2,
                                     "filters.after_sound": 1})
    new = make_report(BASE, metrics={"filters.potential": 5,
                                     "filters.after_sound": 1})
    diff = diff_reports(old, new)
    assert diff.metric_deltas == {"filters.potential": 3}
    assert not diff.clean
    assert exit_code(diff, fail_on_new=True) == 0, \
        "metric drift alone must not trip the warning gate"
    assert "filters.potential: +3" in render_diff(diff)
