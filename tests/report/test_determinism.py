"""Report bytes are invariant under --jobs and cache temperature.

The ISSUE 3 determinism criterion: the corpus report JSON is
byte-identical between a serial and a ``--jobs 4`` run, and between a
cold-cache and a warm-cache run -- cached envelopes replay their obs
counter snapshots, so even the embedded metrics cannot drift.
"""

import pytest

from repro.corpus import app
from repro.harness import run_table1
from repro.report import build_app_report, build_report, report_to_json
from repro.runner import CorpusRunner, ResultCache

SUBSET = ["todolist", "clipstack", "connectbot", "swiftnotes"]


@pytest.fixture()
def specs():
    return [app(name) for name in SUBSET]


def corpus_report(runner, specs):
    rows = run_table1(validate=False, apps=specs, runner=runner)
    per_app = runner.last_metrics.apps if runner.last_metrics else {}
    return build_report([
        build_app_report(row.app.name, row.result,
                         metrics=per_app.get(row.app.name))
        for row in rows
    ])


def test_report_bytes_identical_serial_vs_parallel(specs):
    serial = report_to_json(corpus_report(CorpusRunner(jobs=1), specs))
    parallel = report_to_json(corpus_report(CorpusRunner(jobs=4), specs))
    assert serial == parallel


def test_report_bytes_identical_cold_vs_warm_cache(specs, tmp_path):
    cold_runner = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    cold = report_to_json(corpus_report(cold_runner, specs))
    assert cold_runner.last_stats.analyzed == len(specs)

    warm_runner = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    warm = report_to_json(corpus_report(warm_runner, specs))
    assert warm_runner.last_stats.cached == len(specs)
    assert cold == warm


def test_report_metrics_replay_from_cache(specs, tmp_path):
    """Cached rows carry their obs snapshots, so per-app witness counters
    survive a round trip through the cache envelope."""
    runner = CorpusRunner(cache=ResultCache(tmp_path))
    corpus_report(runner, specs)
    warm = corpus_report(CorpusRunner(cache=ResultCache(tmp_path)), specs)
    connectbot = warm.apps["connectbot"]
    assert connectbot.metrics.get("report.witnesses.alias", 0) > 0
    assert connectbot.metrics.get("report.lineage.entries", 0) > 0
