"""Report model, JSON and explain-rendering tests on the quickstart app.

The quickstart example (the paper's Figure 1(a) shape) yields one
remaining warning and two IG-pruned ones, which exercises every report
surface: statuses, content-based ids, provenance on each occurrence,
JSON round-tripping, and the deterministic-bytes contract.
"""

from pathlib import Path

import pytest

from repro import obs
from repro.core import analyze_app
from repro.report import (
    build_app_report,
    build_report,
    render_app_explanations,
    report_from_dict,
    report_to_dict,
    report_to_json,
    REPORT_SCHEMA,
    STATUSES,
    warning_id,
)

QUICKSTART = (
    Path(__file__).resolve().parents[2] / "examples" / "quickstart.mjava"
)


def make_report():
    recorder = obs.Recorder()
    with obs.use(recorder):
        result = analyze_app(QUICKSTART.read_text())
    return build_report([
        build_app_report("quickstart", result,
                         source="examples/quickstart.mjava",
                         metrics=recorder.snapshot())
    ])


@pytest.fixture(scope="module")
def report():
    return make_report()


@pytest.fixture(scope="module")
def app(report):
    return report.apps["quickstart"]


# -- model -------------------------------------------------------------------


def test_quickstart_statuses(app):
    by_status = app.by_status()
    assert len(by_status["remaining"]) == 1
    assert len(by_status["pruned"]) == 2
    remaining = by_status["remaining"][0]
    assert "onCreateContextMenu" in remaining.use_method
    assert remaining.status == "remaining"


def test_warning_ids_are_content_based_and_unique(app):
    ids = [warning_id(app.name, w) for w in app.warnings]
    assert len(set(ids)) == len(ids)
    for wid in ids:
        app_name, field, use, free = wid.split("::")
        assert app_name == "quickstart"
        assert field == "MainActivity.session"
        # method:line on both endpoints, lines are positive
        for endpoint in (use, free):
            method, line = endpoint.rsplit(":", 1)
            assert "." in method and int(line) > 0


def test_every_occurrence_carries_provenance(app):
    for warning in app.warnings:
        for occ in warning.occurrences:
            assert occ.use_lineage and occ.free_lineage
            assert occ.use_lineage[0]["entry"] == "main"
            assert occ.alias is not None
            assert occ.alias.kind in ("points-to", "static-field")
            if occ.verdict != "surviving":
                assert occ.witness is not None
            else:
                assert occ.witness is None


def test_metrics_are_deterministic_counters_only(app):
    assert app.metrics, "analysis counters must be embedded"
    assert all(isinstance(v, int) for v in app.metrics.values())
    assert "report.witnesses.alias" in app.metrics
    assert "report.witnesses.filter" in app.metrics
    assert not any("wall" in name or "duration" in name
                   for name in app.metrics)


def test_warning_statuses_view(report):
    statuses = report.warning_statuses()
    assert len(statuses) == 3
    assert set(statuses.values()) <= set(STATUSES)


# -- JSON --------------------------------------------------------------------


def test_json_round_trip_is_lossless(report):
    payload = report_to_dict(report)
    assert payload["schema"] == REPORT_SCHEMA
    restored = report_from_dict(payload)
    assert report_to_json(restored) == report_to_json(report)


def test_report_from_dict_rejects_wrong_schema(report):
    payload = report_to_dict(report)
    payload["schema"] = REPORT_SCHEMA + 1
    with pytest.raises(ValueError, match="unsupported report schema"):
        report_from_dict(payload)


def test_report_json_is_byte_reproducible(report):
    assert report_to_json(make_report()) == report_to_json(report)


def test_warning_dicts_carry_report_fields(report):
    payload = report_to_dict(report)
    for warning in payload["apps"]["quickstart"]["warnings"]:
        assert warning["id"].startswith("quickstart::")
        assert warning["status"] in STATUSES
        assert warning["pair_type"] == "EC-PC"
        assert warning["lines"]["use"] > 0


# -- explain rendering -------------------------------------------------------


def test_explain_shows_lineage_and_witnesses(app):
    text = render_app_explanations(app)
    assert "use  thread lineage:" in text
    assert "free thread lineage:" in text
    assert "`-> MainActivity.onCreateContextMenu" in text
    assert "`-> MainActivity$1.onServiceDisconnected" in text
    assert "posted at uid" in text
    assert "alias witness :" in text
    assert "filter witness:" in text
    assert "pruned by IG" in text
    assert "status: remaining" in text


def test_explain_status_restriction(app):
    remaining_only = render_app_explanations(app, statuses=["remaining"])
    assert "status: remaining" in remaining_only
    assert "status: pruned" not in remaining_only
    assert render_app_explanations(app, statuses=["downgraded"]) == ""
