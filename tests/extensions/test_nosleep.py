"""No-sleep (energy bug) extension tests -- the section 9 direction."""

import pytest

from repro.analysis import run_pointsto
from repro.extensions import (
    detect_nosleep,
    LEAKED,
    RACY_RELEASE,
)
from repro.lowering import compile_app
from repro.threadify import threadify


def analyze(source):
    program = threadify(compile_app(source, seal=False))
    pointsto = run_pointsto(program.module)
    return program, detect_nosleep(program, pointsto)


BASE = """
class A extends Activity {{
  PowerManager powerManager;
  WakeLock wakeLock;

  void onCreate(Bundle b) {{
    wakeLock = powerManager.newWakeLock(1, "tag");
  }}

  void onClick(View v) {{
    wakeLock.acquire();
    {after_acquire}
  }}
{extra_methods}
}}
"""


def test_acquire_without_any_release_is_leaked():
    _, warnings = analyze(BASE.format(after_acquire="", extra_methods=""))
    assert len(warnings) == 1
    assert warnings[0].severity == LEAKED
    assert warnings[0].acquire.method_qname == "A.onClick"


def test_release_on_every_local_path_is_clean():
    _, warnings = analyze(BASE.format(
        after_acquire="Log.d(\"t\", \"work\");\n    wakeLock.release();",
        extra_methods="",
    ))
    assert not warnings


def test_release_on_one_branch_only_still_leaks():
    _, warnings = analyze(BASE.format(
        after_acquire="""if (v != null) {
      wakeLock.release();
    }""",
        extra_methods="",
    ))
    assert warnings and warnings[0].severity == LEAKED


def test_cross_callback_release_is_racy():
    _, warnings = analyze(BASE.format(
        after_acquire="",
        extra_methods="""
  void onPause() {
    super.onPause();
    wakeLock.release();
  }
""",
    ))
    assert len(warnings) == 1
    assert warnings[0].severity == RACY_RELEASE
    assert warnings[0].releases


def test_release_in_ondestroy_is_guaranteed_and_pruned():
    _, warnings = analyze(BASE.format(
        after_acquire="",
        extra_methods="""
  void onDestroy() {
    super.onDestroy();
    wakeLock.release();
  }
""",
    ))
    assert not warnings, "everything precedes onDestroy: release guaranteed"


def test_unrelated_wakelocks_do_not_count_as_release():
    source = """
    class A extends Activity {
      PowerManager powerManager;
      WakeLock recordingLock;
      WakeLock displayLock;

      void onCreate(Bundle b) {
        recordingLock = powerManager.newWakeLock(1, "rec");
        displayLock = powerManager.newWakeLock(1, "disp");
      }

      void onClick(View v) {
        recordingLock.acquire();
      }

      void onPause() {
        super.onPause();
        displayLock.release();
      }
    }
    """
    _, warnings = analyze(source)
    assert len(warnings) == 1
    # Both locks come from ONE newWakeLock call site on one PowerManager
    # receiver, so the k-object-sensitive heap merges them (the same
    # receiver-context imprecision as the paper's section 8.5 static
    # factories): the release *looks* aliased and the leak is downgraded
    # to a racy-release rather than a definite leak.
    assert warnings[0].severity == RACY_RELEASE


def test_distinct_allocation_sites_keep_the_leak_definite():
    source = """
    class A extends Activity {
      MediaPlayer music;
      MediaPlayer effects;

      void onCreate(Bundle b) {
        music = new MediaPlayer();
        effects = new MediaPlayer();
      }

      void onClick(View v) {
        music.start();
      }

      void onPause() {
        super.onPause();
        effects.release();
      }
    }
    """
    _, warnings = analyze(source)
    assert len(warnings) == 1
    assert warnings[0].severity == LEAKED, \
        "distinct allocation sites: the other player's release cannot rescue"


def test_media_player_contract_detected():
    source = """
    class A extends Activity {
      MediaPlayer player;
      void onCreate(Bundle b) {
        player = new MediaPlayer();
      }
      void onClick(View v) {
        player.start();
      }
    }
    """
    _, warnings = analyze(source)
    assert warnings
    assert warnings[0].acquire.contract[0] == "MediaPlayer"


def test_describe_names_lineage(capsys):
    program, warnings = analyze(BASE.format(after_acquire="",
                                            extra_methods=""))
    text = warnings[0].describe(program)
    assert "no-sleep risk" in text
    assert "WakeLock.acquire" in text
    assert "main ->" in text
