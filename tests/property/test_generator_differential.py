"""Differential suite for the generated corpus (the PR-5 idiom): the same
seed must produce byte-identical sources, score reports and analysis
counters across ``--jobs`` settings and across cold-vs-warm cache runs."""

import json

from repro.corpus import generate_corpus, GeneratorConfig
from repro.harness import run_generated
from repro.report import score_generated
from repro.runner import CorpusRunner, ResultCache
from repro.runner.serialize import result_data_to_dict

CONFIG = GeneratorConfig(seed=42, count=10)


def _canonical(apps, results):
    """Results as canonical JSON with wall-clock timings stripped."""
    payloads = []
    for result in results:
        payload = result_data_to_dict(result)
        payload["timings"] = {}
        payloads.append(payload)
    return json.dumps(
        {"apps": [a.source for a in apps], "results": payloads},
        sort_keys=True,
    )


def _counters(runner):
    return {
        name: dict(snapshot.counters)
        for name, snapshot in runner.last_metrics.apps.items()
    }


def test_serial_and_parallel_runs_are_byte_identical():
    serial = CorpusRunner(jobs=1)
    parallel = CorpusRunner(jobs=4)
    apps1, results1 = run_generated(serial, CONFIG)
    apps4, results4 = run_generated(parallel, CONFIG)
    assert _canonical(apps1, results1) == _canonical(apps4, results4)
    assert _counters(serial) == _counters(parallel)
    score1 = score_generated(apps1, results1)
    score4 = score_generated(apps4, results4)
    assert json.dumps(score1.to_dict(), sort_keys=True) == \
        json.dumps(score4.to_dict(), sort_keys=True)


def test_cold_and_warm_cache_runs_are_byte_identical(tmp_path):
    cold = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    apps_cold, results_cold = run_generated(cold, CONFIG)
    assert cold.last_stats.analyzed == CONFIG.count
    assert cold.last_stats.cached == 0

    warm = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    apps_warm, results_warm = run_generated(warm, CONFIG)
    assert warm.last_stats.analyzed == 0
    assert warm.last_stats.cached == CONFIG.count

    assert _canonical(apps_cold, results_cold) == \
        _canonical(apps_warm, results_warm)
    # cache hits replay the counters recorded when the entry was built
    assert _counters(cold) == _counters(warm)


def test_generator_config_changes_invalidate_the_cache(tmp_path):
    runner = CorpusRunner(jobs=1, cache=ResultCache(tmp_path))
    run_generated(runner, CONFIG)
    assert runner.last_stats.analyzed == CONFIG.count

    # same seed/count, different pattern knobs: sources differ, so every
    # app must miss the cache
    tweaked = GeneratorConfig(seed=42, count=10, max_patterns=2)
    run_generated(runner, tweaked)
    assert runner.last_stats.cached == 0


def test_generated_names_never_collide_with_registry_apps():
    from repro.corpus import all_apps

    names = {a.name for a in generate_corpus(CONFIG)}
    assert not names & {spec.name for spec in all_apps()}
