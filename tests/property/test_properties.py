"""Property-based tests (hypothesis) for core data structures/invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.datalog import Literal, Program, query, vars_
from repro.android.lifecycle import sound_mhb_pairs
from repro.harness import render_table
from repro.lang import tokenize
from repro.lang.tokens import KEYWORDS, TokenType
from repro.runtime.interpreter import Interpreter
from repro.runtime.values import Heap
from repro.ir import FieldRef


# -- Datalog: semi-naive closure equals the naive fixpoint ---------------------

edges_strategy = st.sets(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=35
)


@given(edges=edges_strategy)
@settings(max_examples=60, deadline=None)
def test_datalog_closure_equals_naive(edges):
    X, Y, Z = vars_("X Y Z")
    program = Program().add_facts("edge", edges)
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    program.rule(
        Literal("path", (X, Z)),
        Literal("path", (X, Y)), Literal("edge", (Y, Z)),
    )
    got = query(program, "path")

    expected = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(expected):
            for (c, d) in edges:
                if b == c and (a, d) not in expected:
                    expected.add((a, d))
                    changed = True
    assert got == expected


@given(edges=edges_strategy, negated=st.sets(st.integers(0, 9), max_size=5))
@settings(max_examples=40, deadline=None)
def test_datalog_negation_is_set_difference(edges, negated):
    X, Y = vars_("X Y")
    program = Program().add_facts("edge", edges)
    program.add_facts("banned", {(n,) for n in negated})
    program.rule(
        Literal("ok", (X, Y)),
        Literal("edge", (X, Y)),
        Literal("banned", (X,), negated=True),
    )
    got = query(program, "ok")
    assert got == {(a, b) for (a, b) in edges if a not in negated}


# -- lifecycle automaton: sound MHB is a strict partial order --------------------

transitions_strategy = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    st.tuples(st.sampled_from(["a", "b", "c", "d", "e"])),
    min_size=1, max_size=5,
)


@given(transitions=transitions_strategy)
@settings(max_examples=80, deadline=None)
def test_sound_mhb_is_strict_partial_order(transitions):
    pairs = sound_mhb_pairs(transitions)
    for (a, b) in pairs:
        assert a != b, "irreflexive"
        assert (b, a) not in pairs, "antisymmetric"
    # transitivity of the derived relation
    for (a, b) in pairs:
        for (c, d) in pairs:
            if b == c:
                assert (a, d) in pairs or a == d, "transitive"


# -- lexer: values survive tokenization -------------------------------------------

identifier = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


@given(names=st.lists(identifier, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_lexer_roundtrips_identifiers(names):
    tokens = tokenize(" ".join(names))
    assert [t.value for t in tokens[:-1]] == names
    assert all(t.type is TokenType.IDENT for t in tokens[:-1])


@given(values=st.lists(st.integers(0, 10**9), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_lexer_roundtrips_integers(values):
    tokens = tokenize(" ".join(str(v) for v in values))
    assert [t.value for t in tokens[:-1]] == values


printable_text = st.text(
    alphabet=st.sampled_from(string.ascii_letters + string.digits + " _.,;:!?"),
    max_size=30,
)


@given(text=printable_text)
@settings(max_examples=60, deadline=None)
def test_lexer_roundtrips_string_literals(text):
    tokens = tokenize(f'"{text}"')
    assert tokens[0].type is TokenType.STRING_LITERAL
    assert tokens[0].value == text


# -- interpreter arithmetic matches Python (int domain) ----------------------------

@given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000),
       op=st.sampled_from(["+", "-", "*", "==", "!=", "<", "<=", ">", ">="]))
@settings(max_examples=100, deadline=None)
def test_interpreter_binary_matches_python(a, b, op):
    got = Interpreter._binary(op, a, b)
    expected = eval(f"a {op} b")
    assert got == expected


@given(a=st.one_of(st.none(), st.integers(-5, 5), st.booleans(),
                   st.text(max_size=4)),
       b=st.one_of(st.none(), st.integers(-5, 5), st.booleans(),
                   st.text(max_size=4)))
@settings(max_examples=100, deadline=None)
def test_interpreter_string_concat_never_crashes(a, b):
    if isinstance(a, str) or isinstance(b, str):
        result = Interpreter._binary("+", a, b)
        assert isinstance(result, str)
        if a is None:
            assert result.startswith("null")


# -- heap ---------------------------------------------------------------------------

@given(writes=st.lists(
    st.tuples(st.sampled_from(["f", "g", "h"]), st.integers(0, 100)),
    max_size=20,
))
@settings(max_examples=60, deadline=None)
def test_heap_last_write_wins(writes):
    heap = Heap()
    obj = heap.alloc("A")
    last = {}
    for field_name, value in writes:
        heap.put_field(obj, FieldRef("A", field_name), value)
        last[field_name] = value
    for field_name in ("f", "g", "h"):
        assert heap.get_field(obj, FieldRef("A", field_name)) == last.get(field_name)


@given(n=st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_heap_allocations_are_distinct(n):
    heap = Heap()
    refs = [heap.alloc("A") for _ in range(n)]
    assert len({r.oid for r in refs}) == n
    heap.put_field(refs[0], FieldRef("A", "x"), 1)
    for other in refs[1:]:
        assert heap.get_field(other, FieldRef("A", "x")) is None


# -- table rendering -----------------------------------------------------------------

@given(rows=st.lists(
    st.tuples(identifier, st.integers(0, 10**6)), min_size=1, max_size=8,
))
@settings(max_examples=40, deadline=None)
def test_render_table_keeps_columns_aligned(rows):
    text = render_table(["name", "count"], rows)
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2
    name_width = max(len("name"), *(len(name) for name, _ in rows))
    for line, (name, count) in zip(lines[2:], rows):
        assert line.startswith(name)
        # the count column always starts right after the padded name column
        assert line[name_width + 2:].startswith(str(count))
