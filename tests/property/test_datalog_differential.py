"""Differential property test: semi-naive engine vs a naive reference.

Generates seeded random programs -- recursive rules, negation across
strata, ``<``/``!=`` builtins, rules where several body literals are
delta-eligible -- and asserts the planned, indexed, semi-naive engine
computes exactly the least model of a deliberately dumb reference
evaluator (stratum-by-stratum full re-join until fixpoint, positives
first, constraints as post-filters).

The reference shares only :func:`stratify` with the engine; joins,
deltas, planning and indexing are all independent code paths.
"""

import random

import pytest

from repro.datalog import evaluate, Literal, Program, Rule, stratify, vars_
from repro.datalog.terms import is_var


# -- reference evaluator -------------------------------------------------------


def naive_evaluate(program):
    """Stratified naive fixpoint; no deltas, no indexes, no planning."""
    relations = {pred: set(rows) for pred, rows in program.facts.items()}

    def rows(pred):
        return relations.setdefault(pred, set())

    def match(literal, row, env):
        if len(row) != len(literal.args):
            return None
        env = dict(env)
        for arg, value in zip(literal.args, row):
            if is_var(arg):
                if arg in env:
                    if env[arg] != value:
                        return None
                else:
                    env[arg] = value
            elif arg != value:
                return None
        return env

    def holds_builtin(literal, env):
        import operator

        ops = {"!=": operator.ne, "==": operator.eq,
               "<": operator.lt, "<=": operator.le}
        a, b = (env[arg] if is_var(arg) else arg for arg in literal.args)
        result = ops[literal.pred](a, b)
        return not result if literal.negated else result

    def satisfies_negation(literal, env):
        hit = any(
            match(literal, row, env) is not None
            for row in rows(literal.pred)
        )
        return not hit

    for stratum in stratify(program):
        changed = True
        while changed:
            changed = False
            for rule in stratum:
                if not rule.body:
                    row = tuple(rule.head.args)
                    if row not in rows(rule.head.pred):
                        rows(rule.head.pred).add(row)
                        changed = True
                    continue
                positives = [l for l in rule.body
                             if not l.negated and not l.is_builtin]
                constraints = [l for l in rule.body
                               if l.negated or l.is_builtin]
                envs = [{}]
                for literal in positives:
                    envs = [
                        new_env
                        for env in envs
                        for row in rows(literal.pred)
                        for new_env in [match(literal, row, env)]
                        if new_env is not None
                    ]
                for env in envs:
                    ok = True
                    for literal in constraints:
                        if literal.is_builtin:
                            if not holds_builtin(literal, env):
                                ok = False
                                break
                        elif not satisfies_negation(literal, env):
                            ok = False
                            break
                    if not ok:
                        continue
                    derived = tuple(
                        env[a] if is_var(a) else a for a in rule.head.args
                    )
                    if derived not in rows(rule.head.pred):
                        rows(rule.head.pred).add(derived)
                        changed = True
    return relations


# -- random program generator --------------------------------------------------

X, Y, Z = vars_("X Y Z")
VALUES = list(range(7))


def random_program(rng):
    """A three-layer program: EDB -> recursive IDB -> negation layer."""
    program = Program()
    for _ in range(rng.randint(4, 14)):
        program.fact("edge", rng.choice(VALUES), rng.choice(VALUES))
    for _ in range(rng.randint(2, 7)):
        program.fact("node", rng.choice(VALUES))

    # layer 1: recursive reachability, sometimes guarded by a builtin
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    body = [Literal("path", (X, Y)), Literal("edge", (Y, Z))]
    if rng.random() < 0.5:
        # a builtin placed BEFORE its binders: exercises join planning
        body.insert(0, Literal("!=", (X, Z)))
    program.rule(Literal("path", (X, Z)), *body)
    if rng.random() < 0.5:
        # multi-delta-literal rule: both path literals are in-stratum
        program.rule(
            Literal("path", (X, Z)),
            Literal("path", (X, Y)), Literal("path", (Y, Z)),
        )

    # layer 2: negation across strata plus an ordering builtin
    shapes = []
    shapes.append((
        Literal("isolated", (X,)),
        [Literal("node", (X,)), Literal("path", (X, X), negated=True)],
    ))
    shapes.append((
        Literal("ordered", (X, Y)),
        [Literal("<", (X, Y)), Literal("path", (X, Y))],
    ))
    shapes.append((
        Literal("deadend", (X,)),
        [Literal("path", (Y, X)),
         Literal("path", (X, Y), negated=True)],
    ))
    for head, body in rng.sample(shapes, rng.randint(1, len(shapes))):
        program.rule(head, *body)
    return program


@pytest.mark.parametrize("seed", range(25))
def test_engine_matches_naive_reference(seed):
    rng = random.Random(seed * 7919 + 13)
    program = random_program(rng)
    got = evaluate(program)
    expected = naive_evaluate(program)
    preds = set(got) | set(expected)
    for pred in preds:
        assert got.get(pred, set()) == expected.get(pred, set()), (
            f"seed={seed} relation {pred!r} diverged"
        )


@pytest.mark.parametrize("seed", range(8))
def test_engine_matches_reference_on_pure_edb_noise(seed):
    """Programs whose rule bodies mix constants and repeated variables."""
    rng = random.Random(seed + 1000)
    program = Program()
    for _ in range(rng.randint(5, 20)):
        program.fact("t", rng.choice(VALUES), rng.choice(VALUES),
                     rng.choice(VALUES))
    c = rng.choice(VALUES)
    program.rule(Literal("diag", (X,)), Literal("t", (X, X, Y)))
    program.rule(Literal("fixed", (X, Y)), Literal("t", (c, X, Y)))
    program.rule(
        Literal("both", (X,)),
        Literal("diag", (X,)),
        Literal("fixed", (X, Y)),
        Literal("<=", (X, Y)),
    )
    got = evaluate(program)
    expected = naive_evaluate(program)
    for pred in ("diag", "fixed", "both"):
        assert got.get(pred, set()) == expected.get(pred, set())
