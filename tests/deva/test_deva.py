"""DEvA baseline tests: it must exhibit exactly the limitations the paper
attributes to it (section 2.3 / 8.7)."""

import pytest

from repro.core import analyze_app
from repro.deva import run_deva


def deva_on(source):
    result = analyze_app(source)
    return result, run_deva(result.program.module)


def test_deva_detects_intra_class_pair():
    result, warnings = deva_on(
        """
        class F { void use() { } }
        class A extends Activity {
          F f;
          void onResume() { f.use(); }
          void onDestroy() { f = null; }
        }
        """
    )
    harmful = [w for w in warnings if w.harmful and w.field_name == "f"]
    assert harmful, "DEvA finds intra-class event anomalies"


def test_deva_reports_ondestroy_pairs_nadroid_filters():
    # Table 3: DEvA marks use-vs-onDestroy-free harmful; nAdroid's MHB
    # filter prunes it.
    source = """
    class MusicAdapter { void notify2() { } }
    class AlbumBrowserActivity extends Activity {
      MusicAdapter mAdapter;
      void onActivityResult(int rq, int rs, Intent d) { mAdapter.notify2(); }
      void onDestroy() { mAdapter = null; }
    }
    """
    result, warnings = deva_on(source)
    deva_harmful = [w for w in warnings if w.harmful]
    assert deva_harmful, "DEvA reports the onDestroy pair as harmful"
    # nAdroid detects the same pair but filters it via MHB
    keys = {w.key for w in result.warnings}
    assert any(w.key in keys for w in deva_harmful), "nAdroid detects it too"
    assert not result.remaining(), "nAdroid's MHB filter prunes it"


def test_deva_misses_inter_class_pair_nadroid_finds():
    # Figure 1(a)-style: the frees live in a separate top-level class.
    source = """
    class F { void use() { } }
    class A extends Activity {
      F f;
      Conn conn;
      void onStart() {
        conn = new Conn();
        conn.owner = this;
        bindService(new Intent("s"), conn, 0);
      }
      void onCreateContextMenu(ContextMenu m, View v, ContextMenuInfo i) {
        f.use();
      }
    }
    class Conn implements ServiceConnection {
      A owner;
      public void onServiceConnected(ComponentName n, IBinder s) {
        owner.f = new F();
      }
      public void onServiceDisconnected(ComponentName n) {
        owner.f = null;
      }
    }
    """
    result, warnings = deva_on(source)
    assert not [w for w in warnings if w.harmful and w.field_name == "f"], \
        "DEvA's intra-class scope misses the cross-class pair"
    assert [w for w in result.remaining() if w.fieldref.field_name == "f"], \
        "nAdroid finds it"


def test_deva_unsound_guard_misses_cross_thread_uaf():
    # Figure 1(c)-style: DEvA trusts the guard although the free runs on a
    # background thread.
    source = """
    class JavaClient { void abort() { } }
    class GeckoApp extends Activity {
      JavaClient jClient;
      ExecutorService pool;
      void onResume() {
        jClient = new JavaClient();
        pool.execute(new Runnable() {
          public void run() { jClient = null; }
        });
      }
      void onPause() {
        if (jClient != null) { jClient.abort(); }
      }
    }
    """
    result, warnings = deva_on(source)
    harmful = [w for w in warnings if w.harmful and w.field_name == "jClient"
               and "onPause" in w.use_method]
    assert not harmful, "DEvA's unsound IG filter suppresses the real bug"
    assert [w for w in result.remaining()
            if w.fieldref.field_name == "jClient"], "nAdroid keeps it"


def test_deva_same_method_pairs_not_reported():
    _result, warnings = deva_on(
        """
        class F { void use() { } }
        class A extends Activity {
          F f;
          void onResume() { f.use(); f = null; }
        }
        """
    )
    assert not [w for w in warnings if w.field_name == "f"]
