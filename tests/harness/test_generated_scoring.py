"""Ground-truth scoring over seeded 200-app corpora: every injected
pattern must be detected and classified correctly, clean apps must stay
warning-free, and the headline numbers are pinned for two fixed seeds."""

import pytest

from repro.corpus import GeneratorConfig
from repro.harness import run_generated
from repro.report import render_score, score_generated
from repro.runner import CorpusRunner

#: the two pinned corpora; the label counts are part of the determinism
#: contract (a generator change that shifts them must be deliberate)
PINNED = {
    42: {"labels": 397, "clean": 43},
    1234: {"labels": 377, "clean": 50},
}


@pytest.fixture(scope="module", params=sorted(PINNED))
def scored(request):
    seed = request.param
    config = GeneratorConfig(seed=seed, count=200)
    apps, results = run_generated(CorpusRunner(jobs=4), config)
    return seed, apps, score_generated(apps, results)


def test_every_injected_pattern_is_detected(scored):
    seed, _, report = scored
    missed = [s.label.label_id for s in report.labels if not s.detected]
    assert not missed, f"seed {seed}: missed {missed}"
    assert report.recall == 1.0


def test_surviving_vs_filtered_matches_ground_truth(scored):
    seed, _, report = scored
    wrong = [
        f"{s.label.label_id}: expected {s.label.expected}, "
        f"observed {s.observed}"
        for s in report.labels if not s.status_ok
    ]
    assert not wrong, f"seed {seed}: {wrong}"
    assert report.status_accuracy == 1.0


def test_pair_types_match_ground_truth(scored):
    seed, _, report = scored
    wrong = [s.label.label_id for s in report.labels
             if s.detected and not s.pair_type_ok]
    assert not wrong, f"seed {seed}: {wrong}"


def test_no_false_survivors_and_no_clean_violations(scored):
    seed, _, report = scored
    assert not report.false_survivors, f"seed {seed}"
    assert not report.clean_violations, f"seed {seed}"
    assert report.precision == 1.0


def test_headline_numbers_are_pinned(scored):
    seed, apps, report = scored
    pinned = PINNED[seed]
    assert report.apps_total == 200
    assert report.total == pinned["labels"]
    assert report.apps_clean == pinned["clean"]
    assert sum(1 for a in apps if a.clean) == pinned["clean"]


def test_every_catalog_pattern_appears_in_the_pinned_corpora(scored):
    # 200 apps with up to 4 injections each: every one of the 13 patterns
    # must occur, so the whole catalog is exercised end-to-end
    from repro.corpus import PATTERN_NAMES

    _, apps, report = scored
    seen = {s.label.pattern for s in report.labels}
    assert seen == set(PATTERN_NAMES)


def test_render_score_is_clean_and_deterministic(scored):
    seed, _, report = scored
    text = render_score(report)
    assert "recall          : " in text
    assert "100.0%" in text
    # a perfect run renders no problem lines
    for marker in ("MISSED", "WRONG-STATUS", "FALSE-SURVIVOR",
                   "CLEAN-VIOLATION", "UNSCORED"):
        assert marker not in text
    assert text == render_score(report)
