"""Harness unit tests: rendering, CSV export, summaries (fast subsets)."""

import csv
import io

import pytest

from repro.corpus import app
from repro.harness import (
    build_row,
    CSV_COLUMNS,
    percent,
    render_table,
    render_table1,
    result_analysis_csv,
    run_table1,
)


def test_render_table_alignment():
    text = render_table(
        ["Name", "N"],
        [("alpha", 1), ("a-much-longer-name", 22)],
    )
    lines = text.splitlines()
    assert len(lines) == 4
    assert len({len(line.rstrip()) for line in lines[2:]}) <= 2
    assert lines[0].startswith("Name")
    assert "a-much-longer-name" in lines[3]


def test_percent_formatting():
    assert percent(1, 4) == "25%"
    assert percent(0, 0) == "-"
    assert percent(3, 3) == "100%"


@pytest.fixture(scope="module")
def small_rows():
    return run_table1(
        validate=False,
        apps=[app("todolist"), app("connectbot")],
    )


def test_build_row_without_validation(small_rows):
    todolist, connectbot = small_rows
    assert todolist.name == "todolist"
    assert todolist.true_harmful == 0
    assert connectbot.counts["after_unsound"] == 7


def test_render_table1_contains_every_app(small_rows):
    text = render_table1(small_rows)
    assert "todolist" in text and "connectbot" in text
    assert "Potential" in text


def test_csv_export_schema(small_rows):
    text = result_analysis_csv(small_rows)
    reader = csv.reader(io.StringIO(text))
    header = next(reader)
    assert header == CSV_COLUMNS
    rows = list(reader)
    assert len(rows) == 2
    by_name = {row[1]: row for row in rows}
    connectbot = by_name["connectbot"]
    assert connectbot[0] == "train"
    potential_index = CSV_COLUMNS.index("potential_uafs")
    assert int(connectbot[potential_index]) > 0


def test_build_row_with_validation_on_tiny_app():
    row = build_row(app("clipstack"), validate=True, random_attempts=5)
    assert row.true_harmful == 0
    assert row.fp_breakdown and sum(row.fp_breakdown.values()) == 0
