"""Unit and CLI tests for the ``bench --compare`` regression gate."""

import copy
import json

import pytest

from repro.cli import main
from repro.harness import (
    compare_bench, GATED_COUNTERS, has_regressions, render_compare,
)


def payload(date="2026-01-01", total=1.0, counters=None, apps=("alpha",)):
    counters = counters or {
        "datalog.passes": 3,
        "datalog.derived_facts": 100,
        "pointsto.passes": 5,
        "pointsto.worklist.popped": 40,
        "pointsto.worklist.pushed": 40,
    }
    return {
        "schema": 1,
        "date": date,
        "jobs": 1,
        "apps": {
            name: {
                "timings": {"total": total, "detection": total / 2},
                "counters": dict(counters),
                "gauges": {},
                "spans": [],
            }
            for name in apps
        },
        "totals": {"timings": {"total": total * len(apps)},
                   "counters": dict(counters)},
    }


def test_identical_payloads_have_no_regressions():
    old = payload()
    comparison = compare_bench(old, copy.deepcopy(old))
    assert not has_regressions(comparison)
    assert comparison["apps"]["alpha"]["delta_s"] == 0.0
    assert "no regressions" in render_compare(comparison)


def test_counter_increase_is_a_regression():
    old = payload()
    new = copy.deepcopy(old)
    new["apps"]["alpha"]["counters"]["pointsto.worklist.popped"] = 41
    comparison = compare_bench(old, new)
    assert has_regressions(comparison)
    (reg,) = comparison["regressions"]
    assert reg == {"app": "alpha", "kind": "counter",
                   "name": "pointsto.worklist.popped",
                   "old": 40, "new": 41}
    assert "REGRESSION alpha: pointsto.worklist.popped 40 -> 41" \
        in render_compare(comparison)


def test_counter_decrease_is_an_improvement_not_a_regression():
    old = payload()
    new = copy.deepcopy(old)
    new["apps"]["alpha"]["counters"]["datalog.derived_facts"] = 50
    assert not has_regressions(compare_bench(old, new))


def test_missing_counter_never_gates():
    """Baselines from an older engine generation lack new counters."""
    old = payload(counters={"datalog.passes": 3})
    new = payload()
    comparison = compare_bench(old, new)
    assert not has_regressions(comparison)
    assert "pointsto.worklist.popped" not in \
        comparison["apps"]["alpha"]["counters"]


def test_hotspot_prefix_counters_gate_when_present_on_both_sides():
    old = payload()
    old["apps"]["alpha"]["counters"]["hotspot.datalog.rule.r#0.0.facts"] = 10
    new = copy.deepcopy(old)
    new["apps"]["alpha"]["counters"]["hotspot.datalog.rule.r#0.0.facts"] = 11
    comparison = compare_bench(old, new)
    assert has_regressions(comparison)
    (reg,) = comparison["regressions"]
    assert reg["name"] == "hotspot.datalog.rule.r#0.0.facts"
    assert reg["old"] == 10 and reg["new"] == 11


def test_hotspot_counter_missing_on_one_side_never_gates():
    """Committed baselines predate the hotspot namespace; a candidate
    that adds hotspot.* counters must still compare clean."""
    old = payload()
    new = copy.deepcopy(old)
    new["apps"]["alpha"]["counters"]["hotspot.datalog.rule.r#0.0.facts"] = 11
    assert not has_regressions(compare_bench(old, new))
    # and the other direction: a baseline with them, a candidate without
    assert not has_regressions(compare_bench(new, old))


def test_time_regression_beyond_tolerance_and_slack():
    old = payload(total=2.0)
    new = payload(total=2.9)
    # 2.9 > 2.0 * 1.25 + 0.25 = 2.75 -> regression
    comparison = compare_bench(old, new)
    kinds = {r["kind"] for r in comparison["regressions"]}
    assert kinds == {"time"}
    assert comparison["apps"]["alpha"]["time_regressed"]
    # widening the tolerance waives it
    assert not has_regressions(compare_bench(old, new, time_tolerance=0.5))


def test_small_absolute_growth_is_slack_absorbed():
    # +60% relative but only +0.06s absolute: sub-second noise
    old = payload(total=0.1)
    new = payload(total=0.16)
    assert not has_regressions(compare_bench(old, new))


def test_disjoint_apps_reported_but_never_gate():
    old = payload(apps=("alpha", "gone"))
    new = payload(apps=("alpha", "fresh"))
    comparison = compare_bench(old, new)
    assert comparison["only_old"] == ["gone"]
    assert comparison["only_new"] == ["fresh"]
    assert not has_regressions(comparison)
    rendered = render_compare(comparison)
    assert "(only in baseline)" in rendered
    assert "(only in candidate)" in rendered


def test_gated_counters_cover_both_engines():
    joined = " ".join(GATED_COUNTERS)
    assert "datalog." in joined and "pointsto." in joined


# -- CLI surface ---------------------------------------------------------------


def test_cli_bench_compare_self_is_clean(tmp_path, capsys):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(first)]) == 0
    code = main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(second), "--compare", str(first),
                 "--compare-time-tolerance", "5.0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bench compare:" in out
    assert "no regressions" in out


def test_cli_bench_compare_detects_tampered_baseline(tmp_path, capsys):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(first)]) == 0
    baseline = json.loads(first.read_text())
    counters = baseline["apps"]["todolist"]["counters"]
    counters["pointsto.worklist.popped"] -= 1  # pretend we used to do less
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(baseline))
    code = main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(second), "--compare", str(tampered),
                 "--compare-time-tolerance", "5.0"])
    out = capsys.readouterr().out
    assert code == 4
    assert "REGRESSION todolist: pointsto.worklist.popped" in out


def test_cli_bench_compare_rejects_non_bench_json(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"schema": 99}')
    out_path = tmp_path / "out.json"
    code = main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(out_path), "--compare", str(bogus)])
    err = capsys.readouterr().err
    assert code == 2
    assert "not a nadroid benchmark" in err
    assert not out_path.exists()  # validated before the expensive run


def test_cli_bench_compare_rejects_missing_file(tmp_path, capsys):
    code = main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(tmp_path / "out.json"),
                 "--compare", str(tmp_path / "nope.json")])
    err = capsys.readouterr().err
    assert code == 2
    assert "cannot read" in err


def test_cli_bench_compare_negative_tolerance_rejected(tmp_path, capsys):
    code = main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(tmp_path / "out.json"),
                 "--compare", str(tmp_path / "x.json"),
                 "--compare-time-tolerance", "-1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--compare-time-tolerance" in err
