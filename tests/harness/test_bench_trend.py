"""``bench --history`` / ``bench trend``: history append semantics,
the comparability gate, and monotone-drift detection."""

import json

import pytest

from repro.cli import main
from repro.harness import (
    append_history,
    check_comparable,
    corpus_shape,
    detect_drift,
    load_history,
    render_trend,
    trend_rows,
)


def payload(date="2026-01-01", total=1.0, popped=40, apps=("alpha",),
            corpus=None):
    counters = {
        "datalog.passes": 3,
        "datalog.total_facts": 100,
        "pointsto.worklist.popped": popped,
    }
    body = {
        "schema": 1,
        "date": date,
        "jobs": 1,
        "apps": {name: {"timings": {"total": total},
                        "counters": dict(counters)}
                 for name in apps},
        "totals": {"timings": {"total": total * len(apps)},
                   "counters": dict(counters)},
    }
    if corpus is not None:
        body["corpus"] = corpus
    return body


def history_of(*payloads):
    return [(f"BENCH_{p['date']}.json", p) for p in payloads]


# -- corpus shape -------------------------------------------------------------


def test_corpus_shape_digest_is_order_insensitive_but_content_sensitive():
    a = corpus_shape("registry", ["x", "y"])
    b = corpus_shape("registry", ["y", "x", "x"])
    assert a["digest"] == b["digest"]
    assert a["apps"] == 2
    assert corpus_shape("registry", ["x", "z"])["digest"] != a["digest"]
    # the generator config feeds the digest for generated corpora
    g = corpus_shape("generated", ["x", "y"], generator={"k": 1}, seed=7)
    assert g["digest"] != a["digest"]
    assert g["seed"] == 7


# -- history directory --------------------------------------------------------


def test_append_history_suffixes_same_day_collisions(tmp_path):
    directory = str(tmp_path / "hist")
    first = append_history(payload(), directory)
    second = append_history(payload(total=2.0), directory)
    third = append_history(payload(total=3.0), directory)
    assert first.endswith("BENCH_2026-01-01.json")
    assert second.endswith("BENCH_2026-01-01-2.json")
    assert third.endswith("BENCH_2026-01-01-3.json")


def test_load_history_orders_by_date_then_append_order(tmp_path):
    directory = str(tmp_path)
    append_history(payload(date="2026-01-02", total=2.0), directory)
    append_history(payload(date="2026-01-01", total=1.0), directory)
    append_history(payload(date="2026-01-02", total=3.0), directory)
    names = [name for name, _ in load_history(directory)]
    # lexicographically "-2" sorts before ".json", so the loader must
    # order by (date, name length, name) to keep append order
    assert names == ["BENCH_2026-01-01.json", "BENCH_2026-01-02.json",
                     "BENCH_2026-01-02-2.json"]
    walls = [p["totals"]["timings"]["total"]
             for _, p in load_history(directory)]
    assert walls == [1.0, 2.0, 3.0]


def test_load_history_is_strict_about_foreign_files(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{ nope")
    with pytest.raises(ValueError, match="cannot parse BENCH_bad.json"):
        load_history(str(tmp_path))
    (tmp_path / "BENCH_bad.json").write_text('{"schema": 99}')
    with pytest.raises(ValueError, match="not a schema-1 bench payload"):
        load_history(str(tmp_path))
    # non-BENCH files are simply skipped, not errors
    (tmp_path / "BENCH_bad.json").unlink()
    (tmp_path / "notes.txt").write_text("hello")
    assert load_history(str(tmp_path)) == []


# -- comparability gate -------------------------------------------------------


def test_check_comparable_accepts_same_corpus_and_legacy_payloads():
    shape = corpus_shape("registry", ["alpha"])
    history = history_of(
        payload(date="2026-01-01"),                 # legacy: no corpus key
        payload(date="2026-01-02", corpus=shape),
        payload(date="2026-01-03", corpus=dict(shape)),
    )
    assert check_comparable(history) is None


def test_check_comparable_rejects_different_app_sets():
    history = history_of(
        payload(date="2026-01-01", apps=("alpha",)),
        payload(date="2026-01-02", apps=("alpha", "beta")),
    )
    error = check_comparable(history)
    assert "different corpora (app sets differ)" in error
    assert "BENCH_2026-01-01.json" in error
    assert "BENCH_2026-01-02.json" in error


def test_check_comparable_rejects_different_corpus_digests():
    """Same app names but different generator configs: only the shape
    metadata can tell them apart."""
    history = history_of(
        payload(date="2026-01-01",
                corpus=corpus_shape("generated", ["alpha"],
                                    generator={"k": 1}, seed=1)),
        payload(date="2026-01-02",
                corpus=corpus_shape("generated", ["alpha"],
                                    generator={"k": 2}, seed=1)),
    )
    assert "corpus digest" in check_comparable(history)


# -- drift gate ---------------------------------------------------------------


def test_monotone_counter_growth_is_drift():
    history = history_of(
        payload(date="2026-01-01", popped=40),
        payload(date="2026-01-02", popped=40),
        payload(date="2026-01-03", popped=45),
    )
    (drift,) = detect_drift(history, window=5)
    assert drift["kind"] == "counter"
    assert drift["name"] == "pointsto.worklist.popped"
    assert (drift["first"], drift["last"]) == (40, 45)


def test_a_single_dip_resets_the_counter_alarm():
    history = history_of(
        payload(date="2026-01-01", popped=40),
        payload(date="2026-01-02", popped=39),
        payload(date="2026-01-03", popped=45),
    )
    assert detect_drift(history, window=5) == []


def test_wall_time_drift_needs_monotone_growth_beyond_tolerance():
    slow = history_of(
        payload(date="2026-01-01", total=1.0),
        payload(date="2026-01-02", total=1.1),
        payload(date="2026-01-03", total=1.4),
    )
    (drift,) = detect_drift(slow, window=5, time_tolerance=0.25)
    assert drift["kind"] == "time"
    # +10% total growth is inside the default tolerance
    mild = history_of(
        payload(date="2026-01-01", total=1.0),
        payload(date="2026-01-02", total=1.05),
        payload(date="2026-01-03", total=1.1),
    )
    assert detect_drift(mild, window=5, time_tolerance=0.25) == []


def test_drift_looks_only_at_the_trailing_window():
    history = history_of(
        payload(date="2026-01-01", popped=10),
        payload(date="2026-01-02", popped=50),   # old spike, outside window
        payload(date="2026-01-03", popped=45),
        payload(date="2026-01-04", popped=45),
    )
    assert detect_drift(history, window=2) == []
    assert detect_drift(history[:3], window=2) == []


def test_render_trend_table_and_verdicts():
    history = history_of(
        payload(date="2026-01-01", popped=40),
        payload(date="2026-01-02", popped=45),
    )
    text = render_trend(history, detect_drift(history, window=5))
    assert "date" in text.splitlines()[0]
    assert "2026-01-01" in text and "2026-01-02" in text
    assert "DRIFT pointsto.worklist.popped: 40 -> 45" in text
    clean = render_trend(history, [])
    assert "no drift across the last 2 run(s)" in clean
    assert render_trend([], []) == "bench trend: no BENCH_*.json runs found"


def test_trend_rows_tolerate_missing_counters():
    body = payload(date="2026-01-01")
    del body["totals"]["counters"]["datalog.total_facts"]
    (row,) = trend_rows(history_of(body))
    assert row["counters"]["datalog.total_facts"] is None
    assert "-" in render_trend(history_of(body), [])


# -- CLI surface --------------------------------------------------------------


def test_cli_bench_history_and_trend_roundtrip(tmp_path, capsys):
    hist = tmp_path / "hist"
    out = tmp_path / "bench.json"
    assert main(["bench", "--apps", "todolist", "--jobs", "1",
                 "--out", str(out), "--history", str(hist)]) == 0
    err = capsys.readouterr().err
    assert "[bench] appended" in err
    written = json.loads(out.read_text())
    assert written["corpus"]["kind"] == "registry"
    assert written["corpus"]["apps"] == 1

    # one run is trivially drift-free
    assert main(["bench", "trend", str(hist)]) == 0
    trend_out = capsys.readouterr().out
    assert "no drift" in trend_out


def test_cli_bench_trend_exit_codes(tmp_path, capsys):
    directory = str(tmp_path / "hist")
    append_history(payload(date="2026-01-01", popped=40), directory)
    append_history(payload(date="2026-01-02", popped=45), directory)
    assert main(["bench", "trend", directory]) == 4
    assert "DRIFT" in capsys.readouterr().out

    # incomparable histories are a usage error, not a drift verdict
    append_history(payload(date="2026-01-03", apps=("alpha", "beta")),
                   directory)
    assert main(["bench", "trend", directory]) == 2
    assert "different corpora" in capsys.readouterr().err


def test_cli_bench_trend_rejects_bad_flags(tmp_path, capsys):
    assert main(["bench", "trend", str(tmp_path), "--window", "1"]) == 2
    assert "--window" in capsys.readouterr().err
    assert main(["bench", "trend", str(tmp_path),
                 "--time-tolerance", "-0.5"]) == 2
    assert "--time-tolerance" in capsys.readouterr().err


def test_cli_bench_trend_missing_directory_is_one_clean_line(tmp_path,
                                                             capsys):
    missing = str(tmp_path / "nope")
    assert main(["bench", "trend", missing]) == 2
    err = capsys.readouterr().err
    assert err == (
        f"nadroid: error: bench trend: no such history directory "
        f"{missing} (create one with `bench --history {missing}`)\n"
    )


def test_cli_bench_trend_empty_directory_exits_2(tmp_path, capsys):
    empty = tmp_path / "hist"
    empty.mkdir()
    assert main(["bench", "trend", str(empty)]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1  # one line, no traceback
    assert "no BENCH_*.json runs" in err
