"""Validator unit tests: hint matching, targeted scheduling, results."""

import pytest

from repro.core import analyze_app
from repro.runtime import Simulator, validate_warning, ValidationResult
from repro.runtime.validator import TargetedScheduler


def test_hint_matching_exact_component_events():
    match = TargetedScheduler._matches_hint
    assert match("A#onPause", "A.onPause")
    assert match("A@17#onClick", "A.onClick")
    assert not match("A#onPause", "A.onResume")
    assert not match("AB#onPause", "A.onPause")
    assert not match("A#onPause", "")
    assert not match("A#onPause", "garbage-without-dot")


def test_validation_result_truthiness():
    assert ValidationResult(confirmed=True, schedules_tried=1)
    assert not ValidationResult(confirmed=False, schedules_tried=9)


# the Figure 4(d) back-button bug: onPause frees, onResume does NOT
# restore, the next click crashes
SAME_LOOPER_BUG = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onCreate(Bundle b) { f = new F(); }
  void onClick(View v) { f.use(); }
  void onPause() { f = null; }
}
"""


def make_factory(source):
    result = analyze_app(source)
    program = result.program

    def make_sim():
        return Simulator(program.module, program.manifest)

    return result, make_sim


def test_validator_confirms_same_looper_order_bug():
    result, make_sim = make_factory(SAME_LOOPER_BUG)
    target = [w for w in result.remaining()
              if w.fieldref.field_name == "f"]
    assert target
    verdict = validate_warning(make_sim, target[0], random_attempts=30,
                               systematic_branches=10, max_decisions=600)
    assert verdict.confirmed
    assert verdict.trace, "a confirming run must carry its event trace"
    assert "NullPointerException" in (verdict.exception or "")


def test_validator_rejects_flag_guarded_free():
    source = """
    class F { void use() { } }
    class A extends Activity {
      F f;
      boolean never;
      void onCreate(Bundle b) { f = new F(); }
      void onClick(View v) { f.use(); }
      void onStop() {
        if (never) { f = null; }
      }
    }
    """
    result, make_sim = make_factory(source)
    target = [w for w in result.remaining()
              if w.fieldref.field_name == "f"]
    assert target, "statically the pair survives (path-insensitivity)"
    verdict = validate_warning(make_sim, target[0], random_attempts=20,
                               systematic_branches=10, max_decisions=600)
    assert not verdict.confirmed


def test_validator_matches_npe_to_the_right_field():
    # two fields crash; validating the `safe` warning must not be satisfied
    # by the `other` field's NPE
    source = """
    class F { void use() { } }
    class A extends Activity {
      F other;
      F safe;
      boolean never;
      void onCreate(Bundle b) { safe = new F(); }
      void onResume() { other.use(); }
      void onClick(View v) { safe.use(); }
      void onStop() {
        if (never) { safe = null; }
      }
    }
    """
    result, make_sim = make_factory(source)
    safe_warnings = [w for w in result.remaining()
                     if w.fieldref.field_name == "safe"]
    assert safe_warnings
    verdict = validate_warning(make_sim, safe_warnings[0],
                               random_attempts=20, systematic_branches=8,
                               max_decisions=600)
    assert not verdict.confirmed, \
        "the ever-present `other` NPE must not confirm the `safe` warning"
