"""Simulator tests: interpretation, event delivery, and UAF triggering."""

import pytest

from repro.core import analyze_app
from repro.lowering import compile_app
from repro.runtime import (
    FifoScheduler,
    RandomScheduler,
    ScriptedScheduler,
    Simulator,
    validate_warning,
)
from repro.threadify import threadify


def build(source):
    module = compile_app(source, seal=False)
    program = threadify(module)
    return program


def simulate(source, scheduler=None, max_decisions=2000):
    program = build(source)
    sim = Simulator(program.module, program.manifest)
    sim.run(scheduler or FifoScheduler(), max_decisions=max_decisions)
    return sim


def test_lifecycle_callbacks_execute_in_automaton_order():
    sim = simulate(
        """
        class A extends Activity {
          static String log = "";
          void onCreate(Bundle b) { A.log = A.log + "C"; }
          void onStart() { A.log = A.log + "S"; }
          void onResume() { A.log = A.log + "R"; }
        }
        """
    )
    from repro.ir import FieldRef

    log = sim.heap.get_static(FieldRef("A", "log"))
    assert log.startswith("CSR")


def test_field_initializer_runs_at_construction():
    sim = simulate(
        """
        class A extends Activity {
          int counter = 41;
          void onCreate(Bundle b) { counter = counter + 1; }
        }
        """
    )
    from repro.ir import FieldRef

    obj = sim.components["A"]
    assert sim.heap.get_field(obj, FieldRef("A", "counter")) == 42


def test_posted_runnable_runs_on_main_looper():
    sim = simulate(
        """
        class A extends Activity {
          Handler handler;
          static boolean ran = false;
          void onCreate(Bundle b) {
            handler = new Handler();
            handler.post(new Runnable() {
              public void run() { A.ran = true; }
            });
          }
        }
        """
    )
    from repro.ir import FieldRef

    assert sim.heap.get_static(FieldRef("A", "ran")) is True


def test_thread_spawn_executes_runnable():
    sim = simulate(
        """
        class A extends Activity {
          static boolean ran = false;
          void onCreate(Bundle b) { new Thread(new W()).start(); }
        }
        class W implements Runnable {
          public void run() { A.ran = true; }
        }
        """
    )
    from repro.ir import FieldRef

    assert sim.heap.get_static(FieldRef("A", "ran")) is True


def test_asynctask_callbacks_obey_mhb_contract():
    sim = simulate(
        """
        class A extends Activity {
          static String log = "";
          void onCreate(Bundle b) { new T().execute(); }
        }
        class T extends AsyncTask {
          void onPreExecute() { A.log = A.log + "P"; }
          void doInBackground() { A.log = A.log + "B"; publishProgress(); }
          void onProgressUpdate() { A.log = A.log + "U"; }
          void onPostExecute() { A.log = A.log + "E"; }
        }
        """,
        scheduler=RandomScheduler(7),
    )
    from repro.ir import FieldRef

    log = sim.heap.get_static(FieldRef("A", "log"))
    assert log is not None and log != ""
    assert log.index("P") < log.index("B")
    if "U" in log:
        assert log.index("P") < log.index("U")
    if "E" in log:
        assert log.index("B") < log.index("E")


@pytest.mark.parametrize("seed", range(6))
def test_asynctask_contract_holds_under_many_schedules(seed):
    sim = simulate(
        """
        class A extends Activity {
          static String log = "";
          void onCreate(Bundle b) { new T().execute(); }
        }
        class T extends AsyncTask {
          void onPreExecute() { A.log = A.log + "P"; }
          void doInBackground() { A.log = A.log + "B"; }
          void onPostExecute() { A.log = A.log + "E"; }
        }
        """,
        scheduler=RandomScheduler(seed),
    )
    from repro.ir import FieldRef

    log = sim.heap.get_static(FieldRef("A", "log")) or ""
    if "B" in log:
        assert "P" in log and log.index("P") < log.index("B")
    if "E" in log:
        assert log.index("B") < log.index("E")


def test_null_dereference_raises_npe():
    sim = simulate(
        """
        class F { void use() { } }
        class A extends Activity {
          F f;
          void onCreate(Bundle b) { f.use(); }
        }
        """
    )
    assert sim.npe_events
    assert "call use on null" in sim.npe_events[0].detail


def test_finish_suppresses_ui_events():
    sim = simulate(
        """
        class A extends Activity {
          static int clicks = 0;
          void onCreate(Bundle b) { finish(); }
          void onClick(View v) { A.clicks = A.clicks + 1; }
        }
        """
    )
    from repro.ir import FieldRef

    # finish() in onCreate: the activity never becomes active, the UI
    # callback never fires.
    assert (sim.heap.get_static(FieldRef("A", "clicks")) or 0) == 0


def test_service_connection_contract():
    sim = simulate(
        """
        class A extends Activity {
          static String log = "";
          void onStart() {
            bindService(new Intent("s"), new ServiceConnection() {
              public void onServiceConnected(ComponentName n, IBinder s) {
                A.log = A.log + "C";
              }
              public void onServiceDisconnected(ComponentName n) {
                A.log = A.log + "D";
              }
            }, 0);
          }
        }
        """,
        scheduler=RandomScheduler(3),
    )
    from repro.ir import FieldRef

    log = sim.heap.get_static(FieldRef("A", "log")) or ""
    assert log in ("", "C", "CD"), f"disconnect before connect in {log!r}"


def test_scripted_scheduler_triggers_fig1a_uaf():
    source = """
    class TerminalManager { void createPortForward() { } }
    class ConsoleActivity extends Activity {
      TerminalManager bound;
      void onStart() {
        bindService(new Intent("terminal"), new ServiceConnection() {
          public void onServiceConnected(ComponentName name, IBinder service) {
            bound = new TerminalManager();
          }
          public void onServiceDisconnected(ComponentName name) {
            bound = null;
          }
        }, 0);
      }
      void onCreateContextMenu(ContextMenu menu, View v, ContextMenuInfo mi) {
        bound.createPortForward();
      }
    }
    """
    program = build(source)
    sim = Simulator(program.module, program.manifest)
    sim.run(ScriptedScheduler([
        "ConsoleActivity#onCreate",
        "ConsoleActivity#onStart",
        "onServiceConnected",
        "onServiceDisconnected",
        "ConsoleActivity#onCreateContextMenu",
    ]))
    assert sim.npe_events, "free-then-use schedule must raise the NPE"


def test_validator_confirms_fig1a_warning():
    source = """
    class TerminalManager { void createPortForward() { } }
    class ConsoleActivity extends Activity {
      TerminalManager bound;
      void onStart() {
        bindService(new Intent("terminal"), new ServiceConnection() {
          public void onServiceConnected(ComponentName name, IBinder service) {
            bound = new TerminalManager();
          }
          public void onServiceDisconnected(ComponentName name) {
            bound = null;
          }
        }, 0);
      }
      void onCreateContextMenu(ContextMenu menu, View v, ContextMenuInfo mi) {
        bound.createPortForward();
      }
    }
    """
    result = analyze_app(source)
    survivors = [w for w in result.remaining()
                 if w.fieldref.field_name == "bound"]
    assert survivors
    program = result.program

    def make_sim():
        return Simulator(program.module, program.manifest)

    validation = validate_warning(make_sim, survivors[0])
    assert validation.confirmed


def test_validator_rejects_guarded_same_looper_pattern():
    # Figure 4(b): the guard makes the pair benign; no schedule crashes.
    source = """
    class F { void use() { } }
    class A extends Activity {
      F f;
      View b1;
      View b2;
      void onCreate(Bundle b) {
        b1.setOnClickListener(new OnClickListener() {
          public void onClick(View v) {
            if (f != null) { f.use(); }
          }
        });
        b2.setOnClickListener(new OnClickListener() {
          public void onClick(View v) { f = null; }
        });
      }
    }
    """
    result = analyze_app(source)
    program = result.program

    def make_sim():
        return Simulator(program.module, program.manifest)

    assert result.warnings, "potential warning exists"
    validation = validate_warning(
        make_sim, result.warnings[0], random_attempts=25,
        systematic_branches=25,
    )
    assert not validation.confirmed
