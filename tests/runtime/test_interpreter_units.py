"""Interpreter/simulator unit tests: monitors, exceptions, intrinsics,
watchpoints, scheduling details."""

import pytest

from repro.ir import FieldRef
from repro.lowering import compile_app
from repro.runtime import (
    FifoScheduler,
    RandomScheduler,
    ScriptedScheduler,
    Simulator,
)
from repro.threadify import threadify


def build_sim(source):
    program = threadify(compile_app(source, seal=False))
    return Simulator(program.module, program.manifest), program


def run_fifo(source, max_decisions=3000):
    sim, _ = build_sim(source)
    sim.run(FifoScheduler(), max_decisions=max_decisions)
    return sim


def static_value(sim, cls, field):
    return sim.heap.get_static(FieldRef(cls, field))


def test_arithmetic_division_by_zero_raises():
    sim = run_fifo(
        """
        class A extends Activity {
          void onCreate(Bundle b) {
            int x = 10;
            int y = 0;
            int z = x / y;
          }
        }
        """
    )
    assert any(e.name == "ArithmeticException" for e in sim.exceptions)


def test_explicit_throw_recorded_with_location():
    sim = run_fifo(
        """
        class A extends Activity {
          void onCreate(Bundle b) {
            throw new IllegalStateException("boom");
          }
        }
        """
    )
    exc = sim.exceptions[0]
    assert exc.name == "IllegalStateException"
    assert exc.method_qname == "A.onCreate"


def test_while_loop_computes_sum():
    sim = run_fifo(
        """
        class A extends Activity {
          static int total;
          void onCreate(Bundle b) {
            int i = 1;
            while (i <= 10) {
              A.total = A.total + i;
              i = i + 1;
            }
          }
        }
        """
    )
    assert static_value(sim, "A", "total") == 55


def test_string_concatenation_with_null():
    sim = run_fifo(
        """
        class A extends Activity {
          static String label;
          void onCreate(Bundle b) {
            String missing = null;
            label = "value=" + missing;
          }
        }
        """
    )
    assert static_value(sim, "A", "label") == "value=null"


def test_monitor_blocks_second_thread():
    # Thread W blocks on the activity's monitor while the main callback
    # holds it; the simulator must not deadlock or interleave the region.
    sim = run_fifo(
        """
        class A extends Activity {
          static String log = "";
          void onCreate(Bundle b) {
            new Thread(new W(this)).start();
            synchronized (this) {
              A.log = A.log + "[main";
              A.log = A.log + " main]";
            }
          }
        }
        class W implements Runnable {
          A owner;
          W(A a) { owner = a; }
          public void run() {
            synchronized (owner) {
              A.log = A.log + "[w w]";
            }
          }
        }
        """
    )
    log = static_value(sim, "A", "log")
    assert "[main main]" in log and "[w w]" in log


@pytest.mark.parametrize("seed", range(5))
def test_monitor_mutual_exclusion_under_random_schedules(seed):
    source = """
    class A extends Activity {
      static String log = "";
      void onCreate(Bundle b) {
        new Thread(new W(this)).start();
        synchronized (this) {
          A.log = A.log + "(";
          A.log = A.log + ")";
        }
      }
    }
    class W implements Runnable {
      A owner;
      W(A a) { owner = a; }
      public void run() {
        synchronized (owner) {
          A.log = A.log + "<";
          A.log = A.log + ">";
        }
      }
    }
    """
    sim, _ = build_sim(source)
    sim.run(RandomScheduler(seed), max_decisions=3000)
    log = static_value(sim, "A", "log") or ""
    assert "(<" not in log and "<(" not in log, f"interleaved regions: {log}"


def test_reentrant_monitor():
    sim = run_fifo(
        """
        class A extends Activity {
          static boolean done;
          void onCreate(Bundle b) {
            synchronized (this) {
              synchronized (this) {
                A.done = true;
              }
            }
          }
        }
        """
    )
    assert static_value(sim, "A", "done") is True


def test_callback_default_arguments():
    sim = run_fifo(
        """
        class A extends Activity {
          static boolean sawNullIntent;
          void onActivityResult(int rq, int rs, Intent data) {
            if (data == null) {
              A.sawNullIntent = true;
            }
          }
        }
        """
    )
    assert static_value(sim, "A", "sawNullIntent") is True


def test_watchpoints_record_hits():
    sim, program = build_sim(
        """
        class A extends Activity {
          static int x;
          void onCreate(Bundle b) { A.x = 7; }
        }
        """
    )
    from repro.ir import PutStatic

    method = program.module.lookup_method("A", "onCreate")
    put = [i for i in method.instructions() if isinstance(i, PutStatic)][0]
    sim.watchpoints = {put.uid}
    sim.run(FifoScheduler())
    assert put.uid in sim.hit_watchpoints


def test_scripted_scheduler_follows_event_names():
    sim, _ = build_sim(
        """
        class A extends Activity {
          static String log = "";
          void onCreate(Bundle b) { A.log = A.log + "C"; }
          void onStart() { A.log = A.log + "S"; }
          void onResume() { A.log = A.log + "R"; }
          void onPause() { A.log = A.log + "P"; }
        }
        """
    )
    sim.run(ScriptedScheduler([
        "A#onCreate", "A#onStart", "A#onResume", "A#onPause",
        "A#onResume",
    ]), max_decisions=200)
    assert (static_value(sim, "A", "log") or "").startswith("CSRPR")


def test_exceptions_do_not_stop_the_looper():
    sim = run_fifo(
        """
        class F { void use() { } }
        class A extends Activity {
          F f;
          static boolean laterRan;
          void onCreate(Bundle b) { f.use(); }
          void onStart() { A.laterRan = true; }
        }
        """
    )
    assert sim.npe_events
    assert static_value(sim, "A", "laterRan") is True


def test_getter_intrinsic_objects_are_fresh():
    sim = run_fifo(
        """
        class A extends Activity {
          static boolean distinct;
          void onCreate(Bundle b) {
            View a = findViewById(1);
            View b2 = findViewById(2);
            distinct = a != b2;
          }
        }
        """
    )
    assert static_value(sim, "A", "distinct") is True


def test_boot_runs_clinit_before_components():
    sim = run_fifo(
        """
        class Config { static String name = "cfg"; }
        class A extends Activity {
          static String copied;
          void onCreate(Bundle b) { copied = Config.name; }
        }
        """
    )
    assert static_value(sim, "A", "copied") == "cfg"
