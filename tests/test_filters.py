"""Unit tests for the section-6 filters on hand-built warning pairs.

Each sound filter (Must-HB, If-Guard, Intra-Allocation) gets a *drop*
case (the pattern section 6.1 says it prunes) and a *keep* case (the
near-identical pattern it must not touch).  The keep cases run with
``FilterOptions(sound_only=True)`` so no unsound filter can mask a sound
filter firing where it should not.
"""

from repro.core import analyze_app, AnalysisConfig
from repro.filters.base import FilterOptions


def sound_only_config():
    return AnalysisConfig(filters=FilterOptions(sound_only=True))


def warnings_on(result, field_name, collection=None):
    pool = result.warnings if collection is None else collection
    return [w for w in pool if w.fieldref.field_name == field_name]


def pruners_of(warning):
    names = set()
    for occ in warning.occurrences:
        if occ.pruned_by:
            names.add(occ.pruned_by)
        if occ.downgraded_by:
            names.add(occ.downgraded_by)
    return names


# -- Must-Happens-Before (6.1.1) ---------------------------------------------

MHB_DROP = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onResume() {
    f.use();
  }
  void onDestroy() {
    f = null;
  }
}
"""

MHB_KEEP = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onResume() {
    f.use();
  }
  void onPause() {
    f = null;
  }
}
"""


def test_mhb_drops_use_before_ondestroy_free():
    result = analyze_app(MHB_DROP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential, "the onResume/onDestroy pair must be detected"
    assert not warnings_on(result, "f", result.after_sound())
    assert all("MHB" in pruners_of(w) for w in potential)


def test_mhb_keeps_resume_pause_pair():
    # the lifecycle back edge makes onResume/onPause circular: no MHB
    result = analyze_app(MHB_KEEP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential
    assert warnings_on(result, "f", result.after_sound()), \
        "onResume vs onPause has no sound happens-before ordering"
    assert all("MHB" not in pruners_of(w) for w in potential)


# -- If-Guard (6.1.2) --------------------------------------------------------

IG_DROP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (f != null) {
          f.use();
        }
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""

IG_KEEP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  void onCreate(Bundle b) {
    W w = new W();
    w.app = this;
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (f != null) {
          f.use();
        }
      }
    });
    new Thread(w).start();
  }
}
class W implements Runnable {
  A app;
  public void run() {
    app.f = null;
  }
}
"""


def test_ig_drops_guarded_use_on_same_looper():
    result = analyze_app(IG_DROP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.after_sound())
    assert any("IG" in pruners_of(w) for w in potential)


def test_ig_keeps_guarded_use_against_background_thread_free():
    # the guard's check-to-use window is not atomic w.r.t. a native
    # thread's free (no shared looper, no common lock): IG must not fire
    result = analyze_app(IG_KEEP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential
    assert warnings_on(result, "f", result.after_sound()), \
        "a guard alone cannot protect against a concurrent thread free"


# -- Intra-Allocation (6.1.3) ------------------------------------------------

IA_DROP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = new F();
        f.use();
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""

IA_KEEP = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  F make() {
    return new F();
  }
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = make();
        f.use();
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_ia_drops_use_after_fresh_allocation():
    result = analyze_app(IA_DROP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.after_sound())
    assert any("IA" in pruners_of(w) for w in potential)


def test_ia_keeps_getter_produced_value():
    # a value arriving through a call is only prunable by the *unsound*
    # MA filter (6.2.2); sound IA must leave it alone
    result = analyze_app(IA_KEEP, config=sound_only_config())
    potential = warnings_on(result, "f")
    assert potential
    assert warnings_on(result, "f", result.after_sound())
    assert all("IA" not in pruners_of(w) for w in potential)


# -- sound-only path ---------------------------------------------------------

RHB_PATTERN = """
class F { void use() { } }
class A extends Activity {
  F f;
  View button;
  void onCreate(Bundle b) {
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f.use();
      }
    });
  }
  void onResume() {
    f = new F();
  }
  void onPause() {
    f = null;
  }
}
"""


def test_unsound_filters_off_in_sound_only_path():
    """The RHB-prunable pattern survives when only sound filters run."""
    default = analyze_app(RHB_PATTERN)
    assert not warnings_on(default, "f", default.remaining()), \
        "under the default pipeline RHB prunes the pattern"

    sound_only = analyze_app(RHB_PATTERN, config=sound_only_config())
    surviving = warnings_on(sound_only, "f", sound_only.remaining())
    assert surviving, "with unsound filters off the warning must survive"
    for warning in warnings_on(sound_only, "f"):
        assert all(o.downgraded_by is None for o in warning.occurrences)
    report = sound_only.report
    assert report.after_unsound == report.after_sound
    assert report.unsound_individual == {}
