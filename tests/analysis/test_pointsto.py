"""Unit tests for the k-object-sensitive points-to analysis."""

import pytest

from repro.analysis import run_pointsto
from repro.lowering import compile_app
from repro.threadify import threadify


def pts_for(source, k=2):
    program = threadify(compile_app(source, seal=False))
    return run_pointsto(program.module, k=k), program


APP = """
class Box { Item item; }
class Item { void poke() { } }
class A extends Activity {
  Box box;
  void onCreate(Bundle b) {
    box = new Box();
    box.item = new Item();
  }
  void onResume() {
    Item it = box.item;
    it.poke();
  }
}
"""


def test_allocation_flows_through_field_load():
    result, _ = pts_for(APP)
    objs = result.pts("A.onResume", "it")
    assert len(objs) == 1
    assert result.class_of(next(iter(objs))) == "Item"


def test_receiver_contexts_reach_callbacks():
    result, _ = pts_for(APP)
    this_objs = result.pts("A.onCreate", "this")
    assert result.classes_of(this_objs) == {"A"}
    assert result.contexts.get("A.onCreate")


def test_call_graph_edges_through_virtual_dispatch():
    result, _ = pts_for(APP)
    edges = result.ci_call_edges()
    callees = {c for _uid, c in edges.get("A.onResume", set())}
    assert "Item.poke" in callees


def test_return_value_flow():
    source = """
    class Item { void poke() { } }
    class Maker {
      Item make() { return new Item(); }
    }
    class A extends Activity {
      Maker maker;
      void onCreate(Bundle b) {
        maker = new Maker();
        Item it = maker.make();
        it.poke();
      }
    }
    """
    result, _ = pts_for(source)
    objs = result.pts("A.onCreate", "it")
    assert result.classes_of(objs) == {"Item"}


def test_static_field_flow():
    source = """
    class Item { void poke() { } }
    class Registry2 { static Item current; }
    class A extends Activity {
      void onCreate(Bundle b) { Registry2.current = new Item(); }
      void onResume() {
        Item it = Registry2.current;
        it.poke();
      }
    }
    """
    result, _ = pts_for(source)
    assert result.classes_of(result.pts("A.onResume", "it")) == {"Item"}


def test_k0_merges_constructor_contexts_k2_separates():
    source = """
    class Inner { }
    class Outer {
      Inner inner;
      Outer() { inner = new Inner(); }
    }
    class A extends Activity {
      Outer first;
      Outer second;
      void onCreate(Bundle b) {
        first = new Outer();
        second = new Outer();
      }
      void onResume() {
        Inner x = first.inner;
        Inner y = second.inner;
      }
    }
    """
    k0, _ = pts_for(source, k=1)
    x0 = k0.pts("A.onResume", "x")
    y0 = k0.pts("A.onResume", "y")
    assert x0 == y0 and len(x0) == 1, "k=1 cannot tell the inners apart"

    k2, _ = pts_for(source, k=2)
    x2 = k2.pts("A.onResume", "x")
    y2 = k2.pts("A.onResume", "y")
    assert x2 != y2
    assert not (x2 & y2)


def test_static_method_allocation_has_no_context():
    source = """
    class Inner { }
    class Outer {
      Inner inner;
      Outer() { inner = new Inner(); }
      static Outer make() { return new Outer(); }
    }
    class A extends Activity {
      Outer first;
      Outer second;
      void onCreate(Bundle b) {
        first = Outer.make();
        second = Outer.make();
      }
      void onResume() {
        Inner x = first.inner;
        Inner y = second.inner;
      }
    }
    """
    result, _ = pts_for(source, k=3)
    x = result.pts("A.onResume", "x")
    y = result.pts("A.onResume", "y")
    assert x == y, "section 8.5: static factories lose context at any k"


def test_interface_dispatch_through_registry():
    source = """
    class A extends Activity {
      Handler handler;
      static boolean hit;
      void onCreate(Bundle b) {
        handler = new Handler();
        handler.post(new Job2());
      }
    }
    class Job2 implements Runnable {
      public void run() { A.hit = true; }
    }
    """
    result, _ = pts_for(source)
    assert "Job2.run" in result.reachable_methods()


def test_unreachable_method_not_analyzed():
    source = """
    class A extends Activity {
      void onCreate(Bundle b) { }
      void helper() { }
    }
    class Orphan {
      void lonely() { }
    }
    """
    result, _ = pts_for(source)
    assert "Orphan.lonely" not in result.reachable_methods()


def test_average_pts_size_positive():
    result, _ = pts_for(APP)
    assert result.average_pts_size() >= 1.0
