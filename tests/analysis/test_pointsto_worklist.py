"""Worklist-solver tests for the points-to analysis.

The incremental solver must compute exactly the exhaustive solver's
least fixpoint while re-processing far fewer (method, context) pairs,
with a deterministic (hash-seed-independent) schedule, and with
heap-object/context tuples interned to single instances.
"""

import pytest

from repro import obs
from repro.analysis import run_pointsto
from repro.analysis.pointsto import PointsToAnalysis
from repro.lowering import compile_app
from repro.threadify import threadify


def build(source):
    return threadify(compile_app(source, seal=False))


#: a call chain deep enough that facts discovered late must ripple back
#: through return values and forward through parameters
CHAIN_APP = """
class Holder { Item item; }
class Item { void poke() { } }
class L3 {
  Item get(Holder h) { Item r = h.item; return r; }
}
class L2 {
  L3 next;
  Item get(Holder h) { Item r = next.get(h); return r; }
}
class L1 {
  L2 next;
  Item get(Holder h) { Item r = next.get(h); return r; }
}
class A extends Activity {
  Holder holder;
  L1 chain;
  void onCreate(Bundle b) {
    chain = new L1();
    chain.next = new L2();
    chain.next.next = new L3();
    holder = new Holder();
  }
  void onResume() {
    holder.item = new Item();
    Item it = chain.get(holder);
    it.poke();
  }
}
"""


def counters_for(source, k=2):
    program = build(source)
    rec = obs.Recorder()
    with obs.use(rec):
        result = run_pointsto(program.module, k=k)
    return result, rec.snapshot().counters


def test_chain_propagates_through_returns_and_params():
    result, counters = counters_for(CHAIN_APP)
    objs = result.pts("A.onResume", "it")
    assert result.classes_of(objs) == {"Item"}
    # every chain level saw the holder and returned the item
    for m in ("L1.get", "L2.get", "L3.get"):
        assert result.classes_of(result.pts(m, "r")) == {"Item"}
    assert counters["pointsto.worklist.popped"] > 0
    assert counters["pointsto.worklist.pushed"] == \
        counters["pointsto.worklist.popped"]


def test_worklist_counters_present_and_consistent():
    _, counters = counters_for(CHAIN_APP)
    for name in ("pointsto.worklist.pushed", "pointsto.worklist.popped",
                 "pointsto.worklist.skipped", "pointsto.passes"):
        assert name in counters, name
    # the solver processes each discovered pair at least once
    assert counters["pointsto.worklist.popped"] >= \
        counters["pointsto.contexts"]


def test_worklist_beats_exhaustive_reprocessing():
    """popped must undercut the old engine's passes * pairs schedule."""
    _, counters = counters_for(CHAIN_APP)
    exhaustive = counters["pointsto.passes"] * counters["pointsto.contexts"]
    assert counters["pointsto.worklist.popped"] * 2 <= exhaustive


def test_two_runs_identical_result_and_counters():
    result_a, counters_a = counters_for(CHAIN_APP)
    result_b, counters_b = counters_for(CHAIN_APP)
    assert counters_a == counters_b
    assert result_a.var_pts == result_b.var_pts
    assert result_a.field_pts == result_b.field_pts
    assert result_a.static_pts == result_b.static_pts
    assert result_a.cs_call_edges == result_b.cs_call_edges
    assert result_a.contexts == result_b.contexts


def test_heap_objects_are_interned():
    program = build(CHAIN_APP)
    analysis = PointsToAnalysis(program.module, k=2)
    analysis.run()
    seen = {}
    for objs in analysis.var_pts.values():
        for obj in objs:
            canonical = seen.setdefault(obj, obj)
            assert canonical is obj, "equal heap objects must be one instance"


def test_matches_legacy_exhaustive_solver():
    """Differential check against the pre-worklist global fixpoint."""
    program = build(CHAIN_APP)
    fast = run_pointsto(program.module, k=2)
    slow = _exhaustive_pointsto(program.module, k=2)
    assert fast.var_pts == slow.var_pts
    assert fast.field_pts == slow.field_pts
    assert fast.static_pts == slow.static_pts
    assert fast.cs_call_edges == slow.cs_call_edges
    assert fast.contexts == slow.contexts
    assert fast.site_class == slow.site_class


@pytest.mark.parametrize("k", [0, 1, 3])
def test_matches_legacy_exhaustive_solver_across_k(k):
    program = build(CHAIN_APP)
    fast = run_pointsto(program.module, k=k)
    slow = _exhaustive_pointsto(program.module, k=k)
    assert fast.var_pts == slow.var_pts
    assert fast.cs_call_edges == slow.cs_call_edges


def _exhaustive_pointsto(module, k):
    """The old solver: re-process every pair until nothing changes.

    Implemented on top of the production transfer functions by driving
    them to a global fixpoint manually -- any divergence between the
    two schedules is a dependency-tracking bug in the worklist.
    """
    analysis = PointsToAnalysis(module, k=k)
    entry = analysis.entry
    analysis.contexts[entry].add(())
    changed = True
    guard = 0
    while changed:
        guard += 1
        assert guard < 1000
        before = _state_size(analysis)
        for qname in list(analysis.contexts):
            method = analysis._method_by_qname(qname)
            if method is None:
                continue
            for ctx in list(analysis.contexts[qname]):
                analysis._process(method, qname, ctx)
        changed = _state_size(analysis) != before
    from repro.analysis.pointsto import PointsToResult

    return PointsToResult(
        module=module,
        k=analysis.k,
        var_pts=dict(analysis.var_pts),
        field_pts=dict(analysis.field_pts),
        static_pts=dict(analysis.static_pts),
        site_class=dict(analysis.site_class),
        cs_call_edges=dict(analysis.cs_call_edges),
        contexts=dict(analysis.contexts),
    )


def _state_size(analysis):
    return (
        sum(len(s) for s in analysis.var_pts.values()),
        sum(len(s) for s in analysis.field_pts.values()),
        sum(len(s) for s in analysis.static_pts.values()),
        sum(len(s) for s in analysis.cs_call_edges.values()),
        sum(len(s) for s in analysis.contexts.values()),
    )
