"""Lockset, call-graph and escape/MHP/dataflow unit tests."""

import pytest

from repro.analysis import (
    build_cha_callgraph,
    compute_escaping,
    dispatch_targets,
    instantiated_classes,
    LocksetAnalysis,
    may_happen_in_parallel,
    run_forward,
    run_pointsto,
)
from repro.ir import Instruction, Invoke, MonitorEnter
from repro.lowering import compile_app
from repro.threadify import threadify


def build(source):
    program = threadify(compile_app(source, seal=False))
    pointsto = run_pointsto(program.module)
    return program, pointsto


# -- lockset ---------------------------------------------------------------

LOCK_APP = """
class Shared { static Object lock = new Object(); }
class A extends Activity {
  int counter;
  void onCreate(Bundle b) {
    Object l = Shared.lock;
    synchronized (l) {
      counter = 1;
    }
    counter = 2;
  }
  void onResume() {
    bump();
  }
  synchronized void bump() {
    counter = counter + 1;
  }
}
"""


def put_uids(program, method_qname, value):
    from repro.ir import Const, PutField

    method_cls, name = method_qname.rsplit(".", 1)
    method = program.module.lookup_method(method_cls, name)
    return [
        i.uid for i in method.instructions()
        if isinstance(i, PutField) and isinstance(i.value, Const)
        and i.value.value == value
    ]


def test_lock_held_inside_region_only():
    program, pointsto = build(LOCK_APP)
    lockset = LocksetAnalysis(program.module, pointsto)
    inside = put_uids(program, "A.onCreate", 1)[0]
    outside = put_uids(program, "A.onCreate", 2)[0]
    assert lockset.locks_at(inside)
    assert not lockset.locks_at(outside)


def test_synchronized_method_holds_this():
    program, pointsto = build(LOCK_APP)
    lockset = LocksetAnalysis(program.module, pointsto)
    method = program.module.lookup_method("A", "bump")
    body_uids = [
        i.uid for i in method.instructions()
        if not isinstance(i, MonitorEnter) and i.target_local()
    ]
    assert any(lockset.locks_at(uid) for uid in body_uids)


def test_common_lock_requires_singleton_same_object():
    source = """
    class Shared { static Object lock = new Object(); }
    class A extends Activity {
      int x;
      void onResume() {
        Object l = Shared.lock;
        synchronized (l) { x = 1; }
      }
      void onPause() {
        Object l = Shared.lock;
        synchronized (l) { x = 2; }
      }
      void onStop() {
        Object mine = new Object();
        synchronized (mine) { x = 3; }
      }
    }
    """
    program, pointsto = build(source)
    lockset = LocksetAnalysis(program.module, pointsto)
    a = put_uids(program, "A.onResume", 1)[0]
    b = put_uids(program, "A.onPause", 2)[0]
    c = put_uids(program, "A.onStop", 3)[0]
    assert lockset.common_lock(a, b)
    assert not lockset.common_lock(a, c)


# -- call graph ----------------------------------------------------------------

CHA_APP = """
class Base2 { void work() { } }
class Left extends Base2 { void work() { } }
class Right extends Base2 { void work() { } }
class A extends Activity {
  Base2 chosen;
  void onCreate(Bundle b) {
    chosen = new Left();
    chosen.work();
  }
}
"""


def test_rta_restricts_cha_dispatch():
    program, _ = build(CHA_APP)
    module = program.module
    rta = instantiated_classes(module)
    assert "Left" in rta and "Right" not in rta
    method = module.lookup_method("A", "onCreate")
    call = [i for i in method.instructions() if isinstance(i, Invoke)
            and i.methodref.method_name == "work"][0]
    targets = {m.qualified_name for m in dispatch_targets(module, call, rta)}
    assert "Left.work" in targets
    assert "Right.work" not in targets
    # pure CHA (no RTA set) includes every override
    cha = {m.qualified_name for m in dispatch_targets(module, call, None)}
    assert {"Left.work", "Right.work"} <= cha


def test_reachable_from_respects_skip():
    program, _ = build(CHA_APP)
    graph = build_cha_callgraph(program.module)
    reach = graph.reachable_from({"A.onCreate"})
    assert "Left.work" in reach
    stopped = graph.reachable_from({"A.onCreate"}, skip={"A.onCreate"})
    assert stopped == {"A.onCreate"}


# -- escape -----------------------------------------------------------------------

def test_static_reachable_objects_escape():
    source = """
    class Item { }
    class Registry3 { static Item kept; }
    class A extends Activity {
      void onCreate(Bundle b) {
        Registry3.kept = new Item();
        Item local = new Item();
      }
    }
    """
    program, pointsto = build(source)
    escaping = compute_escaping(pointsto, program)
    classes = {pointsto.class_of(o) for o in escaping}
    assert "Item" in classes
    kept = {o for o in escaping if pointsto.class_of(o) == "Item"}
    assert len(kept) == 1, "the purely-local Item must not escape"


# -- MHP -----------------------------------------------------------------------------

def test_mhp_orders_poster_and_postee():
    source = """
    class A extends Activity {
      Handler h;
      void onCreate(Bundle b) {
        h = new Handler();
        h.post(new Runnable() { public void run() { } });
      }
      void onPause() { }
    }
    """
    program, _ = build(source)
    forest = program.forest
    on_create = next(n for n in forest if n.method_name == "onCreate")
    postee = next(n for n in forest if n.method_name == "run")
    on_pause = next(n for n in forest if n.method_name == "onPause")
    assert not may_happen_in_parallel(forest, on_create, postee)
    assert may_happen_in_parallel(forest, on_pause, postee)
    assert not may_happen_in_parallel(forest, on_create, on_create)


# -- generic dataflow ----------------------------------------------------------------

def test_forward_dataflow_must_join():
    source = """
    class A extends Activity {
      void onCreate(Bundle b) {
        int x = 0;
        if (x == 0) { x = 1; } else { x = 2; }
        int y = x;
      }
    }
    """
    module = compile_app(source)
    method = module.lookup_method("A", "onCreate")

    def transfer(instr: Instruction, state: frozenset) -> frozenset:
        target = instr.target_local()
        if target == "x":
            return state | {instr.uid}
        return state

    states = run_forward(method, frozenset(), transfer, lambda a, b: a & b)
    y_def = [i for i in method.instructions() if i.target_local() == "y"][0]
    # must-join: only the initial x-def is on every path... but both
    # branches define x, so the intersection at the join keeps exactly the
    # common prefix definitions
    assert states[y_def.uid]  # the initial definition survives the join
