"""Determinism and cache tests for the parallel corpus runner.

The contract under test (ISSUE 1 acceptance criteria): a ``--jobs 4`` run
produces byte-identical output to a serial run, a warm-cache re-run
analyzes zero apps, and any :class:`AnalysisConfig` change invalidates
the cache.
"""

import json

import pytest

from repro.core import AnalysisConfig
from repro.corpus import app
from repro.harness import (
    render_figure5,
    render_table1,
    render_table2,
    run_figure5,
    run_table1,
    run_table2,
)
from repro.runner import (
    cache_key,
    CACHE_SCHEMA,
    CorpusRunner,
    ResultCache,
    row_to_dict,
)

SUBSET = ["todolist", "clipstack", "photoaffix", "dashclock",
          "connectbot", "swiftnotes"]


@pytest.fixture()
def specs():
    return [app(name) for name in SUBSET]


def canonical_rows(rows):
    """Rows as canonical JSON with the (non-deterministic) wall-clock
    timings stripped; everything else must match byte for byte."""
    payloads = []
    for row in rows:
        payload = row_to_dict(row)
        payload["result"]["timings"] = {}
        payloads.append(payload)
    return json.dumps(payloads, sort_keys=True)


# -- determinism --------------------------------------------------------------


def test_parallel_rows_byte_identical_to_serial(specs):
    serial = run_table1(validate=False, apps=specs)
    parallel = run_table1(
        validate=False, apps=specs, runner=CorpusRunner(jobs=4)
    )
    assert render_table1(serial) == render_table1(parallel)
    assert canonical_rows(serial) == canonical_rows(parallel)


def test_parallel_figure5_matches_serial(specs):
    serial = run_figure5(apps=specs)
    parallel = run_figure5(apps=specs, runner=CorpusRunner(jobs=4))
    assert render_figure5(serial) == render_figure5(parallel)


def test_parallel_table2_matches_serial():
    serial = run_table2()
    parallel = run_table2(runner=CorpusRunner(jobs=4))
    assert render_table2(serial) == render_table2(parallel)


# -- cache --------------------------------------------------------------------


def test_warm_cache_performs_zero_reanalyses(specs, tmp_path):
    cold = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    rows_cold = run_table1(validate=False, apps=specs, runner=cold)
    assert cold.last_stats.analyzed == len(specs)
    assert cold.last_stats.cached == 0

    warm = CorpusRunner(jobs=2, cache=ResultCache(tmp_path))
    rows_warm = run_table1(validate=False, apps=specs, runner=warm)
    assert warm.last_stats.analyzed == 0
    assert warm.last_stats.cached == len(specs)
    # cached payloads round-trip exactly, timings included
    assert json.dumps([row_to_dict(r) for r in rows_cold], sort_keys=True) \
        == json.dumps([row_to_dict(r) for r in rows_warm], sort_keys=True)


def test_cache_invalidates_when_config_k_changes(specs, tmp_path):
    runner = CorpusRunner(cache=ResultCache(tmp_path))
    run_table1(validate=False, apps=specs, runner=runner)
    assert runner.last_stats.analyzed == len(specs)

    run_table1(validate=False, apps=specs,
               config=AnalysisConfig(k=3), runner=runner)
    assert runner.last_stats.analyzed == len(specs), \
        "changing AnalysisConfig.k must miss every cache entry"
    assert runner.last_stats.cached == 0

    # and the default-config entries are still warm
    run_table1(validate=False, apps=specs, runner=runner)
    assert runner.last_stats.analyzed == 0


def test_cache_invalidates_when_source_changes(tmp_path):
    spec = app("todolist")
    fingerprint = {"config": None}
    key_a = cache_key("table1", spec.source(), fingerprint)
    key_b = cache_key("table1", spec.source() + "\n// edited", fingerprint)
    assert key_a != key_b


def test_corrupt_cache_entry_is_a_miss(specs, tmp_path):
    runner = CorpusRunner(cache=ResultCache(tmp_path))
    run_table1(validate=False, apps=specs[:1], runner=runner)
    entries = list(tmp_path.rglob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("{ not json")

    again = CorpusRunner(cache=ResultCache(tmp_path))
    rows = run_table1(validate=False, apps=specs[:1], runner=again)
    assert again.last_stats.analyzed == 1
    assert rows[0].name == specs[0].name


def test_stale_schema_cache_entry_is_a_miss(specs, tmp_path):
    """A schema-2 envelope (pre-witness payloads) must load as a miss and
    be overwritten, never deserialized into the witness-era model."""
    runner = CorpusRunner(cache=ResultCache(tmp_path))
    run_table1(validate=False, apps=specs[:1], runner=runner)
    entries = list(tmp_path.rglob("*.json"))
    assert len(entries) == 1
    payload = json.loads(entries[0].read_text())
    assert payload["schema"] == CACHE_SCHEMA
    payload["schema"] = 2
    entries[0].write_text(json.dumps(payload))

    again = CorpusRunner(cache=ResultCache(tmp_path))
    rows = run_table1(validate=False, apps=specs[:1], runner=again)
    assert again.last_stats.analyzed == 1, \
        "a stale-schema entry must not count as a hit"
    assert again.last_stats.cached == 0
    assert rows[0].name == specs[0].name
    # the entry was re-stamped with the current schema
    restamped = json.loads(entries[0].read_text())
    assert restamped["schema"] == CACHE_SCHEMA

    warm = CorpusRunner(cache=ResultCache(tmp_path))
    run_table1(validate=False, apps=specs[:1], runner=warm)
    assert warm.last_stats.cached == 1


def test_validation_params_participate_in_cache_key(specs, tmp_path):
    runner = CorpusRunner(cache=ResultCache(tmp_path))
    run_table1(validate=False, apps=specs[:2], runner=runner)
    run_table1(validate=True, apps=specs[:2], random_attempts=5,
               runner=runner)
    assert runner.last_stats.analyzed == 2, \
        "validate/random_attempts are part of the key"


def test_unknown_task_kind_rejected():
    with pytest.raises(ValueError, match="unknown task kind"):
        CorpusRunner().run("frobnicate", ["todolist"])
