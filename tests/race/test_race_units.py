"""Race-layer unit tests: event extraction, pair classification, warning
bookkeeping, detector options."""

import pytest

from repro.core import analyze_app, AnalysisConfig
from repro.lowering import compile_app
from repro.race import collect_access_events, classify_pair, FREE, USE
from repro.race.detector import DetectorOptions
from repro.threadify import threadify, ThreadKind


def program_for(source):
    return threadify(compile_app(source, seal=False))


def test_events_extracted_with_kinds():
    program = program_for(
        """
        class F { }
        class A extends Activity {
          F f;
          void onCreate(Bundle b) { f = null; }
          void onResume() { F x = f; }
        }
        """
    )
    events = collect_access_events(program)
    kinds = {(e.kind, e.fieldref.field_name) for e in events}
    assert (FREE, "f") in kinds
    assert (USE, "f") in kinds


def test_non_null_store_is_not_a_free():
    program = program_for(
        """
        class F { }
        class A extends Activity {
          F f;
          void onCreate(Bundle b) { f = new F(); }
        }
        """
    )
    events = collect_access_events(program)
    assert not [e for e in events if e.kind == FREE]


def test_synthetic_fields_excluded():
    program = program_for(
        """
        class A extends Activity {
          Handler h;
          void onCreate(Bundle b) {
            h = new Handler();
            h.post(new Runnable() { public void run() { } });
          }
        }
        """
    )
    events = collect_access_events(program)
    assert not [e for e in events if e.fieldref.field_name.startswith("$")]


def test_events_attributed_to_every_owning_node():
    program = program_for(
        """
        class F { }
        class A extends Activity {
          F f;
          void helper() { F x = f; }
          void onResume() { helper(); }
          void onPause() { helper(); }
        }
        """
    )
    events = [e for e in collect_access_events(program)
              if e.method_qname == "A.helper"]
    assert len({e.node_id for e in events}) == 2


def test_classify_pair_categories():
    program = program_for(
        """
        class W implements Runnable { public void run() { } }
        class A extends Activity {
          Handler h;
          void onCreate(Bundle b) {
            h = new Handler();
            h.post(new Runnable() { public void run() { } });
            new Thread(new W()).start();
          }
          void onPause() { }
        }
        """
    )
    forest = program.forest
    on_create = next(n for n in forest if n.method_name == "onCreate")
    on_pause = next(n for n in forest if n.method_name == "onPause")
    postee = next(n for n in forest if n.kind is ThreadKind.POSTED_CALLBACK)
    worker = next(n for n in forest if n.kind is ThreadKind.NATIVE_THREAD)

    assert classify_pair(forest, on_create, on_pause) == "EC-EC"
    assert classify_pair(forest, on_create, postee) == "EC-PC"
    assert classify_pair(forest, postee, postee) == "PC-PC"
    assert classify_pair(forest, on_create, worker) == "C-RT"
    assert classify_pair(forest, on_pause, worker) == "C-NT"
    assert classify_pair(forest, worker, worker) == "T-T"


UAF_APP = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onResume() { f.use(); }
  void onStop() { f = null; }
}
"""


def test_warning_key_is_instruction_pair():
    result = analyze_app(UAF_APP)
    assert len(result.warnings) == 1
    warning = result.warnings[0]
    assert warning.use_method == "A.onResume"
    assert warning.free_method == "A.onStop"
    assert warning.key == (warning.use_uid, warning.free_uid)


def test_describe_contains_lineage():
    result = analyze_app(UAF_APP)
    text = result.warnings[0].describe(result.program.forest)
    assert "main -> A.onResume" in text
    assert "main -> A.onStop" in text


def test_same_node_accesses_never_pair():
    result = analyze_app(
        """
        class F { void use() { } }
        class A extends Activity {
          F f;
          void onResume() { f.use(); f = null; }
        }
        """
    )
    assert not result.warnings


def test_detector_engines_agree_on_uaf_app():
    datalog = analyze_app(UAF_APP)
    imperative = analyze_app(
        UAF_APP,
        config=AnalysisConfig(detector=DetectorOptions(engine="imperative")),
    )
    assert {w.key for w in datalog.warnings} == {
        w.key for w in imperative.warnings
    }


def test_static_field_pairs_by_name():
    result = analyze_app(
        """
        class F { void use() { } }
        class Holder2 { static F f; }
        class A extends Activity {
          void onCreate(Bundle b) { Holder2.f = new F(); }
          void onResume() { Holder2.f.use(); }
          void onStop() { Holder2.f = null; }
        }
        """
    )
    assert [w for w in result.warnings if w.fieldref.field_name == "f"]
