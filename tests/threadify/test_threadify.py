"""Threadification tests: the Figure 3 tour plus edge cases."""

import pytest

from repro.android.callbacks import CallbackCategory
from repro.lowering import compile_app
from repro.threadify import threadify, ThreadKind

# An app exercising all five callback families of paper Figure 3:
# (a) lifecycle ECs, (b) UI/system ECs, (c) Handler PCs,
# (d) Service/Receiver PCs, (e) AsyncTask.
FIG3_APP = """
class MainActivity extends Activity implements LocationListener {
  Handler handler;
  View button;
  LocationManager locationManager;
  AlertReceiver alertReceiver;

  void onCreate(Bundle b) {
    super.onCreate(b);
    handler = new MyHandler();
    button = findViewById(1);
    button.setOnClickListener(new ClickHandler());
    locationManager.requestLocationUpdates("gps", 0, 0, this);
  }

  void onStart() {
    bindService(new Intent("svc"), new Conn(), 0);
  }

  void onResume() {
    alertReceiver = new AlertReceiver();
    registerReceiver(alertReceiver, new IntentFilter("alert"));
  }

  void onLocationChanged(Location location) {
    LoadTask task = new LoadTask();
    task.execute();
  }
}

class ClickHandler implements OnClickListener {
  public void onClick(View v) {
    MyHandler h = new MyHandler();
    h.sendEmptyMessage(1);
    h.post(new Job());
  }
}

class Job implements Runnable {
  public void run() { Log.d("job", "ran"); }
}

class MyHandler extends Handler {
  public void handleMessage(Message msg) { Log.d("h", "msg"); }
}

class Conn implements ServiceConnection {
  public void onServiceConnected(ComponentName name, IBinder service) { }
  public void onServiceDisconnected(ComponentName name) { }
}

class AlertReceiver extends BroadcastReceiver {
  public void onReceive(Context context, Intent intent) { }
}

class LoadTask extends AsyncTask {
  void onPreExecute() { }
  void doInBackground() { publishProgress(); }
  void onProgressUpdate() { }
  void onPostExecute() { }
}
"""


@pytest.fixture(scope="module")
def program():
    module = compile_app(FIG3_APP, seal=False)
    return threadify(module)


def find(program, receiver, method):
    matches = [
        n for n in program.forest
        if n.receiver_class == receiver and n.method_name == method
    ]
    assert matches, f"no node for {receiver}.{method}"
    return matches[0]


def test_lifecycle_callbacks_are_entry_children_of_dummy_main(program):
    node = find(program, "MainActivity", "onCreate")
    assert node.kind is ThreadKind.ENTRY_CALLBACK
    assert node.parent is program.forest.dummy_main
    assert node.category is CallbackCategory.LIFECYCLE


def test_registered_click_listener_is_entry_callback(program):
    node = find(program, "ClickHandler", "onClick")
    assert node.kind is ThreadKind.ENTRY_CALLBACK
    assert node.parent is program.forest.dummy_main
    assert node.category is CallbackCategory.UI


def test_location_listener_on_activity_itself(program):
    node = find(program, "MainActivity", "onLocationChanged")
    # registered via requestLocationUpdates(this): an EC.
    assert node.kind is ThreadKind.ENTRY_CALLBACK


def test_handler_message_is_posted_callback_of_onclick(program):
    node = find(program, "MyHandler", "handleMessage")
    assert node.kind is ThreadKind.POSTED_CALLBACK
    assert node.category is CallbackCategory.HANDLER_MESSAGE
    assert node.parent.entry == ("ClickHandler", "onClick")


def test_posted_runnable_is_child_of_onclick(program):
    node = find(program, "Job", "run")
    assert node.kind is ThreadKind.POSTED_CALLBACK
    assert node.category is CallbackCategory.POSTED_RUNNABLE
    assert node.parent.entry == ("ClickHandler", "onClick")


def test_service_connection_callbacks_are_children_of_binder(program):
    connected = find(program, "Conn", "onServiceConnected")
    disconnected = find(program, "Conn", "onServiceDisconnected")
    assert connected.parent.entry == ("MainActivity", "onStart")
    assert disconnected.parent.entry == ("MainActivity", "onStart")
    assert connected.category is CallbackCategory.SERVICE_CONN
    assert connected.group_key == disconnected.group_key


def test_receiver_is_posted_callback_of_onresume(program):
    node = find(program, "AlertReceiver", "onReceive")
    assert node.kind is ThreadKind.POSTED_CALLBACK
    assert node.parent.entry == ("MainActivity", "onResume")


def test_dynamically_registered_receiver_is_not_a_component_ec(program):
    receivers = [
        n for n in program.forest
        if n.receiver_class == "AlertReceiver" and n.method_name == "onReceive"
    ]
    assert len(receivers) == 1
    assert receivers[0].kind is ThreadKind.POSTED_CALLBACK


def test_asynctask_background_is_thread_child_of_trigger(program):
    bg = find(program, "LoadTask", "doInBackground")
    assert bg.kind is ThreadKind.ASYNC_BACKGROUND
    assert bg.looper is None
    assert bg.parent.entry == ("MainActivity", "onLocationChanged")


def test_asynctask_looper_callbacks_are_children_of_background(program):
    bg = find(program, "LoadTask", "doInBackground")
    for name in ("onPreExecute", "onProgressUpdate", "onPostExecute"):
        node = find(program, "LoadTask", name)
        assert node.kind is ThreadKind.POSTED_CALLBACK
        assert node.parent is bg
        assert node.group_key == bg.group_key


def test_lineage_describes_path_from_main(program):
    node = find(program, "LoadTask", "onPostExecute")
    desc = node.describe()
    assert desc.startswith("main -> MainActivity.onLocationChanged")
    assert desc.endswith("LoadTask.onPostExecute")


def test_counts_shape(program):
    counts = program.forest.counts()
    assert counts["EC"] >= 5   # 3 lifecycle + onLocationChanged + onClick
    assert counts["PC"] >= 7   # run, handleMessage, conn x2, receive, async x3
    assert counts["T"] >= 2    # dummy main + doInBackground


def test_regions_contain_entry_method(program):
    node = find(program, "ClickHandler", "onClick")
    region = program.regions[node.node_id]
    assert "ClickHandler.onClick" in region


def test_dummy_main_exists_and_module_sealed(program):
    assert program.module.sealed
    main = program.module.lookup_method("DummyMain", "main")
    assert main is not None
    assert "$Registry" in program.module.classes


def test_thread_spawn_with_inline_runnable():
    module = compile_app(
        """
        class A extends Activity {
          void onCreate(Bundle b) {
            new Thread(new Worker()).start();
          }
        }
        class Worker implements Runnable {
          public void run() { }
        }
        """,
        seal=False,
    )
    program = threadify(module)
    node = find(program, "Worker", "run")
    assert node.kind is ThreadKind.NATIVE_THREAD
    assert node.parent.entry == ("A", "onCreate")


def test_thread_subclass_spawn():
    module = compile_app(
        """
        class A extends Activity {
          MyThread worker;
          void onResume() { worker = new MyThread(); worker.start(); }
        }
        class MyThread extends Thread {
          public void run() { }
        }
        """,
        seal=False,
    )
    program = threadify(module)
    node = find(program, "MyThread", "run")
    assert node.kind is ThreadKind.NATIVE_THREAD
    assert node.parent.entry == ("A", "onResume")


def test_self_reposting_runnable_terminates():
    module = compile_app(
        """
        class A extends Activity {
          Handler handler;
          void onCreate(Bundle b) {
            handler = new Handler();
            handler.post(new Ticker());
          }
        }
        class Ticker implements Runnable {
          public void run() {
            Handler h = new Handler();
            h.post(this);
          }
        }
        """,
        seal=False,
    )
    program = threadify(module)
    ticks = [n for n in program.forest if n.receiver_class == "Ticker"]
    # finite unrolling: the fixpoint must not loop forever
    assert 1 <= len(ticks) <= 3


def test_anonymous_runnable_posted_from_callback():
    module = compile_app(
        """
        class A extends Activity {
          Handler handler;
          Cursor cursor;
          void onClick(View v) {
            handler.post(new Runnable() {
              public void run() { cursor.close(); }
            });
          }
        }
        """,
        seal=False,
    )
    program = threadify(module)
    node = find(program, "A$1", "run")
    assert node.kind is ThreadKind.POSTED_CALLBACK
    assert node.parent.entry == ("A", "onClick")
    # anonymous class's owning component resolves through the $ name
    assert node.component == "A"


def test_rt_nt_classification():
    module = compile_app(
        """
        class A extends Activity {
          void onCreate(Bundle b) { new Thread(new W1()).start(); }
          void onPause() { }
        }
        class W1 implements Runnable { public void run() { } }
        """,
        seal=False,
    )
    program = threadify(module)
    on_create = find(program, "A", "onCreate")
    on_pause = find(program, "A", "onPause")
    worker = find(program, "W1", "run")
    assert program.forest.is_reachable_thread(on_create, worker)
    assert not program.forest.is_reachable_thread(on_pause, worker)
