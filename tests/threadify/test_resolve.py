"""Unit tests for the receiver-class resolver used by threadification."""

import pytest

from repro.analysis import instantiated_classes
from repro.ir import Invoke, Local
from repro.lowering import compile_app
from repro.threadify.resolve import (
    concrete_implementers,
    resolve_local_classes,
    resolve_thread_tasks,
)


def setup(source, class_name, method_name):
    module = compile_app(source)
    method = module.lookup_method(class_name, method_name)
    return module, method, instantiated_classes(module)


def test_resolves_direct_allocation():
    module, method, rta = setup(
        """
        class W implements Runnable { public void run() { } }
        class A {
          void m() {
            Runnable r = new W();
            r.run();
          }
        }
        """,
        "A", "m",
    )
    assert resolve_local_classes(module, method, Local("r"), rta) == {"W"}


def test_resolves_through_copies():
    module, method, rta = setup(
        """
        class W implements Runnable { public void run() { } }
        class A {
          void m() {
            Runnable a = new W();
            Runnable b = a;
            Runnable c = b;
            c.run();
          }
        }
        """,
        "A", "m",
    )
    assert resolve_local_classes(module, method, Local("c"), rta) == {"W"}


def test_field_load_widens_to_instantiated_subtypes():
    module, method, rta = setup(
        """
        class W1 implements Runnable { public void run() { } }
        class W2 implements Runnable { public void run() { } }
        class W3 implements Runnable { public void run() { } }
        class A {
          Runnable task;
          void setup() { task = new W1(); Runnable other = new W2(); }
          void m() {
            Runnable r = task;
            r.run();
          }
        }
        """,
        "A", "m",
    )
    resolved = resolve_local_classes(module, method, Local("r"), rta)
    assert resolved == {"W1", "W2"}, "W3 is never instantiated"


def test_this_resolves_to_concrete_class():
    module, method, rta = setup(
        """
        class A {
          void m() {
            A self = this;
          }
        }
        """,
        "A", "m",
    )
    # A itself is never `new`ed: fall back to the class itself
    assert resolve_local_classes(module, method, Local("this"), rta) == {"A"}


def test_parameter_falls_back_to_declared_type():
    module, method, rta = setup(
        """
        class W implements Runnable { public void run() { } }
        class A {
          void seed() { Runnable r = new W(); }
          void m(Runnable job) {
            job.run();
          }
        }
        """,
        "A", "m",
    )
    assert resolve_local_classes(module, method, Local("job"), rta) == {"W"}


def test_concrete_implementers_excludes_interfaces_and_framework():
    module, _method, rta = setup(
        """
        class W implements Runnable { public void run() { } }
        class A { void m() { Runnable r = new W(); } }
        """,
        "A", "m",
    )
    impls = concrete_implementers(module, "Runnable", rta)
    assert impls == {"W"}  # Thread (framework) and the interface excluded


def test_thread_task_resolution_from_ctor():
    module, method, rta = setup(
        """
        class W implements Runnable { public void run() { } }
        class A {
          void m() {
            Thread t = new Thread(new W());
            t.start();
          }
        }
        """,
        "A", "m",
    )
    assert resolve_thread_tasks(module, method, Local("t"), rta) == {"W"}


def test_unresolvable_local_is_empty():
    module, method, rta = setup(
        "class A { void m() { Object o = null; } }", "A", "m"
    )
    assert resolve_local_classes(module, method, Local("o"), rta) == set()
