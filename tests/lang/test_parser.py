"""Parser unit tests."""

import pytest

from repro.lang import ParseError, ast, parse_program


def parse_one(source):
    program = parse_program(source)
    assert len(program.classes) == 1
    return program.classes[0]


def test_empty_class():
    cls = parse_one("class A { }")
    assert cls.name == "A"
    assert cls.super_name is None
    assert not cls.members


def test_extends_and_implements():
    cls = parse_one("class A extends B implements C, D { }")
    assert cls.super_name == "B"
    assert cls.interfaces == ["C", "D"]


def test_interface_with_abstract_method():
    cls = parse_one("interface I { void run(); }")
    assert cls.is_interface
    method = cls.method_decls()[0]
    assert method.name == "run"
    assert method.body.statements == []


def test_field_with_initializer():
    cls = parse_one("class A { int x = 3; static String s; }")
    fields = cls.field_decls()
    assert fields[0].name == "x"
    assert isinstance(fields[0].init, ast.IntLit)
    assert fields[1].is_static


def test_constructor_detected_by_name():
    cls = parse_one("class A { A(int x) { } void A2() { } }")
    ctor = cls.method_decls()[0]
    assert ctor.is_constructor
    assert ctor.name == "<init>"
    assert ctor.params[0].name == "x"


def test_modifiers_on_methods():
    cls = parse_one(
        "class A { public static void s() { } synchronized void m() { } }"
    )
    s, m = cls.method_decls()
    assert s.is_static and not s.is_synchronized
    assert m.is_synchronized and not m.is_static


def test_annotations_are_skipped():
    cls = parse_one("class A { @Override public void m() { } }")
    assert cls.method_decls()[0].name == "m"


def test_var_decl_vs_expression_statement():
    cls = parse_one(
        "class A { void m() { int x = 1; x = 2; Foo f = null; f.bar(); } }"
    )
    stmts = cls.method_decls()[0].body.statements
    assert isinstance(stmts[0], ast.VarDecl)
    assert isinstance(stmts[1], ast.ExprStmt)
    assert isinstance(stmts[1].expr, ast.Assignment)
    assert isinstance(stmts[2], ast.VarDecl)
    assert isinstance(stmts[3], ast.ExprStmt)
    assert isinstance(stmts[3].expr, ast.Call)


def test_if_else_and_while():
    cls = parse_one(
        """
        class A {
          void m(int n) {
            if (n > 0) { n = n - 1; } else n = 0;
            while (n < 10) n = n + 1;
          }
        }
        """
    )
    stmts = cls.method_decls()[0].body.statements
    assert isinstance(stmts[0], ast.IfStmt)
    assert stmts[0].else_branch is not None
    assert isinstance(stmts[1], ast.WhileStmt)


def test_synchronized_block():
    cls = parse_one("class A { void m() { synchronized (this) { int x = 1; } } }")
    stmt = cls.method_decls()[0].body.statements[0]
    assert isinstance(stmt, ast.SyncStmt)
    assert isinstance(stmt.lock, ast.ThisExpr)


def test_throw_statement():
    cls = parse_one(
        'class A { void m() { throw new NullPointerException("boom"); } }'
    )
    stmt = cls.method_decls()[0].body.statements[0]
    assert isinstance(stmt, ast.ThrowStmt)
    assert stmt.exception == "NullPointerException"


def test_operator_precedence():
    cls = parse_one("class A { int m() { return 1 + 2 * 3 == 7 && true; } }")
    ret = cls.method_decls()[0].body.statements[0]
    expr = ret.value
    assert isinstance(expr, ast.Binary) and expr.op == "&&"
    eq = expr.lhs
    assert isinstance(eq, ast.Binary) and eq.op == "=="
    plus = eq.lhs
    assert isinstance(plus, ast.Binary) and plus.op == "+"
    assert isinstance(plus.rhs, ast.Binary) and plus.rhs.op == "*"


def test_chained_field_access_and_calls():
    cls = parse_one("class A { void m() { a.b.c(1, 2).d = null; } }")
    stmt = cls.method_decls()[0].body.statements[0]
    assign = stmt.expr
    assert isinstance(assign, ast.Assignment)
    target = assign.target
    assert isinstance(target, ast.FieldAccess) and target.name == "d"
    call = target.target
    assert isinstance(call, ast.Call) and call.name == "c" and len(call.args) == 2


def test_anonymous_class_body():
    cls = parse_one(
        """
        class A {
          void m(Handler h) {
            h.post(new Runnable() { public void run() { } });
          }
        }
        """
    )
    stmt = cls.method_decls()[0].body.statements[0]
    call = stmt.expr
    new_expr = call.args[0]
    assert isinstance(new_expr, ast.NewExpr)
    assert new_expr.class_name == "Runnable"
    assert new_expr.body is not None
    assert new_expr.body[0].name == "run"


def test_super_call():
    cls = parse_one(
        "class A extends Activity { void onCreate(Bundle b) { super.onCreate(b); } }"
    )
    stmt = cls.method_decls()[0].body.statements[0]
    assert isinstance(stmt.expr, ast.SuperCall)


def test_assignment_to_rvalue_rejected():
    with pytest.raises(ParseError):
        parse_program("class A { void m() { 1 = 2; } }")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_program("class A { void m() { int x = 1 } }")


def test_final_local_recorded():
    cls = parse_one("class A { void m() { final String s = \"x\"; } }")
    decl = cls.method_decls()[0].body.statements[0]
    assert decl.is_final


def test_pathological_expression_nesting_is_a_parse_error():
    # 500 nested parens used to blow the interpreter's recursion limit
    # (RecursionError escaping as an analysis crash); the parser now
    # enforces its own depth budget and reports a clean source error.
    depth = 500
    source = "class A { void m() { int x = " + "(" * depth + "1" \
        + ")" * depth + "; } }"
    with pytest.raises(ParseError, match="nesting depth"):
        parse_program(source)


def test_pathological_statement_nesting_is_a_parse_error():
    depth = 500
    body = "if (c) { " * depth + "x = 1;" + " }" * depth
    source = "class A { boolean c; int x; void m() { " + body + " } }"
    with pytest.raises(ParseError, match="nesting depth"):
        parse_program(source)


def test_reasonable_nesting_still_parses():
    depth = 40
    source = "class A { void m() { int x = " + "(" * depth + "1" \
        + ")" * depth + "; } }"
    cls = parse_one(source)
    assert cls.method_decls()[0].name == "m"
