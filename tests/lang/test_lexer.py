"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def test_empty_source_yields_only_eof():
    assert types("") == [TokenType.EOF]


def test_keywords_and_identifiers():
    toks = tokenize("class Foo extends Bar")
    assert [t.type for t in toks[:-1]] == [
        TokenType.CLASS, TokenType.IDENT, TokenType.EXTENDS, TokenType.IDENT,
    ]
    assert toks[1].value == "Foo"
    assert toks[3].value == "Bar"


def test_int_literal_value():
    toks = tokenize("42 0 123456")
    assert [t.value for t in toks[:-1]] == [42, 0, 123456]


def test_long_suffix_is_accepted():
    toks = tokenize("100L")
    assert toks[0].type is TokenType.INT_LITERAL
    assert toks[0].value == 100


def test_string_literal_with_escapes():
    toks = tokenize(r'"hello\n\"world\""')
    assert toks[0].type is TokenType.STRING_LITERAL
    assert toks[0].value == 'hello\n"world"'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_line_comment_skipped():
    assert types("a // comment here\n b") == [
        TokenType.IDENT, TokenType.IDENT, TokenType.EOF,
    ]


def test_block_comment_skipped_and_lines_counted():
    toks = tokenize("a /* multi\nline */ b")
    assert toks[1].line == 2


def test_two_char_operators_win_over_one_char():
    assert types("== = <= < && !") == [
        TokenType.EQ, TokenType.ASSIGN, TokenType.LE, TokenType.LT,
        TokenType.AND, TokenType.NOT, TokenType.EOF,
    ]


def test_dollar_and_underscore_in_identifiers():
    toks = tokenize("$outer _private my$var")
    assert [t.value for t in toks[:-1]] == ["$outer", "_private", "my$var"]


def test_positions_are_tracked():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("a # b")


def test_annotation_token():
    assert types("@Override")[:1] == [TokenType.AT]
