"""Join planning, typed engine errors, and the index registry.

Covers the two edge-case bugfixes of this PR:

* a builtin written *before* the literal that binds its variables used
  to die with a raw ``KeyError`` mid-join; planning now defers it,
* mixed-type ``<``/``<=`` columns used to die with an opaque
  ``TypeError``; the engine now raises a typed :class:`BuiltinTypeError`
  naming the literal and values, which the resilience layer records as
  an ``AnalysisFault``,

plus the bounded per-predicate index registry with LRU eviction.
"""

import pytest

from repro import obs
from repro.datalog import (
    BuiltinTypeError,
    DatalogError,
    evaluate,
    Literal,
    MAX_INDEXES_PER_PREDICATE,
    Program,
    query,
    Rule,
    StratificationError,
    UnboundVariableError,
    vars_,
)
from repro.datalog.engine import _Database, _plan_order
from repro.datalog.terms import Var as Var_

X, Y, Z, W = vars_("X Y Z W")


def lit(pred, *args, negated=False):
    return Literal(pred, tuple(args), negated=negated)


# -- bugfix 1: builtin before its binder ---------------------------------------


def test_builtin_before_binder_no_longer_crashes():
    """``less(X, Y) :- X < Y, edge(X, Y)`` used to raise KeyError."""
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 3, 2).fact("edge", 2, 4)
        .rule(lit("less", X, Y), lit("<", X, Y), lit("edge", X, Y))
    )
    assert query(program, "less") == {(1, 2), (2, 4)}


def test_negation_before_binder_no_longer_crashes():
    program = (
        Program()
        .fact("n", 1).fact("n", 2).fact("bad", 2)
        .rule(lit("good", X), lit("bad", X, negated=True), lit("n", X))
    )
    assert query(program, "good") == {(1,)}


def test_builtin_between_binders_waits_for_both():
    program = (
        Program()
        .fact("a", 1).fact("a", 5)
        .fact("b", 3)
        .rule(lit("p", X, Y), lit("a", X), lit("<", X, Y), lit("b", Y))
    )
    assert query(program, "p") == {(1, 3)}


def test_unboundable_builtin_rejected_at_load_time():
    """A builtin variable bound by NO positive literal is a typed,
    program-load-time error naming the rule and the variable."""
    with pytest.raises(UnboundVariableError) as info:
        Program().rule(lit("p", X), lit("n", X), lit("<", X, Y))
    assert "Y" in str(info.value)
    assert "p(X)" in str(info.value)  # names the rule
    assert info.value.variables == ["Y"]
    # backwards compatible with the historical ValueError contract,
    # and catchable as the engine-wide base class
    assert isinstance(info.value, ValueError)
    assert isinstance(info.value, DatalogError)


def test_unboundable_negated_literal_names_rule_and_variable():
    with pytest.raises(UnboundVariableError) as info:
        Program().rule(
            lit("p", X), lit("n", X), lit("m", Y, negated=True)
        )
    assert info.value.variables == ["Y"]


def test_plan_order_defers_constrained_literals():
    rule = Rule(lit("less", X, Y),
                (lit("<", X, Y), lit("edge", X, Y)))
    assert _plan_order(rule) == (1, 0)


def test_plan_order_prefers_bound_literals():
    # after edge(X, Y), link(Y, Z) shares a variable while iso(W, W2)
    # shares none: the join should pick link first
    W2 = vars_("W2")[0]
    rule = Rule(lit("p", X, Z),
                (lit("edge", X, Y), lit("iso", W, W2), lit("link", Y, Z)))
    order = _plan_order(rule)
    assert order.index(2) < order.index(1)


# -- bugfix 2: mixed-type comparisons ------------------------------------------


def test_mixed_type_lt_raises_typed_error_naming_values():
    program = (
        Program()
        .fact("t", 1).fact("t", "late")
        .rule(lit("lt", X, Y), lit("t", X), lit("t", Y), lit("<", X, Y))
    )
    with pytest.raises(BuiltinTypeError) as info:
        query(program, "lt")
    message = str(info.value)
    assert "<" in message
    assert "'late'" in message and "1" in message
    assert isinstance(info.value, DatalogError)
    assert set(info.value.values) == {1, "late"}


def test_mixed_type_equality_still_works():
    # == and != are well-defined across types; only orderings raise
    program = (
        Program()
        .fact("t", 1).fact("t", "late")
        .rule(lit("ne", X, Y), lit("t", X), lit("t", Y), lit("!=", X, Y))
    )
    assert query(program, "ne") == {(1, "late"), ("late", 1)}


def test_mixed_type_error_routes_to_analysis_fault():
    from repro.resilience import fault_from_exception

    program = (
        Program()
        .fact("t", 1).fact("t", "late")
        .rule(lit("lt", X, Y), lit("t", X), lit("t", Y), lit("<=", X, Y))
    )
    with pytest.raises(BuiltinTypeError) as info:
        query(program, "lt")
    fault = fault_from_exception(info.value, "someapp", stage="detection")
    assert fault.kind == "analysis"
    assert not fault.transient
    assert "BuiltinTypeError" in fault.message
    assert fault.to_dict()["app"] == "someapp"


def test_stratification_error_is_a_datalog_error():
    program = Program()
    program.fact("n", 1)
    program.rule(lit("p", X), lit("n", X), lit("q", X, negated=True))
    program.rule(lit("q", X), lit("n", X), lit("p", X, negated=True))
    with pytest.raises(DatalogError):
        evaluate(program)
    with pytest.raises(StratificationError):
        evaluate(program)


# -- index registry ------------------------------------------------------------


def test_database_caps_indexes_per_predicate_with_lru_eviction():
    rows = {(i, i + 1, i + 2, i % 3) for i in range(50)}
    db = _Database({"r": rows}, max_indexes=2)
    db.lookup("r", {0: 1})          # build index on (0,)
    db.lookup("r", {1: 2})          # build index on (1,)
    assert db.index_builds == 2 and db.index_evictions == 0
    db.lookup("r", {0: 3})          # hit (0,), refreshing its recency
    assert db.index_hits == 1
    db.lookup("r", {2: 4})          # build (2,): evicts LRU (1,)
    assert db.index_evictions == 1
    assert len(db._indexes["r"]) == 2
    # (1,) was evicted, so probing it again rebuilds
    db.lookup("r", {1: 2})
    assert db.index_builds == 4
    # evicted and rebuilt indexes still answer correctly
    assert set(db.lookup("r", {1: 2})) == {r for r in rows if r[1] == 2}


def test_inserts_only_touch_owning_predicates_indexes():
    db = _Database({"a": {(1,)}, "b": {(2, 3)}})
    db.lookup("b", {0: 2})  # build an index on b
    before = dict(db._indexes["b"])
    db.add("a", (9,))       # must not touch (or rebuild) b's index
    assert db._indexes["b"] is not None
    assert dict(db._indexes["b"]) == before
    db.add("b", (2, 7))
    assert set(db.lookup("b", {0: 2})) == {(2, 3), (2, 7)}


def test_eviction_counter_reaches_obs():
    # probe more distinct position subsets of one predicate than the
    # registry cap: each rule pins constants everywhere except one slot
    arity = MAX_INDEXES_PER_PREDICATE + 2
    rows = [tuple(100 * i + j for j in range(arity)) for i in range(6)]
    program = Program().add_facts("wide", rows)
    anchor = rows[0]
    for pos in range(arity):
        var = Var_(f"P{pos}")
        args = tuple(
            var if i == pos else anchor[i] for i in range(arity)
        )
        program.rule(Literal(f"probe{pos}", (var,)),
                     Literal("wide", args))
    rec = obs.Recorder()
    with obs.use(rec):
        relations = evaluate(program)
    counters = rec.snapshot().counters
    assert counters["datalog.index.builds"] == arity
    assert counters["datalog.index.evictions"] == \
        arity - MAX_INDEXES_PER_PREDICATE
    # eviction never affects answers
    for pos in range(arity):
        assert relations[f"probe{pos}"] == {(anchor[pos],)}


def test_plan_counters_emitted():
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3)
        .rule(lit("less", X, Y), lit("<", X, Y), lit("edge", X, Y))
    )
    rec = obs.Recorder()
    with obs.use(rec):
        evaluate(program)
    counters = rec.snapshot().counters
    assert counters["datalog.plan.reordered_rules"] == 1


def test_multi_delta_literal_rule_correct():
    """Both occurrences of a recursive predicate must act as deltas."""
    program = (
        Program()
        .fact("base", 1).fact("base", 2)
        .rule(lit("r", X), lit("base", X))
        .rule(lit("pair", X, Y), lit("r", X), lit("r", Y))
        .rule(lit("r", Z), lit("pair", X, Y), lit("sum3", X, Y, Z))
        .fact("sum3", 1, 2, 3).fact("sum3", 2, 3, 5)
    )
    assert query(program, "r") == {(1,), (2,), (3,), (5,)}
    assert (3, 5) in query(program, "pair")


def test_delta_scan_with_constant_positions():
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3).fact("edge", 3, 1)
        .rule(lit("reach", X), lit("edge", 1, X))
        .rule(lit("reach", Y), lit("reach", X), lit("edge", X, Y))
        .rule(lit("back_to_one", X), lit("reach", X), lit("edge", X, 1))
    )
    assert query(program, "back_to_one") == {(3,)}
