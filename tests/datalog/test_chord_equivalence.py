"""The declarative (Datalog) race detector must agree with the imperative
one -- the Chord-fidelity check."""

import pytest

from repro.core import AnalysisConfig, analyze_app
from repro.datalog import datalog_racy_pairs
from repro.race.detector import DetectorOptions

IMPERATIVE = AnalysisConfig(detector=DetectorOptions(engine="imperative"))

APPS = {
    "fig1a": """
        class TerminalManager { void createPortForward() { } }
        class ConsoleActivity extends Activity {
          TerminalManager bound;
          void onStart() {
            bindService(new Intent("t"), new ServiceConnection() {
              public void onServiceConnected(ComponentName n, IBinder s) {
                bound = new TerminalManager();
              }
              public void onServiceDisconnected(ComponentName n) {
                bound = null;
              }
            }, 0);
          }
          void onCreateContextMenu(ContextMenu m, View v, ContextMenuInfo i) {
            bound.createPortForward();
          }
        }
    """,
    "statics": """
        class F { void use() { } }
        class Shared { static F f; }
        class A extends Activity {
          void onCreate(Bundle b) { Shared.f = new F(); new Thread(new W()).start(); }
          void onPause() { Shared.f.use(); }
        }
        class W implements Runnable { public void run() { Shared.f = null; } }
    """,
    "multi_field": """
        class F { void use() { } }
        class A extends Activity {
          F first;
          F second;
          Handler handler;
          void onCreate(Bundle b) {
            handler = new Handler();
            first = new F();
            second = new F();
            handler.post(new Runnable() {
              public void run() { first.use(); second.use(); }
            });
          }
          void onPause() { first = null; }
          void onStop() { second = null; }
        }
    """,
}


@pytest.mark.parametrize("name", sorted(APPS))
def test_datalog_detector_matches_imperative(name):
    result = analyze_app(APPS[name], config=IMPERATIVE)
    imperative = {w.key for w in result.warnings}
    declarative = datalog_racy_pairs(result.program, result.pointsto)
    assert declarative == imperative


@pytest.mark.parametrize("name", sorted(APPS))
def test_default_engine_is_datalog_and_agrees(name):
    default = analyze_app(APPS[name])
    imperative = analyze_app(APPS[name], config=IMPERATIVE)
    assert {w.key for w in default.warnings} == {
        w.key for w in imperative.warnings
    }
    # occurrence-level agreement too
    def occ_set(result):
        return {
            (w.key, o.use.node_id, o.free.node_id)
            for w in result.warnings for o in w.occurrences
        }
    assert occ_set(default) == occ_set(imperative)


@pytest.mark.parametrize("name", sorted(APPS))
def test_datalog_detector_without_escape_is_superset(name):
    result = analyze_app(APPS[name], config=IMPERATIVE)
    with_escape = datalog_racy_pairs(result.program, result.pointsto, True)
    without_escape = datalog_racy_pairs(result.program, result.pointsto, False)
    assert with_escape <= without_escape
