"""Datalog engine unit tests: joins, recursion, negation, stratification."""

import pytest

from repro.datalog import (
    evaluate,
    Literal,
    parse,
    Program,
    query,
    StratificationError,
    Var,
    vars_,
)


def test_facts_only():
    program = Program().fact("edge", 1, 2).fact("edge", 2, 3)
    assert query(program, "edge") == {(1, 2), (2, 3)}


def test_simple_join():
    X, Y, Z = vars_("X Y Z")
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3).fact("edge", 3, 4)
        .rule(Literal("two", (X, Z)),
              Literal("edge", (X, Y)), Literal("edge", (Y, Z)))
    )
    assert query(program, "two") == {(1, 3), (2, 4)}


def test_transitive_closure():
    X, Y, Z = vars_("X Y Z")
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3).fact("edge", 3, 4)
        .rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
        .rule(Literal("path", (X, Z)),
              Literal("path", (X, Y)), Literal("edge", (Y, Z)))
    )
    assert query(program, "path") == {
        (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
    }


def test_cyclic_graph_terminates():
    X, Y, Z = vars_("X Y Z")
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 1)
        .rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
        .rule(Literal("path", (X, Z)),
              Literal("path", (X, Y)), Literal("edge", (Y, Z)))
    )
    assert query(program, "path") == {(1, 2), (2, 1), (1, 1), (2, 2)}


def test_constants_in_rule_body():
    X = Var("X")
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3)
        .rule(Literal("from_one", (X,)), Literal("edge", (1, X)))
    )
    assert query(program, "from_one") == {(2,)}


def test_builtin_neq():
    X, Y = vars_("X Y")
    program = (
        Program()
        .fact("n", 1).fact("n", 2)
        .rule(Literal("pair", (X, Y)),
              Literal("n", (X,)), Literal("n", (Y,)), Literal("!=", (X, Y)))
    )
    assert query(program, "pair") == {(1, 2), (2, 1)}


def test_builtin_lt():
    X, Y = vars_("X Y")
    program = (
        Program()
        .fact("n", 1).fact("n", 2).fact("n", 3)
        .rule(Literal("less", (X, Y)),
              Literal("n", (X,)), Literal("n", (Y,)), Literal("<", (X, Y)))
    )
    assert (1, 2) in query(program, "less")
    assert (2, 1) not in query(program, "less")


def test_negation_on_edb():
    X = Var("X")
    program = (
        Program()
        .fact("n", 1).fact("n", 2).fact("bad", 2)
        .rule(Literal("good", (X,)),
              Literal("n", (X,)), Literal("bad", (X,), negated=True))
    )
    assert query(program, "good") == {(1,)}


def test_negation_across_strata():
    X, Y = vars_("X Y")
    program = (
        Program()
        .fact("edge", 1, 2).fact("edge", 2, 3)
        .rule(Literal("reach", (X,)), Literal("edge", (1, X)))
        .rule(Literal("reach", (Y,)),
              Literal("reach", (X,)), Literal("edge", (X, Y)))
        .rule(Literal("unreach", (X,)),
              Literal("edge", (X, Y)),
              Literal("reach", (X,), negated=True))
    )
    assert query(program, "unreach") == {(1,)}


def test_negation_in_cycle_rejected():
    X = Var("X")
    program = (
        Program()
        .fact("n", 1)
        .rule(Literal("p", (X,)),
              Literal("n", (X,)), Literal("q", (X,), negated=True))
        .rule(Literal("q", (X,)),
              Literal("n", (X,)), Literal("p", (X,), negated=True))
    )
    with pytest.raises(StratificationError):
        evaluate(program)


def test_unbound_head_variable_rejected():
    X, Y = vars_("X Y")
    with pytest.raises(ValueError):
        Program().rule(Literal("p", (X, Y)), Literal("n", (X,)))


def test_unbound_negated_variable_rejected():
    X, Y = vars_("X Y")
    with pytest.raises(ValueError):
        Program().rule(
            Literal("p", (X,)),
            Literal("n", (X,)),
            Literal("m", (Y,), negated=True),
        )


def test_semi_naive_matches_naive_on_random_graph():
    import random

    rng = random.Random(42)
    edges = {(rng.randrange(12), rng.randrange(12)) for _ in range(30)}
    X, Y, Z = vars_("X Y Z")
    program = Program().add_facts("edge", edges)
    program.rule(Literal("path", (X, Y)), Literal("edge", (X, Y)))
    program.rule(
        Literal("path", (X, Z)),
        Literal("path", (X, Y)), Literal("edge", (Y, Z)),
    )
    got = query(program, "path")
    # reference: naive fixpoint
    expected = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(expected):
            for (c, d) in edges:
                if b == c and (a, d) not in expected:
                    expected.add((a, d))
                    changed = True
    assert got == expected


# -- textual syntax ------------------------------------------------------------


def test_parse_and_run_program():
    program = parse(
        """
        % a small family tree
        parent(alice, bob).
        parent(bob, carol).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        """
    )
    assert query(program, "ancestor") == {
        ("alice", "bob"), ("bob", "carol"), ("alice", "carol"),
    }


def test_parse_builtin_and_negation():
    program = parse(
        """
        n(1). n(2). n(3).
        big(X) :- n(X), 1 < X.
        small(X) :- n(X), !big(X).
        """
    )
    assert query(program, "small") == {(1,)}


def test_parse_strings_and_uppercase_vars():
    program = parse('name("widget", X) :- id(X).\nid(7).')
    assert query(program, "name") == {("widget", 7)}


def test_parse_error_on_variable_fact():
    with pytest.raises(Exception):
        parse("p(X).")
