"""Direct unit tests for :class:`FilterPipeline` combinators.

``overlap`` and ``count_pruned_group`` back the Figure 5 overlap
discussion; here they run against hand-built warnings and stub filters so
every branch (multi-occurrence warnings, the require_sound_survivor
restriction, partially-pruned warnings) is pinned without a full
analysis.  The legacy ``prunes``-only Filter subclass path is covered
too, since user extensions (examples/custom_filter.py) rely on it.
"""

import pytest

from repro.filters.base import Filter
from repro.filters.pipeline import FilterPipeline
from repro.ir.instructions import FieldRef
from repro.race.events import AccessEvent
from repro.race.warnings import Occurrence, UafWarning, Witness


def event(node_id, kind):
    return AccessEvent(
        node_id=node_id, method_qname="A.m", uid=node_id,
        fieldref=FieldRef("A", "f"), kind=kind,
        is_static=False, base_local="this", line=1,
    )


def warning(*use_nodes):
    """One warning with one occurrence per given use-node id."""
    w = UafWarning(
        fieldref=FieldRef("A", "f"), use_uid=1, free_uid=2,
        use_method="A.use", free_method="A.free",
    )
    for node in use_nodes:
        w.occurrences.append(
            Occurrence(use=event(node, "USE"), free=event(99, "FREE"),
                       pair_type="EC-EC")
        )
    return w


class NodeFilter(Filter):
    """Prunes occurrences whose use node id is in a fixed set."""

    def __init__(self, name, nodes):
        self.name = name
        self._nodes = frozenset(nodes)

    def witness(self, occ, warning, ctx):
        if occ.use.node_id in self._nodes:
            return Witness(kind="test", detail=f"{self.name} hit")
        return None


@pytest.fixture()
def pipeline():
    fa = NodeFilter("FA", {1, 2})
    fb = NodeFilter("FB", {2, 3})
    return FilterPipeline(ctx=None, sound_filters=[fa],
                          unsound_filters=[fb])


# -- overlap -----------------------------------------------------------------


def test_overlap_counts_warnings_pruned_by_both(pipeline):
    # node 2 is in both filters' kill sets
    warnings = [warning(2), warning(2, 2)]
    assert pipeline.overlap(warnings, "FA", "FB") == 2


def test_overlap_excludes_warnings_only_one_filter_kills(pipeline):
    warnings = [warning(1), warning(3)]    # FA-only, FB-only
    assert pipeline.overlap(warnings, "FA", "FB") == 0


def test_overlap_requires_every_occurrence(pipeline):
    # FA kills occurrence(2) but not occurrence(3): partial is no overlap
    assert pipeline.overlap([warning(2, 3)], "FA", "FB") == 0


def test_overlap_ignores_occurrence_free_warnings(pipeline):
    assert pipeline.overlap([warning()], "FA", "FB") == 0


def test_overlap_unknown_filter_name_raises(pipeline):
    with pytest.raises(KeyError):
        pipeline.overlap([warning(2)], "FA", "NOPE")


# -- count_pruned_group ------------------------------------------------------


def test_group_kills_warning_no_single_filter_can(pipeline):
    # FA kills occ(1), FB kills occ(3); only the group covers both
    w = warning(1, 3)
    fa, fb = pipeline.sound_filters[0], pipeline.unsound_filters[0]
    assert pipeline.count_pruned_group([w], [fa]) == 0
    assert pipeline.count_pruned_group([w], [fb]) == 0
    assert pipeline.count_pruned_group([w], [fa, fb]) == 1
    assert pipeline.overlap([w], "FA", "FB") == 0


def test_group_leaves_uncovered_occurrences(pipeline):
    # node 4 is in neither kill set
    fa, fb = pipeline.sound_filters[0], pipeline.unsound_filters[0]
    assert pipeline.count_pruned_group([warning(1, 4)], [fa, fb]) == 0


def test_group_require_sound_survivor_skips_pruned(pipeline):
    # occ(1) already fell to a sound filter; only occ(3) is relevant
    w = warning(1, 3)
    w.occurrences[0].pruned_by = "MHB"
    fb = pipeline.unsound_filters[0]
    assert pipeline.count_pruned_group(
        [w], [fb], require_sound_survivor=True
    ) == 1
    # with every occurrence sound-pruned there is nothing left to count
    w.occurrences[1].pruned_by = "MHB"
    assert pipeline.count_pruned_group(
        [w], [fb], require_sound_survivor=True
    ) == 0


# -- legacy prunes-only filters ----------------------------------------------


class LegacyFilter(Filter):
    """Old-style extension: implements only the boolean ``prunes``."""

    name = "LEGACY"

    def prunes(self, occ, warning, ctx):
        return occ.use.node_id == 7


def test_legacy_prunes_only_filter_gets_generic_witness():
    f = LegacyFilter()
    w = warning(7)
    witness = f.witness(w.occurrences[0], w, ctx=None)
    assert witness is not None
    assert witness.kind == "filter"
    assert "LEGACY" in witness.detail
    assert f.witness(warning(8).occurrences[0], w, ctx=None) is None


def test_legacy_filter_works_through_the_pipeline():
    pipe = FilterPipeline(ctx=None, sound_filters=[LegacyFilter()],
                          unsound_filters=[])
    w = warning(7)
    report = pipe.apply([w], with_individual_stats=False)
    assert report.after_sound == 0
    assert w.occurrences[0].pruned_by == "LEGACY"
    assert w.occurrences[0].witness.kind == "filter"


def test_neither_witness_nor_prunes_raises():
    class Empty(Filter):
        name = "EMPTY"

    w = warning(1)
    with pytest.raises(NotImplementedError):
        Empty().witness(w.occurrences[0], w, ctx=None)
