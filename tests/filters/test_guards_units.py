"""Unit tests for the guard/allocation/UR support analyses."""

import pytest

from repro.filters.guards import (
    AllocAnalysis,
    deref_consumer_uids,
    GuardAnalysis,
    use_is_benign,
    use_is_pure_check,
)
from repro.ir import GetField, Invoke
from repro.lowering import compile_app


def method_of(source, class_name="A", method_name="m"):
    module = compile_app(source)
    return module, module.lookup_method(class_name, method_name)


def field_uses(method, field_name):
    return [
        i for i in method.instructions()
        if isinstance(i, GetField) and i.fieldref.field_name == field_name
    ]


GUARDED = """
class F { void use() { } }
class A {
  F f;
  void m() {
    if (f != null) {
      f.use();
    }
  }
}
"""


def test_guarded_at_inside_branch_only():
    module, method = method_of(GUARDED)
    guards = GuardAnalysis(module, method)
    check_read, guarded_read = field_uses(method, "f")
    assert guards.guarded_at(guarded_read.uid, "this", "A", "f")
    assert not guards.guarded_at(check_read.uid, "this", "A", "f")


def test_pure_check_read_detected():
    module, method = method_of(GUARDED)
    check_read, guarded_read = field_uses(method, "f")
    assert use_is_pure_check(module, method, check_read.uid)
    assert not use_is_pure_check(module, method, guarded_read.uid)


def test_inverted_guard_protects_else_branch():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m() {
            if (f == null) {
              Log.d("a", "missing");
            } else {
              f.use();
            }
          }
        }
        """
    )
    guards = GuardAnalysis(module, method)
    uses = field_uses(method, "f")
    deref = uses[-1]
    assert guards.guarded_at(deref.uid, "this", "A", "f")


def test_guard_killed_by_intervening_free():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m() {
            if (f != null) {
              f = null;
              f.use();
            }
          }
        }
        """
    )
    guards = GuardAnalysis(module, method)
    deref = field_uses(method, "f")[-1]
    assert not guards.guarded_at(deref.uid, "this", "A", "f")


def test_local_copy_guard_via_use_protected():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m() {
            F copy = f;
            if (copy != null) {
              copy.use();
            }
          }
        }
        """
    )
    guards = GuardAnalysis(module, method)
    read = field_uses(method, "f")[0]
    assert not guards.guarded_at(read.uid, "this", "A", "f")
    assert guards.use_protected(read.uid, "this", "A", "f")


def test_guard_does_not_survive_merge_with_unguarded_path():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m(boolean flip) {
            if (flip) {
              if (f == null) {
                return;
              }
            }
            f.use();
          }
        }
        """
    )
    guards = GuardAnalysis(module, method)
    deref = field_uses(method, "f")[-1]
    assert not guards.guarded_at(deref.uid, "this", "A", "f")


def test_alloc_analysis_new_vs_call_sources():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          F g;
          F make() { return new F(); }
          void m() {
            f = new F();
            f.use();
            g = make();
            g.use();
          }
        }
        """
    )
    allocs = AllocAnalysis(module, method)
    f_use = field_uses(method, "f")[-1]
    g_use = field_uses(method, "g")[-1]
    assert allocs.allocated_at(f_use.uid, "this", "A", "f")
    assert not allocs.allocated_at(g_use.uid, "this", "A", "g")
    assert allocs.allocated_at(g_use.uid, "this", "A", "g", allow_calls=True)


def test_alloc_fact_killed_by_null_store():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m() {
            f = new F();
            f = null;
            f.use();
          }
        }
        """
    )
    allocs = AllocAnalysis(module, method)
    use = field_uses(method, "f")[-1]
    assert not allocs.allocated_at(use.uid, "this", "A", "f")


def test_deref_consumers_follow_copies():
    module, method = method_of(
        """
        class F { void use() { } }
        class A {
          F f;
          void m() {
            F a = f;
            F b = a;
            b.use();
          }
        }
        """
    )
    read = field_uses(method, "f")[0]
    derefs = deref_consumer_uids(method, read.uid)
    assert len(derefs) == 1
    assert isinstance(module.instruction_at(derefs[0]), Invoke)


def test_use_is_benign_for_return_and_args_only():
    module = compile_app(
        """
        class F { }
        class Host { void take(F x) { } }
        class A {
          F f;
          Host host;
          F getF() { return f; }
          void pass() { host.take(f); }
          void deref() { f.hashCode(); }
        }
        """
    )
    def only_use(name):
        method = module.lookup_method("A", name)
        return method, field_uses(method, "f")[0]

    m, u = only_use("getF")
    assert use_is_benign(module, m, u.uid)
    m, u = only_use("pass")
    assert use_is_benign(module, m, u.uid)
    m, u = only_use("deref")
    assert not use_is_benign(module, m, u.uid)
