"""Figure 4: one micro-app per filter pattern (a)-(g).

Each test checks three things: the potential UAF *is* detected, the
expected filter prunes it, and the final report is clean (or not, for the
negative controls).
"""

import pytest

from repro.core import analyze_app


def warnings_on(result, field_name, collection=None):
    pool = result.warnings if collection is None else collection
    return [w for w in pool if w.fieldref.field_name == field_name]


def pruners_of(warning):
    names = set()
    for occ in warning.occurrences:
        if occ.pruned_by:
            names.add(occ.pruned_by)
        if occ.downgraded_by:
            names.add(occ.downgraded_by)
    return names


# -- (a) MHB-Service ---------------------------------------------------------

FIG4A = """
class F { void use() { } }
class A extends Activity {
  F f;
  void onStart() {
    bindService(new Intent("svc"), new ServiceConnection() {
      public void onServiceConnected(ComponentName name, IBinder service) {
        f = new F();
        f.use();
      }
      public void onServiceDisconnected(ComponentName name) {
        f = null;
      }
    }, 0);
  }
}
"""


def test_fig4a_mhb_service_prunes_connected_vs_disconnected():
    result = analyze_app(FIG4A)
    potential = warnings_on(result, "f")
    assert potential, "use/free pair must be detected before filtering"
    assert not warnings_on(result, "f", result.remaining())
    # the connected-vs-disconnected pair is specifically pruned by MHB
    # (the use also happens to be IA-protected by the fresh allocation).
    assert any(
        "MHB" in pruners_of(w) or "IA" in pruners_of(w) for w in potential
    )
    mhb_pruned = [w for w in potential if "MHB" in pruners_of(w)]
    assert mhb_pruned, "MHB must fire on the service-connection contract"


# -- (b) If-Guard -----------------------------------------------------------------

FIG4B = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (f != null) {
          f.use();
        }
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_fig4b_if_guard_prunes_same_looper_pair():
    result = analyze_app(FIG4B)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    guarded = [w for w in potential if "IG" in pruners_of(w)]
    assert guarded, "the guarded use must be pruned by IG"


def test_fig4b_without_guard_survives():
    source = FIG4B.replace(
        """        if (f != null) {
          f.use();
        }""",
        "        f.use();",
    )
    result = analyze_app(source)
    assert warnings_on(result, "f", result.remaining()), \
        "without the guard the same pair must survive"


# -- (c) Intra-Allocation ----------------------------------------------------------

FIG4C = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = new F();
        f.use();
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_fig4c_intra_allocation_prunes():
    result = analyze_app(FIG4C)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    assert any("IA" in pruners_of(w) for w in potential)


# -- (d) Resume-Happens-Before ------------------------------------------------------

FIG4D = """
class F { void use() { } }
class A extends Activity {
  F f;
  View button;
  void onCreate(Bundle b) {
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f.use();
      }
    });
  }
  void onResume() {
    f = new F();
  }
  void onPause() {
    f = null;
  }
}
"""


def test_fig4d_rhb_prunes_when_onresume_reallocates():
    result = analyze_app(FIG4D)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    assert any("RHB" in pruners_of(w) for w in potential)


def test_fig4d_without_reallocation_survives():
    source = FIG4D.replace("  void onResume() {\n    f = new F();\n  }\n", "")
    result = analyze_app(source)
    assert warnings_on(result, "f", result.remaining()), \
        "the paper's back-button UAF: no onResume allocation, no pruning"


def test_fig4d_mhb_does_not_apply_to_resume_pause():
    # soundness check on the lifecycle automaton: no MHB between the UI
    # callback and onPause (the back edge makes them circular).
    result = analyze_app(FIG4D)
    for warning in warnings_on(result, "f"):
        assert "MHB" not in pruners_of(warning)


# -- (e) Cancel-Happens-Before -------------------------------------------------------

FIG4E = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        finish();
        f = null;
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f.use();
      }
    });
  }
}
"""


def test_fig4e_chb_prunes_free_after_finish():
    result = analyze_app(FIG4E)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    assert any("CHB" in pruners_of(w) for w in potential)


def test_fig4e_without_finish_survives():
    source = FIG4E.replace("        finish();\n", "")
    result = analyze_app(source)
    assert warnings_on(result, "f", result.remaining())


# -- (f) Post-Happens-Before -----------------------------------------------------------

FIG4F = """
class F { void use() { } }
class A extends Activity {
  F f;
  MyHandler handler;
  View button;
  void onCreate(Bundle b) {
    handler = new MyHandler();
    handler.app = this;
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        handler.sendEmptyMessage(1);
        f.use();
      }
    });
  }
}
class MyHandler extends Handler {
  A app;
  public void handleMessage(Message msg) {
    app.f = null;
  }
}
"""


def test_fig4f_phb_prunes_poster_vs_postee():
    result = analyze_app(FIG4F)
    potential = warnings_on(result, "f")
    assert potential, "poster/postee pair must first be detected"
    assert not warnings_on(result, "f", result.remaining())
    assert any("PHB" in pruners_of(w) for w in potential)


# -- (g) Used-for-Return ---------------------------------------------------------------

FIG4G = """
class F { void use() { } }
class A extends Activity {
  F f;
  View b1;
  View b2;
  F getF() { return f; }
  void onCreate(Bundle b) {
    b1.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        if (getF() != null) {
          Log.d("a", "present");
        }
      }
    });
    b2.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        f = null;
      }
    });
  }
}
"""


def test_fig4g_ur_prunes_getter_return_use():
    result = analyze_app(FIG4G)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    assert any("UR" in pruners_of(w) for w in potential)


# -- TT (6.2.4) --------------------------------------------------------------------------

TT_APP = """
class F { void use() { } }
class Shared { static F f; }
class A extends Activity {
  void onCreate(Bundle b) {
    Shared.f = new F();
    new Thread(new W1()).start();
    new Thread(new W2()).start();
  }
}
class W1 implements Runnable {
  public void run() { Shared.f.use(); }
}
class W2 implements Runnable {
  public void run() { Shared.f = null; }
}
"""


def test_tt_filter_downgrades_native_native_pairs():
    result = analyze_app(TT_APP)
    potential = warnings_on(result, "f")
    assert potential
    assert not warnings_on(result, "f", result.remaining())
    assert any("TT" in pruners_of(w) for w in potential)
