"""Android model unit tests: lifecycle automaton, API table, manifests,
framework stubs."""

import pytest

from repro.android import (
    ACTIVITY_MHB,
    activity_mhb,
    ApiKind,
    ASYNCTASK_MHB,
    build_framework_classes,
    component_kind_of,
    FRAMEWORK_SPEC,
    infer_manifest,
    lookup_api,
    Manifest,
    ComponentDecl,
    SERVICE_MHB,
    sound_mhb_pairs,
    SYSTEM_CALLBACKS,
    UI_CALLBACKS,
)
from repro.lowering import compile_app

UI_SYS = UI_CALLBACKS | SYSTEM_CALLBACKS


# -- lifecycle automaton --------------------------------------------------------

def test_oncreate_precedes_everything():
    for later in ("onStart", "onResume", "onPause", "onStop", "onDestroy"):
        assert ("onCreate", later) in ACTIVITY_MHB


def test_everything_precedes_ondestroy():
    for earlier in ("onCreate", "onStart", "onResume", "onPause", "onStop"):
        assert (earlier, "onDestroy") in ACTIVITY_MHB


def test_no_mhb_among_resumable_states():
    """The back edges (section 6.1.1): no sound order between onResume,
    onPause, onStart, onStop, onRestart in either direction."""
    resumable = ("onStart", "onResume", "onPause", "onStop", "onRestart")
    for a in resumable:
        for b in resumable:
            if a != b:
                assert (a, b) not in ACTIVITY_MHB, (a, b)


def test_mhb_is_irreflexive_and_antisymmetric():
    for (a, b) in ACTIVITY_MHB:
        assert a != b
        assert (b, a) not in ACTIVITY_MHB


def test_ui_callbacks_bracketed_by_create_and_destroy():
    assert activity_mhb("onCreate", "onClick", frozenset(UI_SYS))
    assert activity_mhb("onClick", "onDestroy", frozenset(UI_SYS))
    assert not activity_mhb("onClick", "onPause", frozenset(UI_SYS))


def test_service_mhb_bind_before_destroy():
    assert ("onCreate", "onDestroy") in SERVICE_MHB
    assert ("onBind", "onDestroy") in SERVICE_MHB
    assert ("onDestroy", "onBind") not in SERVICE_MHB


def test_asynctask_mhb_contract():
    assert ("onPreExecute", "doInBackground") in ASYNCTASK_MHB
    assert ("doInBackground", "onPostExecute") in ASYNCTASK_MHB
    # doInBackground and onProgressUpdate are concurrent, not ordered
    assert ("doInBackground", "onProgressUpdate") not in ASYNCTASK_MHB


def test_sound_mhb_pairs_respects_cycles():
    transitions = {
        "<launch>": ("a",),
        "a": ("b",),
        "b": ("a", "c"),
        "c": (),
    }
    pairs = sound_mhb_pairs(transitions)
    assert ("a", "c") in pairs and ("b", "c") in pairs
    assert ("a", "b") not in pairs  # a<->b cycle kills the order


# -- API table ----------------------------------------------------------------------

def test_lookup_api_walks_subclass_chain():
    module = compile_app(
        "class MyHandler extends Handler { }", seal=True
    )
    spec = lookup_api(module, "MyHandler", "post")
    assert spec is not None and spec.kind is ApiKind.POST_RUNNABLE
    assert lookup_api(module, "MyHandler", "sendMessage").kind \
        is ApiKind.SEND_MESSAGE


def test_lookup_api_unknown_method_is_none():
    module = compile_app("class A { void post() { } }", seal=True)
    # A does not subclass Handler/View: its own `post` is not an API
    assert lookup_api(module, "A", "post") is None


def test_cancellation_apis_present():
    module = compile_app("class A extends Activity { }", seal=True)
    assert lookup_api(module, "A", "finish").kind is ApiKind.CANCEL_FINISH
    assert lookup_api(module, "A", "unbindService").kind \
        is ApiKind.CANCEL_UNBIND


# -- framework stubs ------------------------------------------------------------------

def test_framework_classes_materialize_spec():
    classes = {c.name: c for c in build_framework_classes()}
    assert set(classes) == set(FRAMEWORK_SPEC)
    assert classes["Runnable"].is_interface
    assert not classes["Handler"].is_interface
    # reference-returning stubs allocate (environment objects)
    find_view = classes["Activity"].methods["findViewById"]
    from repro.ir import New

    assert any(isinstance(i, New) for i in find_view.instructions())


def test_interface_methods_have_no_bodies():
    classes = {c.name: c for c in build_framework_classes()}
    run = classes["Runnable"].methods["run"]
    assert not run.cfg.blocks


# -- manifests -------------------------------------------------------------------------

def test_infer_manifest_classifies_components():
    module = compile_app(
        """
        class Main extends Activity { }
        class Sync extends Service { }
        class Boot extends BroadcastReceiver {
          public void onReceive(Context c, Intent i) { }
        }
        class Helper { }
        """,
        seal=True,
    )
    manifest = infer_manifest(module)
    kinds = {name: decl.kind for name, decl in manifest.components.items()}
    assert kinds == {"Main": "activity", "Sync": "service", "Boot": "receiver"}
    assert manifest.components["Main"].main


def test_component_kind_through_app_superclass():
    module = compile_app(
        """
        class BaseActivity extends Activity { }
        class Child extends BaseActivity { }
        """,
        seal=True,
    )
    assert component_kind_of(module, "Child") == "activity"


def test_manifest_reachability_default_true():
    manifest = Manifest()
    manifest.add(ComponentDecl("X", "activity", reachable=False))
    assert not manifest.is_reachable("X")
    assert manifest.is_reachable("UnknownClass")


def test_component_decl_rejects_unknown_kind():
    with pytest.raises(ValueError):
        ComponentDecl("X", "widget")
