"""The widened Android surface: fragment transactions, ordered broadcasts
and foreground-service callbacks, as MHB sources and threadification rules."""

from repro.android import (
    ApiKind,
    FRAGMENT_LIFECYCLE,
    FRAGMENT_MHB,
    FRAGMENT_TRANSITIONS,
    ORDERED_BROADCAST_MHB,
    SERVICE_MHB,
    sound_mhb_pairs,
)
from repro.core import analyze_module
from repro.lowering import lower_sources


# -- fragment lifecycle automaton ---------------------------------------------


def test_fragment_mhb_orders_attach_before_everything():
    for later in ("onCreate", "onStart", "onResume", "onPause", "onStop",
                  "onDestroy", "onDetach"):
        assert ("onAttach", later) in FRAGMENT_MHB


def test_fragment_mhb_orders_everything_before_detach():
    for earlier in ("onAttach", "onCreate", "onStart", "onResume",
                    "onPause", "onStop", "onDestroy"):
        assert (earlier, "onDetach") in FRAGMENT_MHB


def test_fragment_mhb_has_no_order_among_resumable_states():
    # onPause can loop back to onResume (and onStop back to onStart),
    # so none of the active states are mutually ordered.
    for a, b in (("onResume", "onPause"), ("onStart", "onStop"),
                 ("onResume", "onStop")):
        assert (a, b) not in FRAGMENT_MHB
        assert (b, a) not in FRAGMENT_MHB


def test_fragment_mhb_derives_from_its_automaton():
    assert FRAGMENT_MHB == frozenset(sound_mhb_pairs(FRAGMENT_TRANSITIONS))


def test_fragment_lifecycle_covers_the_automaton_states():
    states = set(FRAGMENT_TRANSITIONS) - {"<launch>"}
    for targets in FRAGMENT_TRANSITIONS.values():
        states.update(targets)
    assert states == set(FRAGMENT_LIFECYCLE)


# -- widened service automaton ------------------------------------------------


def test_service_mhb_keeps_its_original_edges():
    # the foreground sinks only *add* pairs; the classic ones must stay
    assert ("onCreate", "onDestroy") in SERVICE_MHB
    assert ("onCreate", "onStartCommand") in SERVICE_MHB


def test_foreground_sinks_are_ordered_before_destroy():
    assert ("onTaskRemoved", "onDestroy") in SERVICE_MHB
    assert ("onTimeout", "onDestroy") in SERVICE_MHB


def test_foreground_sinks_are_mutually_unordered():
    assert ("onTaskRemoved", "onTimeout") not in SERVICE_MHB
    assert ("onTimeout", "onTaskRemoved") not in SERVICE_MHB


# -- ordered broadcasts -------------------------------------------------------


def test_ordered_broadcast_mhb_is_receiver_before_result():
    assert ORDERED_BROADCAST_MHB == frozenset({("onReceive", "onReceive")})


def test_api_table_has_the_new_posting_sites():
    from repro.android import API_TABLE

    assert API_TABLE[("Context", "sendOrderedBroadcast")].kind \
        is ApiKind.SEND_ORDERED_BROADCAST
    for method in ("add", "replace"):
        spec = API_TABLE[("FragmentTransaction", method)]
        assert spec.kind is ApiKind.REGISTER_FRAGMENT
        assert set(spec.callbacks) == set(FRAGMENT_LIFECYCLE)


# -- end-to-end: the new MHB filter branches ----------------------------------


_FRAGMENT_BENIGN = """
class Data {
  void refresh() { }
}

class WorkFragment extends Fragment {
  Data fd;

  void onAttach(Activity activity) {
    super.onAttach(activity);
    fd = new Data();
  }

  void onStart() {
    super.onStart();
    fd.refresh();
  }

  void onDestroy() {
    super.onDestroy();
    fd = null;
  }
}

class Main extends Activity {
  void onCreate(Bundle savedInstanceState) {
    super.onCreate(savedInstanceState);
    setContentView(1);
    WorkFragment frag = new WorkFragment();
    FragmentManager fm = getFragmentManager();
    FragmentTransaction ft = fm.beginTransaction();
    ft.add(1, frag);
    ft.commit();
  }
}
"""

_ORDERED_BENIGN = """
class Data {
  void refresh() { }
}

class FirstReceiver extends BroadcastReceiver {
  Main owner;

  public void onReceive(Context context, Intent intent) {
    owner.fd.refresh();
  }
}

class ResultReceiver extends BroadcastReceiver {
  Main owner;

  public void onReceive(Context context, Intent intent) {
    owner.fd = null;
  }
}

class Main extends Activity {
  Data fd;
  FirstReceiver first;

  void onCreate(Bundle savedInstanceState) {
    super.onCreate(savedInstanceState);
    setContentView(1);
    fd = new Data();
    first = new FirstReceiver();
    first.owner = this;
    registerReceiver(first, new IntentFilter("app.PING"));
    ResultReceiver last = new ResultReceiver();
    last.owner = this;
    sendOrderedBroadcast(new Intent("app.PING"), last);
  }
}
"""


def _analyze(source):
    module = lower_sources(source, module_name="widened", seal=False)
    return analyze_module(module)


def _pruning_edges(result, field_name):
    edges = set()
    for warning in result.warnings:
        if warning.fieldref.field_name != field_name:
            continue
        for occ in warning.occurrences:
            if occ.pruned_by == "MHB" and occ.witness is not None:
                edges.add(occ.witness.data.get("edge"))
    return edges


def test_fragment_transaction_prunes_via_mhb_fragment():
    result = _analyze(_FRAGMENT_BENIGN)
    assert not result.remaining()
    assert "MHB-Fragment" in _pruning_edges(result, "fd")


def test_ordered_broadcast_prunes_via_mhb_ordered_broadcast():
    result = _analyze(_ORDERED_BENIGN)
    assert not result.remaining()
    assert "MHB-OrderedBroadcast" in _pruning_edges(result, "fd")


def test_fragment_lifecycle_nodes_are_modeled_only_when_committed():
    # Without a FragmentTransaction commit, a Fragment subclass stays
    # invisible (the paper's preserved false negative); with one, its
    # lifecycle callbacks become posted-callback nodes.
    committed = _analyze(_FRAGMENT_BENIGN)
    frag_nodes = [
        node for node in committed.program.forest
        if node.receiver_class == "WorkFragment"
    ]
    # only the callbacks the fragment actually implements become nodes
    assert {n.method_name for n in frag_nodes} == \
        {"onAttach", "onStart", "onDestroy"}
    assert all(n.group_key == "frag:WorkFragment" for n in frag_nodes)
