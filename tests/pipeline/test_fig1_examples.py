"""End-to-end tests on the paper's Figure 1 harmful UAF examples.

These three patterns are the paper's motivating bugs; the pipeline must
detect each and keep it through all filters, with the right origin
category: (a) EC-PC, (b) PC-PC, (c) C-NT.
"""

import pytest

from repro.core import analyze_app

# Figure 1(a): ConnectBot, single-threaded UAF between onServiceDisconnected
# (free) and onCreateContextMenu (use) -- no guard at all.
FIG1A = """
class TerminalManager { void createPortForward() { } }

class ConsoleActivity extends Activity {
  TerminalManager bound;

  void onStart() {
    super.onStart();
    bindService(new Intent("terminal"), new ServiceConnection() {
      public void onServiceConnected(ComponentName name, IBinder service) {
        bound = new TerminalManager();
      }
      public void onServiceDisconnected(ComponentName name) {
        bound = null;
      }
    }, 0);
  }

  void onCreateContextMenu(ContextMenu menu, View v, ContextMenuInfo menuInfo) {
    bound.createPortForward();
  }
}
"""

# Figure 1(b): ConnectBot, onClick null-checks hostBridge but defers the use
# to a posted Runnable; onServiceDisconnected may run in between.
FIG1B = """
class HostBridge { void dispatch() { } }

class TerminalView extends Activity {
  HostBridge hostBridge;
  Handler handler;

  void onCreate(Bundle b) {
    super.onCreate(b);
    handler = new Handler();
    bindService(new Intent("bridge"), new ServiceConnection() {
      public void onServiceConnected(ComponentName name, IBinder service) {
        hostBridge = new HostBridge();
      }
      public void onServiceDisconnected(ComponentName name) {
        hostBridge = null;
      }
    }, 0);
  }

  void onClick(View v) {
    if (hostBridge != null) {
      handler.post(new Runnable() {
        public void run() {
          hostBridge.dispatch();
        }
      });
    }
  }
}
"""

# Figure 1(c): FireFox, multi-threaded UAF: a background task frees jClient
# while onPause's if-guard lacks atomicity (no common lock).
FIG1C = """
class JavaClient { void abort() { } }

class GeckoApp extends Activity {
  JavaClient jClient;
  ExecutorService pool;

  void onResume() {
    super.onResume();
    jClient = new JavaClient();
    pool.execute(new Runnable() {
      public void run() {
        jClient = null;
      }
    });
  }

  void onPause() {
    super.onPause();
    if (jClient != null) {
      jClient.abort();
    }
  }
}
"""


def remaining_on_field(result, field_name):
    return [
        w for w in result.remaining() if w.fieldref.field_name == field_name
    ]


def test_fig1a_single_threaded_uaf_detected_and_survives():
    result = analyze_app(FIG1A)
    survivors = remaining_on_field(result, "bound")
    assert survivors, "Figure 1(a) UAF must survive all filters"
    assert any(w.pair_type() == "EC-PC" for w in survivors)
    assert any("onCreateContextMenu" in w.use_method for w in survivors)
    assert any("onServiceDisconnected" in w.free_method for w in survivors)


def test_fig1a_connected_disconnected_pair_pruned_by_mhb():
    result = analyze_app(FIG1A)
    # A use in onServiceConnected... there is none here, but the allocation
    # itself produces no warning; check instead that the surviving pairs
    # never blame onServiceConnected (connected MHB disconnected).
    for warning in result.remaining():
        assert "onServiceConnected" not in warning.use_method


def test_fig1b_deferred_use_in_posted_runnable_survives():
    result = analyze_app(FIG1B)
    survivors = remaining_on_field(result, "hostBridge")
    assert survivors, "Figure 1(b) UAF must survive all filters"
    run_use = [w for w in survivors if w.use_method.endswith(".run")]
    assert run_use, "the use inside the posted Runnable must be flagged"
    assert any(w.pair_type() == "PC-PC" for w in run_use)


def test_fig1b_guarded_check_in_onclick_is_not_flagged():
    result = analyze_app(FIG1B)
    # The null-check read inside onClick itself must be pruned (UR: the
    # value only feeds a null comparison).
    for warning in result.remaining():
        assert not warning.use_method.endswith(".onClick")


def test_fig1c_cross_thread_guard_is_not_trusted():
    result = analyze_app(FIG1C)
    survivors = remaining_on_field(result, "jClient")
    assert survivors, "Figure 1(c) UAF must survive: the guard lacks atomicity"
    assert any(w.pair_type() == "C-NT" for w in survivors)


_LOCKED_TEMPLATE = """
class Shared {{ Worker worker = new Worker(); }}
class SharedHolder {{ static Shared shared = new Shared(); }}
class A extends Activity {{
  void onResume() {{
    Shared s = SharedHolder.shared;
    new Thread(new Freer()).start();
    {use_body}
  }}
}}
class Freer implements Runnable {{
  public void run() {{
    Shared s = SharedHolder.shared;
    {free_body}
  }}
}}
class Worker {{ void work() {{ }} }}
"""


def test_fig1c_guard_with_common_lock_is_pruned():
    source = _LOCKED_TEMPLATE.format(
        use_body="synchronized (s) { if (s.worker != null) { s.worker.work(); } }",
        free_body="synchronized (s) { s.worker = null; }",
    )
    result = analyze_app(source)
    # guard + common lock: the IG filter is sound across threads
    assert not [
        w for w in result.remaining() if w.fieldref.field_name == "worker"
    ]


def test_fig1c_guard_without_lock_on_free_side_survives():
    source = _LOCKED_TEMPLATE.format(
        use_body="synchronized (s) { if (s.worker != null) { s.worker.work(); } }",
        free_body="s.worker = null;",
    )
    result = analyze_app(source)
    assert [
        w for w in result.remaining() if w.fieldref.field_name == "worker"
    ], "a lock held on one side only must not restore the guard's atomicity"


def test_stage_timings_recorded():
    result = analyze_app(FIG1A)
    assert set(result.timings) >= {"modeling", "detection", "filtering", "total"}
    assert result.timings["total"] > 0
