"""Golden-snapshot regression test: pinned Table 1 counts for fast apps.

Five cheap corpus apps have their exact per-app Table 1 numbers pinned
here, so a detector or filter regression fails tier-1 immediately instead
of hiding behind the slow benchmark suite.  If a deliberate analyzer
change moves these numbers, re-derive them with::

    PYTHONPATH=src python -c "
    from repro.corpus import app
    from repro.harness.table1 import build_row
    for n in ('todolist','clipstack','photoaffix','dashclock','connectbot'):
        r = build_row(app(n), validate=False)
        print(n, r.counts, {k: v for k, v in r.pair_types.items() if v})"

and update GOLDEN (plus the validated connectbot block) in the same PR.
"""

import pytest

from repro.corpus import app
from repro.harness import render_table1, run_table1
from repro.harness.table1 import build_row

#: app -> (counts, non-zero pair types)
GOLDEN = {
    "todolist": (
        {"EC": 5, "PC": 0, "T": 1,
         "potential": 5, "after_sound": 0, "after_unsound": 0},
        {},
    ),
    "clipstack": (
        {"EC": 6, "PC": 0, "T": 1,
         "potential": 5, "after_sound": 0, "after_unsound": 0},
        {},
    ),
    "photoaffix": (
        {"EC": 11, "PC": 0, "T": 1,
         "potential": 10, "after_sound": 4, "after_unsound": 2},
        {"EC-EC": 2},
    ),
    "dashclock": (
        {"EC": 9, "PC": 0, "T": 1,
         "potential": 11, "after_sound": 5, "after_unsound": 0},
        {},
    ),
    "connectbot": (
        {"EC": 15, "PC": 5, "T": 1,
         "potential": 14, "after_sound": 7, "after_unsound": 7},
        {"EC-EC": 2, "EC-PC": 2, "PC-PC": 3},
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_per_app_counts_match_golden(name):
    counts, pair_types = GOLDEN[name]
    row = build_row(app(name), validate=False)
    assert row.counts == counts
    assert {k: v for k, v in row.pair_types.items() if v} == pair_types


def test_connectbot_validated_golden():
    """Dynamic confirmation is seeded and must stay deterministic."""
    row = build_row(app("connectbot"), validate=True)
    assert row.true_harmful == 6
    assert sorted(set(row.confirmed_fields)) == [
        "bound", "emulation", "hostBridge", "relay", "transport",
    ]
    assert row.fp_breakdown == {
        "path-insensitivity": 1, "points-to": 0,
        "not-reachable": 0, "missing-hb": 0,
    }


def test_rendered_subset_snapshot():
    """The rendered rows for the two cleanest apps, pinned verbatim."""
    rows = run_table1(
        validate=False, apps=[app("todolist"), app("swiftnotes")]
    )
    rendered = render_table1(rows).splitlines()
    assert rendered[2].split() == [
        "train", "todolist", "5", "0", "1", "5", "0", "0",
        "0", "0", "0", "0", "0", "0", "0", "0",
    ]
    assert rendered[3].split() == [
        "test", "swiftnotes", "4", "0", "1", "0", "0", "0",
        "0", "0", "0", "0", "0", "0", "0", "0",
    ]
