"""Unit tests for the IR module container: hierarchy, sealing, lookups."""

import pytest

from repro.ir import (
    ClassDef,
    Field,
    FieldRef,
    INT,
    IRBuilder,
    Method,
    Module,
    New,
    parse_type,
)


def build_hierarchy():
    module = Module("t")
    base = ClassDef("Base")
    base.add_field(Field("shared", parse_type("Payload")))
    module.add_class(base)
    mid = ClassDef("Mid", super_name="Base", interfaces=["Runnable2"])
    module.add_class(mid)
    leaf = ClassDef("Leaf", super_name="Mid")
    module.add_class(leaf)
    iface = ClassDef("Runnable2", is_interface=True)
    module.add_class(iface)
    return module


def test_superclasses_chain_order():
    module = build_hierarchy()
    assert module.superclasses("Leaf") == ["Mid", "Base"]
    assert module.superclasses("Base") == []


def test_supertypes_include_interfaces():
    module = build_hierarchy()
    assert module.supertypes("Leaf") == {"Mid", "Base", "Runnable2"}


def test_subclasses_transitive():
    module = build_hierarchy()
    assert module.subclasses("Base") == {"Mid", "Leaf"}
    assert module.subclasses("Runnable2") == {"Mid", "Leaf"}


def test_is_subtype_reflexive_and_transitive():
    module = build_hierarchy()
    assert module.is_subtype("Leaf", "Leaf")
    assert module.is_subtype("Leaf", "Base")
    assert not module.is_subtype("Base", "Leaf")


def test_resolve_field_finds_declaring_class():
    module = build_hierarchy()
    ref = module.resolve_field("Leaf", "shared")
    assert ref == FieldRef("Base", "shared")
    assert module.resolve_field("Leaf", "ghost") is None


def test_resolve_method_nearest_override():
    module = build_hierarchy()
    base_m = Method("Base", "work")
    IRBuilder(base_m).finish()
    module.classes["Base"].add_method(base_m)
    mid_m = Method("Mid", "work")
    IRBuilder(mid_m).finish()
    module.classes["Mid"].add_method(mid_m)
    resolved = module.resolve_method("Leaf", "work")
    assert resolved is mid_m
    assert module.resolve_method("Base", "work") is base_m


def test_supertype_cycle_terminates():
    module = Module("t")
    module.add_class(ClassDef("A", super_name="B"))
    module.add_class(ClassDef("B", super_name="A"))
    assert "B" in module.supertypes("A")
    assert module.superclasses("A") == ["B"]  # stops at the cycle


def test_seal_assigns_unique_uids_and_sites():
    module = Module("t")
    cls = ClassDef("A")
    module.add_class(cls)
    method = Method("A", "m", is_static=True)
    builder = IRBuilder(method)
    builder.new("A")
    builder.new("A")
    builder.finish()
    cls.add_method(method)
    module.seal()

    uids = [i.uid for i in module.instructions()]
    assert len(set(uids)) == len(uids)
    news = [i for i in module.instructions() if isinstance(i, New)]
    assert [n.site for n in news] == ["A.m#0", "A.m#1"]
    for instr in module.instructions():
        assert module.instruction_at(instr.uid) is instr
        assert module.method_of(instr.uid) is method


def test_sealed_module_rejects_new_classes():
    module = Module("t")
    module.add_class(ClassDef("A"))
    module.seal()
    with pytest.raises(RuntimeError):
        module.add_class(ClassDef("B"))


def test_duplicate_class_rejected():
    module = Module("t")
    module.add_class(ClassDef("A"))
    with pytest.raises(ValueError):
        module.add_class(ClassDef("A"))


def test_duplicate_field_and_method_rejected():
    cls = ClassDef("A")
    cls.add_field(Field("x", INT))
    with pytest.raises(ValueError):
        cls.add_field(Field("x", INT))
    method = Method("A", "m")
    cls.add_method(method)
    with pytest.raises(ValueError):
        cls.add_method(Method("A", "m"))


def test_caches_invalidate_on_add_class():
    module = Module("t")
    module.add_class(ClassDef("Base"))
    assert module.subclasses("Base") == set()
    module.add_class(ClassDef("Child", super_name="Base"))
    assert module.subclasses("Base") == {"Child"}
