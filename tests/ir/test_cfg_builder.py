"""CFG, builder, printer and verifier unit tests."""

import pytest

from repro.ir import (
    BasicBlock,
    ClassDef,
    Const,
    ControlFlowGraph,
    format_method,
    Goto,
    If,
    IRBuilder,
    Local,
    Method,
    Module,
    Return,
    verify_method,
    verify_module,
)


def diamond_cfg():
    cfg = ControlFlowGraph()
    entry = cfg.new_block("entry")
    entry.instructions.append(If(Local("c"), "left", "right"))
    left = cfg.new_block("left")
    left.instructions.append(Goto("join"))
    right = cfg.new_block("right")
    right.instructions.append(Goto("join"))
    join = cfg.new_block("join")
    join.instructions.append(Return(None))
    return cfg


def test_successors_and_predecessors():
    cfg = diamond_cfg()
    assert set(cfg.successors("entry")) == {"left", "right"}
    assert set(cfg.predecessors("join")) == {"left", "right"}
    assert cfg.predecessors("entry") == []


def test_reverse_postorder_entry_first_join_last():
    cfg = diamond_cfg()
    order = [b.label for b in cfg.reverse_postorder()]
    assert order[0] == "entry"
    assert order[-1] == "join"
    assert set(order) == {"entry", "left", "right", "join"}


def test_unreachable_block_not_in_rpo():
    cfg = diamond_cfg()
    dead = cfg.new_block("dead")
    dead.instructions.append(Return(None))
    assert "dead" not in {b.label for b in cfg.reverse_postorder()}
    assert "dead" not in cfg.reachable_labels()


def test_check_reports_missing_terminator_and_bad_jump():
    cfg = ControlFlowGraph()
    entry = cfg.new_block("entry")
    entry.instructions.append(Goto("nowhere"))
    block = cfg.new_block("b")  # no terminator
    problems = cfg.check()
    assert any("nowhere" in p for p in problems)
    assert any("lacks a terminator" in p for p in problems)


def test_duplicate_label_rejected():
    cfg = ControlFlowGraph()
    cfg.new_block("entry")
    with pytest.raises(ValueError):
        cfg.new_block("entry")


def test_builder_terminates_fallthrough_blocks():
    method = Method("A", "m", is_static=True)
    builder = IRBuilder(method)
    builder.assign("x", Const(1))
    builder.finish()
    assert method.cfg.entry.terminator is not None
    assert isinstance(method.cfg.entry.terminator, Return)


def test_builder_parks_unreachable_code_in_new_block():
    method = Method("A", "m", is_static=True)
    builder = IRBuilder(method)
    builder.ret()
    builder.assign("x", Const(1))  # after a terminator
    builder.finish()
    assert len(method.cfg.blocks) == 2


def test_builder_fresh_names_unique():
    method = Method("A", "m", is_static=True)
    builder = IRBuilder(method)
    temps = {builder.fresh_temp() for _ in range(50)}
    labels = {builder.fresh_label() for _ in range(50)}
    assert len(temps) == 50 and len(labels) == 50


def test_verify_method_flags_undefined_local():
    module = Module("t")
    cls = ClassDef("A")
    module.add_class(cls)
    method = Method("A", "m", is_static=True)
    builder = IRBuilder(method)
    builder.assign("x", Local("ghost"))
    builder.finish()
    cls.add_method(method)
    problems = verify_method(method, module)
    assert any("ghost" in p for p in problems)


def test_verify_module_flags_unknown_superclass():
    module = Module("t")
    module.add_class(ClassDef("A", super_name="Phantom"))
    problems = verify_module(module)
    assert any("Phantom" in p for p in problems)
    assert not verify_module(module, known_external={"Phantom"})


def test_printer_includes_blocks_and_flags():
    method = Method("A", "m", is_static=True, is_synchronized=True)
    builder = IRBuilder(method)
    builder.assign("x", Const(5))
    builder.finish()
    text = format_method(method)
    assert "static synchronized" in text
    assert "entry:" in text
    assert "x = 5" in text
