"""Unit tests for the stratified semi-naive Datalog engine.

Three angles: stratification of a legal program, rejection of negation
through recursion, and semi-naive delta correctness checked against a
reference naive evaluator on transitive-closure programs.
"""

import itertools

import pytest

from repro.datalog.engine import evaluate, query, StratificationError, stratify
from repro.datalog.terms import is_var, Literal, Program, vars_

X, Y, Z = vars_("X Y Z")


def lit(pred, *args, negated=False):
    return Literal(pred, tuple(args), negated=negated)


# -- stratification ----------------------------------------------------------


def test_stratification_happy_path_orders_negation_below():
    """reach/unreachable: the negated predicate lands in a lower stratum."""
    program = Program()
    program.add_facts("edge", [("a", "b"), ("b", "c")])
    program.add_facts("node", [("a",), ("b",), ("c",), ("d",)])
    program.rule(lit("reach", X), lit("edge", "a", X))
    program.rule(lit("reach", Y), lit("reach", X), lit("edge", X, Y))
    program.rule(lit("unreachable", X), lit("node", X),
                 lit("reach", X, negated=True))

    strata = stratify(program)
    assert len(strata) == 2
    lower = {rule.head.pred for rule in strata[0]}
    upper = {rule.head.pred for rule in strata[1]}
    assert lower == {"reach"}
    assert upper == {"unreachable"}

    relations = evaluate(program)
    assert relations["reach"] == {("b",), ("c",)}
    assert relations["unreachable"] == {("a",), ("d",)}


def test_stratification_error_on_negation_through_recursion():
    """p :- !q and q :- !p form a negative cycle: must be rejected."""
    program = Program()
    program.add_facts("node", [("a",)])
    program.rule(lit("p", X), lit("node", X), lit("q", X, negated=True))
    program.rule(lit("q", X), lit("node", X), lit("p", X, negated=True))

    with pytest.raises(StratificationError):
        stratify(program)
    with pytest.raises(StratificationError):
        evaluate(program)


def test_positive_recursion_is_one_stratum():
    program = Program()
    program.add_facts("edge", [("a", "b")])
    program.rule(lit("path", X, Y), lit("edge", X, Y))
    program.rule(lit("path", X, Z), lit("path", X, Y), lit("edge", Y, Z))
    assert len(stratify(program)) == 1


# -- semi-naive vs naive ------------------------------------------------------


def naive_evaluate(program):
    """Reference evaluator: full re-join of every rule until fixpoint.

    Positive, builtin-free programs only -- enough to cross-check the
    engine's semi-naive deltas.
    """
    relations = {pred: set(rows) for pred, rows in program.facts.items()}

    def rows(pred):
        return relations.setdefault(pred, set())

    def match(literal, row, env):
        if len(row) != len(literal.args):
            return None
        env = dict(env)
        for arg, value in zip(literal.args, row):
            if is_var(arg):
                if arg in env:
                    if env[arg] != value:
                        return None
                else:
                    env[arg] = value
            elif arg != value:
                return None
        return env

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            envs = [{}]
            for literal in rule.body:
                assert not literal.negated and not literal.is_builtin
                envs = [
                    new_env
                    for env in envs
                    for row in rows(literal.pred)
                    for new_env in [match(literal, row, env)]
                    if new_env is not None
                ]
            for env in envs:
                derived = tuple(
                    env.get(a, a) for a in rule.head.args
                )
                if derived not in rows(rule.head.pred):
                    rows(rule.head.pred).add(derived)
                    changed = True
    return relations


def tc_program(edges):
    program = Program()
    program.add_facts("edge", edges)
    program.rule(lit("path", X, Y), lit("edge", X, Y))
    program.rule(lit("path", X, Z), lit("path", X, Y), lit("edge", Y, Z))
    return program


def test_semi_naive_matches_naive_on_small_tc():
    edges = [("a", "b"), ("b", "c"), ("c", "d"), ("b", "e")]
    program = tc_program(edges)
    assert query(program, "path") == naive_evaluate(tc_program(edges))["path"]


def test_semi_naive_matches_naive_on_cyclic_tc():
    edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
    program = tc_program(edges)
    expected = naive_evaluate(tc_program(edges))["path"]
    assert query(program, "path") == expected
    # a cycle reaches every node of its component
    assert ("a", "a") in expected


def test_semi_naive_matches_naive_on_chain_with_branches():
    chain = [(i, i + 1) for i in range(20)]
    branches = [(i, 100 + i) for i in range(0, 20, 3)]
    edges = chain + branches
    program = tc_program(edges)
    result = query(program, "path")
    assert result == naive_evaluate(tc_program(edges))["path"]
    # closure of the 20-chain alone contributes n*(n+1)/2 pairs
    assert {(i, j) for i, j in itertools.combinations(range(21), 2)} <= result
