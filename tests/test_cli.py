"""CLI integration tests (in-process, via ``repro.cli.main``)."""

import pytest

from repro.cli import main
from repro.corpus import app


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "app.mjava"
    path.write_text(app("connectbot").source())
    return str(path)


@pytest.fixture()
def clean_app_file(tmp_path):
    path = tmp_path / "clean.mjava"
    path.write_text(app("swiftnotes").source())
    return str(path)


def test_analyze_reports_warnings(app_file, capsys):
    code = main(["analyze", app_file])
    out = capsys.readouterr().out
    assert code == 1  # warnings remain
    assert "potential UAF on ConsoleActivity.bound" in out
    assert "modeled threads" in out


def test_analyze_clean_app_exits_zero(clean_app_file, capsys):
    code = main(["analyze", clean_app_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "potential UAFs  : 0" in out


def test_analyze_imperative_engine_flag(app_file, capsys):
    code = main(["analyze", app_file, "--engine", "imperative"])
    assert code == 1
    assert "after unsound   : 7" in capsys.readouterr().out


def test_simulate_runs_and_reports(clean_app_file, capsys):
    code = main(["simulate", clean_app_file, "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no exceptions raised" in out


def test_simulate_buggy_app_reports_npe(app_file, capsys):
    code = main(["simulate", app_file, "--seed", "0",
                 "--max-decisions", "3000"])
    out = capsys.readouterr().out
    # a random schedule on connectbot usually crashes; accept either
    # outcome but require coherent output
    assert ("NullPointerException" in out) == (code == 1)


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_file_exits_2_with_one_line_error(capsys):
    code = main(["analyze", "/no/such/file.mjava"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.out == ""
    lines = captured.err.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("nadroid: error: cannot read /no/such/file.mjava")
    assert "Traceback" not in captured.err


def test_simulate_missing_file_exits_2(capsys):
    code = main(["simulate", "/no/such/file.mjava"])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_corpus_subset_serial_and_parallel_stdout_identical(capsys):
    args = ["corpus", "--apps", "todolist", "swiftnotes", "clipstack",
            "--no-cache"]
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "4"]) == 0
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "todolist" in serial_out and "clipstack" in serial_out


def test_corpus_cache_dir_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["corpus", "--apps", "todolist", "--cache-dir", cache_dir]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "1 analyzed, 0 from cache" in first.err
    assert main(args) == 0
    second = capsys.readouterr()
    assert "0 analyzed, 1 from cache" in second.err
    assert first.out == second.out


def test_corpus_cache_dir_is_a_file_exits_2(tmp_path, capsys):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("")
    code = main(["corpus", "--apps", "todolist", "--cache-dir", str(bogus)])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot use cache directory" in captured.err
    assert "Traceback" not in captured.err


def test_corpus_unknown_app_exits_2(capsys):
    code = main(["corpus", "--apps", "nonesuch", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown corpus app 'nonesuch'" in captured.err


def test_corpus_csv_export_with_runner(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--csv", str(csv_path)])
    assert code == 0
    content = csv_path.read_text().splitlines()
    assert content[0].startswith("group,app,EC,PC,T")
    assert content[1].startswith("train,todolist,5,0,1")


# -- observability (ISSUE 2) --------------------------------------------------


def test_corpus_trace_goes_to_stderr_not_stdout(capsys):
    base = ["corpus", "--apps", "todolist", "--no-cache"]
    assert main(base) == 0
    plain = capsys.readouterr()
    assert main(base + ["--trace"]) == 0
    traced = capsys.readouterr()
    assert traced.out == plain.out, "--trace must not touch stdout"
    assert "app:todolist" in traced.err
    assert "pointsto" in traced.err


def test_corpus_trace_with_jobs_nests_per_app(capsys):
    code = main(["corpus", "--apps", "todolist", "swiftnotes", "--no-cache",
                 "--jobs", "2", "--trace"])
    assert code == 0
    err = capsys.readouterr().err
    # each app renders one contiguous tree rooted at app:<name>
    tree_roots = [line for line in err.splitlines()
                  if line.startswith("app:")]
    assert tree_roots[0].startswith("app:todolist")
    assert tree_roots[1].startswith("app:swiftnotes")


def test_corpus_metrics_out_includes_cache_counters(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    cache_dir = tmp_path / "cache"
    args = ["corpus", "--apps", "todolist", "--cache-dir", str(cache_dir),
            "--metrics-out", str(metrics_path)]
    assert main(args) == 0
    capsys.readouterr()
    import json

    payload = json.loads(metrics_path.read_text())
    assert payload["run"]["counters"]["runner.cache.misses"] == 1
    assert payload["run"]["counters"]["runner.cache.hits"] == 0
    assert "pointsto.passes" in payload["apps"]["todolist"]["counters"]
    assert "funnel.potential" in payload["totals"]["counters"]

    assert main(args) == 0
    capsys.readouterr()
    warm = json.loads(metrics_path.read_text())
    assert warm["run"]["counters"]["runner.cache.hits"] == 1
    # cached entries replay the recorded analysis counters
    assert warm["apps"]["todolist"]["counters"] \
        == payload["apps"]["todolist"]["counters"]


def test_analyze_trace_and_metrics_out(app_file, tmp_path, capsys):
    metrics_path = tmp_path / "analyze.json"
    code = main(["analyze", app_file, "--trace",
                 "--metrics-out", str(metrics_path)])
    assert code == 1  # warnings remain, same as without flags
    captured = capsys.readouterr()
    assert "lowering" in captured.err and "detection" in captured.err
    assert "lowering" not in captured.out
    import json

    payload = json.loads(metrics_path.read_text())
    assert "detector.potential_warnings" in payload["counters"]


# -- reporting (ISSUE 3) ------------------------------------------------------


def test_explain_prints_lineage_and_decision_trail(app_file, capsys):
    code = main(["explain", app_file])
    out = capsys.readouterr().out
    assert code == 1  # same exit semantics as analyze: warnings remain
    assert "potential warning(s):" in out
    assert "use  thread lineage:" in out
    assert "free thread lineage:" in out
    assert "alias witness :" in out
    assert "filter witness:" in out
    assert "status: remaining" in out


def test_explain_clean_app_exits_zero(clean_app_file, capsys):
    code = main(["explain", clean_app_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 potential warning(s)" in out


def test_explain_status_filter(app_file, capsys):
    code = main(["explain", app_file, "--status", "remaining"])
    out = capsys.readouterr().out
    assert code == 1
    assert "status: remaining" in out
    assert "status: pruned" not in out


def test_analyze_report_and_sarif_out(app_file, tmp_path, capsys):
    import json

    report_path = tmp_path / "report.json"
    sarif_path = tmp_path / "report.sarif"
    code = main(["analyze", app_file, "--report-out", str(report_path),
                 "--sarif-out", str(sarif_path)])
    assert code == 1
    captured = capsys.readouterr()
    assert f"[report] wrote {report_path}" in captured.err
    assert f"[sarif] wrote {sarif_path}" in captured.err

    payload = json.loads(report_path.read_text())
    assert payload["schema"] == 1
    warnings = payload["apps"]["app"]["warnings"]
    assert warnings and all(w["id"].startswith("app::") for w in warnings)

    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["tool"]["driver"]["rules"]
    assert all(r["locations"] for r in sarif["runs"][0]["results"])


def test_report_out_unwritable_path_exits_2(app_file, capsys):
    code = main(["analyze", app_file,
                 "--report-out", "/no/such/dir/report.json"])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot write report" in captured.err
    assert "Traceback" not in captured.err


def test_corpus_report_out_covers_every_app(tmp_path, capsys):
    import json

    report_path = tmp_path / "corpus.json"
    code = main(["corpus", "--apps", "todolist", "connectbot", "--no-cache",
                 "--report-out", str(report_path)])
    assert code == 0
    capsys.readouterr()
    payload = json.loads(report_path.read_text())
    assert set(payload["apps"]) == {"todolist", "connectbot"}
    assert payload["apps"]["connectbot"]["warnings"]
    assert payload["apps"]["connectbot"]["metrics"]


def test_diff_identical_reports_clean_exit_zero(app_file, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    main(["analyze", app_file, "--report-out", str(report_path)])
    capsys.readouterr()
    code = main(["diff", str(report_path), str(report_path),
                 "--fail-on-new"])
    out = capsys.readouterr().out
    assert code == 0
    assert "reports are identical (0 warning changes, 0 metric deltas)" in out


def test_diff_injected_warning_fails_gate(app_file, tmp_path, capsys):
    import copy
    import json

    old_path = tmp_path / "old.json"
    main(["analyze", app_file, "--report-out", str(old_path)])
    capsys.readouterr()

    payload = json.loads(old_path.read_text())
    app_payload = payload["apps"]["app"]
    injected = copy.deepcopy(app_payload["warnings"][0])
    injected["id"] = "app::Injected.f::I.use:1::I.free:2"
    injected["status"] = "remaining"
    app_payload["warnings"].append(injected)
    new_path = tmp_path / "new.json"
    new_path.write_text(json.dumps(payload))

    assert main(["diff", str(old_path), str(new_path)]) == 0
    without_gate = capsys.readouterr().out
    assert "app::Injected.f::I.use:1::I.free:2" in without_gate

    code = main(["diff", str(old_path), str(new_path), "--fail-on-new"])
    gated = capsys.readouterr().out
    assert code == 1
    assert "1 regression(s)" in gated
    assert gated.count("[REGRESSION]") == 1


def test_diff_rejects_non_report_json(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{\"schema\": 99}")
    code = main(["diff", str(bogus), str(bogus)])
    captured = capsys.readouterr()
    assert code == 2
    assert "is not a nadroid report" in captured.err


def test_diff_missing_file_exits_2(tmp_path, capsys):
    code = main(["diff", "/no/such/old.json", "/no/such/new.json"])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot read /no/such/old.json" in captured.err


def test_bench_writes_schema_documented_json(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--apps", "todolist", "swiftnotes",
                 "--jobs", "2", "--out", "bench.json"])
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out == ""  # bench output is the file, not stdout
    assert "[bench] wrote bench.json" in captured.err
    import json

    payload = json.loads((tmp_path / "bench.json").read_text())
    assert payload["schema"] == 1
    assert payload["jobs"] == 2
    assert set(payload["apps"]) == {"todolist", "swiftnotes"}
    assert payload["apps"]["todolist"]["timings"]["total"] > 0


def test_bench_default_filename_carries_date(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["bench", "--apps", "todolist"])
    assert code == 0
    capsys.readouterr()
    import re

    names = [p.name for p in tmp_path.glob("BENCH_*.json")]
    assert len(names) == 1
    assert re.fullmatch(r"BENCH_\d{4}-\d{2}-\d{2}\.json", names[0])


def test_hotspots_renders_ranked_table(capsys):
    code = main(["hotspots", "--apps", "todolist", "--no-cache",
                 "--top", "5"])
    out = capsys.readouterr().out
    assert code == 0
    lines = out.splitlines()
    assert lines[0].split() == ["#", "domain", "name", "count", "seconds"]
    assert any("datalog.stratum" in line for line in lines)


def test_hotspots_domain_filter(capsys):
    code = main(["hotspots", "--apps", "todolist", "--no-cache",
                 "--domain", "pointsto.pair", "--top", "3"])
    out = capsys.readouterr().out
    assert code == 0
    body = [line for line in out.splitlines()[2:] if line
            and not line.startswith("...")]
    assert body and all("pointsto.pair" in line for line in body)


def test_hotspots_rejects_nonpositive_top(capsys):
    code = main(["hotspots", "--apps", "todolist", "--no-cache",
                 "--top", "0"])
    assert code == 2
    assert "--top" in capsys.readouterr().err


def test_analyze_hotspots_flag_goes_to_stderr(app_file, capsys):
    code = main(["analyze", app_file, "--hotspots", "3"])
    captured = capsys.readouterr()
    assert code == 1  # warning verdict unchanged
    assert "datalog" not in captured.out  # stdout stays byte-identical
    header = captured.err.splitlines()[0]
    assert header.split() == ["#", "domain", "name", "count", "seconds"]


def test_corpus_events_out_and_summary(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    code = main(["corpus", "--apps", "todolist", "swiftnotes",
                 "--jobs", "2", "--no-cache", "--events-out", str(events)])
    assert code == 0
    assert f"[events] wrote {events}" in capsys.readouterr().err

    code = main(["events", "summarize", str(events)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 run(s), 2 apps" in out
    assert "analyzed : 2" in out
    assert "per-app latency over 2 apps" in out


def test_events_summarize_rejects_malformed_file(tmp_path, capsys):
    bogus = tmp_path / "events.jsonl"
    bogus.write_text("{ nope\n")
    code = main(["events", "summarize", str(bogus)])
    assert code == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_corpus_events_out_unwritable_path_exits_2(capsys):
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--events-out", "/no/such/dir/events.jsonl"])
    assert code == 2
    assert "cannot write" in capsys.readouterr().err


def test_corpus_progress_lines_on_stderr(capsys):
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--progress"])
    captured = capsys.readouterr()
    assert code == 0
    assert "[progress] 1/1 apps, 0 faults, 0 cache hits" in captured.err
    assert "[progress]" not in captured.out


def test_corpus_memory_gauges_reach_metrics_out(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    code = main(["corpus", "--apps", "todolist", "--memory", "--no-cache",
                 "--metrics-out", str(metrics)])
    assert code == 0
    capsys.readouterr()
    import json

    payload = json.loads(metrics.read_text())
    gauges = payload["apps"]["todolist"]["gauges"]
    assert gauges["mem.app.peak_kb"] > 0
    assert gauges["mem.stage.lowering.peak_kb"] > 0


# -- ISSUE 8: exporters and live telemetry ------------------------------------


def test_corpus_trace_out_writes_perfetto_json(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    code = main(["corpus", "--apps", "todolist", "swiftnotes",
                 "--no-cache", "--trace-out", str(trace),
                 "--events-out", str(events)])
    captured = capsys.readouterr()
    assert code == 0
    assert f"[trace] wrote {trace}" in captured.err
    payload = json.loads(trace.read_text())
    assert payload["displayTimeUnit"] == "ms"
    names = {e["args"]["name"] for e in payload["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    # one process lane per app, plus the event-stream lane
    assert {"run", "app:todolist", "app:swiftnotes"} <= names
    assert any(e["ph"] == "X" for e in payload["traceEvents"])
    assert any(e["ph"] == "i" for e in payload["traceEvents"])


def test_analyze_trace_out(app_file, tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    main(["analyze", app_file, "--trace-out", str(trace)])
    assert f"[trace] wrote {trace}" in capsys.readouterr().err
    payload = json.loads(trace.read_text())
    spans = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert "lowering" in spans and "detection" in spans


def test_hotspots_flame_out(tmp_path, capsys):
    flame = tmp_path / "stacks.txt"
    code = main(["hotspots", "--apps", "todolist", "--no-cache",
                 "--flame", str(flame)])
    captured = capsys.readouterr()
    assert code == 0
    assert f"[flame] wrote {flame}" in captured.err
    lines = flame.read_text().strip().splitlines()
    assert lines
    for line in lines:
        frames, value = line.rsplit(" ", 1)
        assert frames and int(value) > 0


def test_events_summarize_json(tmp_path, capsys):
    import json

    events = tmp_path / "events.jsonl"
    assert main(["corpus", "--apps", "todolist", "--no-cache",
                 "--events-out", str(events)]) == 0
    capsys.readouterr()
    assert main(["events", "summarize", str(events), "--json"]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out)
    assert summary["apps"] == 1
    assert summary["analyzed"] == 1
    assert summary["latency"]["apps"] == 1


def test_events_to_trace(tmp_path, capsys):
    import json

    events = tmp_path / "events.jsonl"
    trace = tmp_path / "trace.json"
    assert main(["corpus", "--apps", "todolist", "swiftnotes",
                 "--jobs", "2", "--no-cache",
                 "--events-out", str(events)]) == 0
    capsys.readouterr()
    assert main(["events", "to-trace", str(events), str(trace)]) == 0
    assert f"[trace] wrote {trace}" in capsys.readouterr().err
    payload = json.loads(trace.read_text())
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"todolist", "swiftnotes"}
    assert all(e["args"]["status"] == "analyzed" for e in complete)


def test_report_artifact_pointers(tmp_path, capsys):
    import json

    report = tmp_path / "report.json"
    trace = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--report-out", str(report), "--trace-out", str(trace),
                 "--events-out", str(events)])
    capsys.readouterr()
    assert code == 0
    payload = json.loads(report.read_text())
    assert payload["artifacts"] == {"trace": str(trace),
                                    "events": str(events)}
    # without the flags the key is absent, keeping goldens byte-stable
    assert main(["corpus", "--apps", "todolist", "--no-cache",
                 "--report-out", str(report)]) == 0
    capsys.readouterr()
    assert "artifacts" not in json.loads(report.read_text())


def test_corpus_serve_telemetry_live_endpoint(monkeypatch, capsys):
    """Probe /metrics, /healthz and /progress while the run is still
    inside main() (hooked at run_finished, before the server closes)."""
    import json
    import urllib.request

    from repro.obs import telemetry as tel

    started = []
    orig_start = tel.TelemetryServer.start

    def start(self):
        started.append(self)
        return orig_start(self)

    probes = {}
    orig_finished = tel.LiveAggregator.run_finished

    def run_finished(self, run_snapshot=None):
        server = started[0]
        for path in ("metrics", "healthz", "progress"):
            with urllib.request.urlopen(f"{server.url}/{path}") as resp:
                probes[path] = (resp.status, resp.read().decode("utf-8"))
        return orig_finished(self, run_snapshot)

    monkeypatch.setattr(tel.TelemetryServer, "start", start)
    monkeypatch.setattr(tel.LiveAggregator, "run_finished", run_finished)
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--serve-telemetry", "0"])
    captured = capsys.readouterr()
    assert code == 0
    assert "[telemetry] listening on 127.0.0.1:" in captured.err
    assert probes["healthz"] == (200, "ok\n")
    status, metrics = probes["metrics"]
    assert status == 200
    assert "nadroid_telemetry_apps_done_total 1" in metrics
    assert "# TYPE nadroid_datalog_passes_total counter" in metrics
    progress = json.loads(probes["progress"][1])
    assert progress["apps"] == {"total": 1, "done": 1, "analyzed": 1,
                                "cached": 0, "faulted": 0}
    # the server is gone once main() returns
    assert started[0].port is None


def test_serve_telemetry_rejects_bad_port(capsys):
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--serve-telemetry", "70000"])
    assert code == 2
    assert "--serve-telemetry" in capsys.readouterr().err


def test_serve_prints_listening_line_and_interrupt_exits_130(
        monkeypatch, capsys, tmp_path):
    """`repro serve` binds, announces its port machine-readably, and a
    Ctrl-C lands as the conventional 128+SIGINT exit code."""
    import repro.service.server as server_mod

    def interrupted_serve_forever(self):
        raise KeyboardInterrupt

    monkeypatch.setattr(server_mod.ServiceServer, "serve_forever",
                        interrupted_serve_forever)
    code = main(["serve", "--port", "0",
                 "--cache-dir", str(tmp_path / "cache")])
    err = capsys.readouterr().err
    assert code == 130
    assert "[serve] listening on 127.0.0.1:" in err
    assert "nadroid: interrupted" in err


@pytest.mark.parametrize("flags, needle", [
    (["--port", "70000"], "--port"),
    (["--queue-limit", "0"], "--queue-limit"),
    (["--jobs", "0"], "--jobs"),
    (["--timeout", "0"], "--timeout"),
    (["--max-retries", "-1"], "--max-retries"),
])
def test_serve_rejects_bad_flags(flags, needle, capsys):
    code = main(["serve", "--no-cache"] + flags)
    assert code == 2
    assert needle in capsys.readouterr().err


def test_keyboard_interrupt_exits_130_and_flushes_events(
        monkeypatch, capsys, tmp_path):
    def interrupted_run(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.harness.run_table1", interrupted_run)
    events = tmp_path / "events.jsonl"
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--events-out", str(events)])
    captured = capsys.readouterr()
    assert code == 130
    assert "nadroid: interrupted" in captured.err
    # the event stream was closed (and announced) on the way out
    assert f"[events] wrote {events}" in captured.err
    assert events.exists()
