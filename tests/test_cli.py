"""CLI integration tests (in-process, via ``repro.cli.main``)."""

import pytest

from repro.cli import main
from repro.corpus import app


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "app.mjava"
    path.write_text(app("connectbot").source())
    return str(path)


@pytest.fixture()
def clean_app_file(tmp_path):
    path = tmp_path / "clean.mjava"
    path.write_text(app("swiftnotes").source())
    return str(path)


def test_analyze_reports_warnings(app_file, capsys):
    code = main(["analyze", app_file])
    out = capsys.readouterr().out
    assert code == 1  # warnings remain
    assert "potential UAF on ConsoleActivity.bound" in out
    assert "modeled threads" in out


def test_analyze_clean_app_exits_zero(clean_app_file, capsys):
    code = main(["analyze", clean_app_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "potential UAFs  : 0" in out


def test_analyze_imperative_engine_flag(app_file, capsys):
    code = main(["analyze", app_file, "--engine", "imperative"])
    assert code == 1
    assert "after unsound   : 7" in capsys.readouterr().out


def test_simulate_runs_and_reports(clean_app_file, capsys):
    code = main(["simulate", clean_app_file, "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no exceptions raised" in out


def test_simulate_buggy_app_reports_npe(app_file, capsys):
    code = main(["simulate", app_file, "--seed", "0",
                 "--max-decisions", "3000"])
    out = capsys.readouterr().out
    # a random schedule on connectbot usually crashes; accept either
    # outcome but require coherent output
    assert ("NullPointerException" in out) == (code == 1)


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["frobnicate"])
