"""CLI integration tests (in-process, via ``repro.cli.main``)."""

import pytest

from repro.cli import main
from repro.corpus import app


@pytest.fixture()
def app_file(tmp_path):
    path = tmp_path / "app.mjava"
    path.write_text(app("connectbot").source())
    return str(path)


@pytest.fixture()
def clean_app_file(tmp_path):
    path = tmp_path / "clean.mjava"
    path.write_text(app("swiftnotes").source())
    return str(path)


def test_analyze_reports_warnings(app_file, capsys):
    code = main(["analyze", app_file])
    out = capsys.readouterr().out
    assert code == 1  # warnings remain
    assert "potential UAF on ConsoleActivity.bound" in out
    assert "modeled threads" in out


def test_analyze_clean_app_exits_zero(clean_app_file, capsys):
    code = main(["analyze", clean_app_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "potential UAFs  : 0" in out


def test_analyze_imperative_engine_flag(app_file, capsys):
    code = main(["analyze", app_file, "--engine", "imperative"])
    assert code == 1
    assert "after unsound   : 7" in capsys.readouterr().out


def test_simulate_runs_and_reports(clean_app_file, capsys):
    code = main(["simulate", clean_app_file, "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no exceptions raised" in out


def test_simulate_buggy_app_reports_npe(app_file, capsys):
    code = main(["simulate", app_file, "--seed", "0",
                 "--max-decisions", "3000"])
    out = capsys.readouterr().out
    # a random schedule on connectbot usually crashes; accept either
    # outcome but require coherent output
    assert ("NullPointerException" in out) == (code == 1)


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_file_exits_2_with_one_line_error(capsys):
    code = main(["analyze", "/no/such/file.mjava"])
    captured = capsys.readouterr()
    assert code == 2
    assert captured.out == ""
    lines = captured.err.strip().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("nadroid: error: cannot read /no/such/file.mjava")
    assert "Traceback" not in captured.err


def test_simulate_missing_file_exits_2(capsys):
    code = main(["simulate", "/no/such/file.mjava"])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_corpus_subset_serial_and_parallel_stdout_identical(capsys):
    args = ["corpus", "--apps", "todolist", "swiftnotes", "clipstack",
            "--no-cache"]
    assert main(args) == 0
    serial_out = capsys.readouterr().out
    assert main(args + ["--jobs", "4"]) == 0
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "todolist" in serial_out and "clipstack" in serial_out


def test_corpus_cache_dir_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["corpus", "--apps", "todolist", "--cache-dir", cache_dir]
    assert main(args) == 0
    first = capsys.readouterr()
    assert "1 analyzed, 0 from cache" in first.err
    assert main(args) == 0
    second = capsys.readouterr()
    assert "0 analyzed, 1 from cache" in second.err
    assert first.out == second.out


def test_corpus_cache_dir_is_a_file_exits_2(tmp_path, capsys):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("")
    code = main(["corpus", "--apps", "todolist", "--cache-dir", str(bogus)])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot use cache directory" in captured.err
    assert "Traceback" not in captured.err


def test_corpus_unknown_app_exits_2(capsys):
    code = main(["corpus", "--apps", "nonesuch", "--no-cache"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown corpus app 'nonesuch'" in captured.err


def test_corpus_csv_export_with_runner(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    code = main(["corpus", "--apps", "todolist", "--no-cache",
                 "--csv", str(csv_path)])
    assert code == 0
    content = csv_path.read_text().splitlines()
    assert content[0].startswith("group,app,EC,PC,T")
    assert content[1].startswith("train,todolist,5,0,1")
