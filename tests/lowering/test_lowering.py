"""Lowering tests: AST -> IR translation."""

import pytest

from repro.ir import (
    Assign,
    BinaryOp,
    Const,
    GetField,
    Goto,
    If,
    Invoke,
    Local,
    MonitorEnter,
    MonitorExit,
    New,
    PutField,
    PutStatic,
    Return,
)
from repro.lang.errors import LoweringError
from repro.lowering import compile_app


def instrs(module, class_name, method_name, kind=None):
    method = module.lookup_method(class_name, method_name)
    assert method is not None, f"{class_name}.{method_name} not lowered"
    result = list(method.instructions())
    if kind is not None:
        result = [i for i in result if isinstance(i, kind)]
    return result


def test_simple_class_compiles(compile_source):
    module = compile_source("class A { int x; void m() { x = 1; } }")
    assert module.sealed
    puts = instrs(module, "A", "m", PutField)
    assert len(puts) == 1
    assert puts[0].fieldref.field_name == "x"


def test_field_use_and_free_vocabulary(compile_source):
    module = compile_source(
        """
        class Holder { Cursor cursor;
          void free() { cursor = null; }
          void use() { cursor.close(); }
        }
        """
    )
    frees = [p for p in instrs(module, "Holder", "free", PutField) if p.is_free()]
    assert len(frees) == 1
    gets = instrs(module, "Holder", "use", GetField)
    assert gets[0].fieldref.field_name == "cursor"


def test_implicit_this_field_access(compile_source):
    module = compile_source(
        "class A { int x; int m() { return x + this.x; } }"
    )
    gets = instrs(module, "A", "m", GetField)
    assert len(gets) == 2
    assert all(g.base == Local("this") for g in gets)


def test_local_shadows_field(compile_source):
    module = compile_source(
        "class A { int x; void m() { int x = 1; x = 2; } }"
    )
    assert instrs(module, "A", "m", PutField) == []
    assigns = [a for a in instrs(module, "A", "m", Assign) if a.target == "x"]
    assert len(assigns) == 2


def test_inherited_field_resolves_to_declaring_class(compile_source):
    module = compile_source(
        """
        class Base { int counter; }
        class Derived extends Base { void m() { counter = 5; } }
        """
    )
    puts = instrs(module, "Derived", "m", PutField)
    assert puts[0].fieldref.class_name == "Base"


def test_static_field_access(compile_source):
    module = compile_source(
        "class A { static int total; void m() { A.total = 1; total = 2; } }"
    )
    puts = instrs(module, "A", "m", PutStatic)
    assert len(puts) == 2


def test_constructor_call_and_field_init(compile_source):
    module = compile_source(
        """
        class Box { int v; Box(int v0) { v = v0; } }
        class A { void m() { Box b = new Box(7); } }
        """
    )
    news = instrs(module, "A", "m", New)
    assert news[0].class_name == "Box"
    inits = [i for i in instrs(module, "A", "m", Invoke)
             if i.methodref.method_name == "<init>"]
    assert len(inits) == 1


def test_field_initializer_goes_into_synthesized_ctor(compile_source):
    module = compile_source("class A { int x = 42; }")
    ctor = module.lookup_method("A", "<init>")
    assert ctor is not None
    puts = [i for i in ctor.instructions() if isinstance(i, PutField)]
    assert puts[0].fieldref.field_name == "x"


def test_static_initializer_goes_into_clinit(compile_source):
    module = compile_source('class A { static String tag = "A"; }')
    clinit = module.lookup_method("A", "<clinit>")
    assert clinit is not None


def test_if_produces_branch(compile_source):
    module = compile_source(
        "class A { int m(int n) { if (n > 0) { return 1; } return 0; } }"
    )
    branches = instrs(module, "A", "m", If)
    assert len(branches) == 1


def test_while_produces_loop_cfg(compile_source):
    module = compile_source(
        "class A { void m(int n) { while (n > 0) { n = n - 1; } } }"
    )
    method = module.lookup_method("A", "m")
    labels = {b.label for b in method.cfg.block_order()}
    # loop head must have two predecessors: entry and body
    head = [lbl for lbl in labels if lbl.startswith("loop")][0]
    assert len(method.cfg.predecessors(head)) == 2


def test_short_circuit_and_lowered_to_cfg(compile_source):
    module = compile_source(
        "class A { boolean m(boolean a, boolean b) { return a && b; } }"
    )
    branches = instrs(module, "A", "m", If)
    assert len(branches) == 1
    # no BinaryOp('&&') remains
    assert all(b.op != "&&" for b in instrs(module, "A", "m", BinaryOp))


def test_synchronized_block_emits_monitors(compile_source):
    module = compile_source(
        "class A { Object lock; void m() { synchronized (lock) { int x = 1; } } }"
    )
    assert len(instrs(module, "A", "m", MonitorEnter)) == 1
    assert len(instrs(module, "A", "m", MonitorExit)) == 1


def test_synchronized_method_emits_monitors(compile_source):
    module = compile_source("class A { synchronized void m() { } }")
    assert len(instrs(module, "A", "m", MonitorEnter)) == 1
    assert len(instrs(module, "A", "m", MonitorExit)) == 1


def test_return_inside_sync_block_releases_lock(compile_source):
    module = compile_source(
        """
        class A { Object lock;
          int m() { synchronized (lock) { return 1; } }
        }
        """
    )
    method = module.lookup_method("A", "m")
    for block in method.cfg.block_order():
        for i, instr in enumerate(block.instructions):
            if isinstance(instr, Return) and instr.value is not None:
                assert isinstance(block.instructions[i - 1], MonitorExit)


def test_anonymous_runnable_creates_synthetic_class(compile_source):
    module = compile_source(
        """
        class A extends Activity {
          Handler handler;
          void onCreate(Bundle b) {
            handler.post(new Runnable() { public void run() { finish(); } });
          }
        }
        """
    )
    anon = module.lookup_class("A$1")
    assert anon is not None
    assert anon.interfaces == ["Runnable"]
    assert "$outer" in anon.fields
    run = module.lookup_method("A$1", "run")
    # finish() resolves through $outer to the Activity
    calls = [i for i in run.instructions() if isinstance(i, Invoke)]
    assert any(c.methodref.method_name == "finish" for c in calls)


def test_anonymous_class_outer_field_access(compile_source):
    module = compile_source(
        """
        class A extends Activity {
          Cursor cursor;
          Handler handler;
          void onPause() {
            handler.post(new Runnable() { public void run() { cursor = null; } });
          }
        }
        """
    )
    run = module.lookup_method("A$1", "run")
    gets = [i for i in run.instructions() if isinstance(i, GetField)]
    assert any(g.fieldref.field_name == "$outer" for g in gets)
    puts = [i for i in run.instructions() if isinstance(i, PutField)]
    assert any(p.fieldref.field_name == "cursor" and p.is_free() for p in puts)


def test_anonymous_class_captures_final_local(compile_source):
    module = compile_source(
        """
        class A extends Activity {
          Handler handler;
          void onCreate(Bundle b) {
            final String host = "example.com";
            handler.post(new Runnable() {
              public void run() { Log.d("tag", host); }
            });
          }
        }
        """
    )
    anon = module.lookup_class("A$1")
    assert "$cap_host" in anon.fields
    # the capture is wired at the allocation site
    creator = module.lookup_method("A", "onCreate")
    puts = [i for i in creator.instructions() if isinstance(i, PutField)]
    assert any(p.fieldref.field_name == "$cap_host" for p in puts)


def test_nested_anonymous_classes(compile_source):
    module = compile_source(
        """
        class A extends Activity {
          Handler handler;
          void onCreate(Bundle b) {
            handler.post(new Runnable() {
              public void run() {
                handler.post(new Runnable() { public void run() { } });
              }
            });
          }
        }
        """
    )
    assert module.lookup_class("A$1") is not None
    assert module.lookup_class("A$1$1") is not None


def test_framework_super_call(compile_source):
    module = compile_source(
        """
        class MainActivity extends Activity {
          void onCreate(Bundle b) { super.onCreate(b); }
        }
        """
    )
    invokes = instrs(module, "MainActivity", "onCreate", Invoke)
    assert invokes[0].kind == "special"
    assert invokes[0].methodref.class_name == "Activity"


def test_unresolved_identifier_raises(compile_source):
    with pytest.raises(LoweringError):
        compile_source("class A { void m() { ghost = 1; } }")


def test_unknown_method_raises(compile_source):
    with pytest.raises(LoweringError):
        compile_source("class A { void m() { this.nope(); } }")


def test_wrong_arity_raises(compile_source):
    with pytest.raises(LoweringError):
        compile_source(
            "class A { void f(int x) { } void m() { f(); } }"
        )


def test_this_in_static_method_raises(compile_source):
    with pytest.raises(LoweringError):
        compile_source("class A { static void m() { this.hashCode(); } }")


def test_instantiating_interface_raises(compile_source):
    with pytest.raises(LoweringError):
        compile_source("class A { void m() { Runnable r = new Runnable(); } }")


def test_allocation_sites_are_named_after_seal(compile_source):
    module = compile_source(
        "class A { void m() { Object a = new Object(); Object b = new Object(); } }"
    )
    news = instrs(module, "A", "m", New)
    assert news[0].site == "A.m#0"
    assert news[1].site == "A.m#1"


def test_uids_are_unique_and_dense(compile_source):
    module = compile_source("class A { void m() { int x = 1; } void n() { } }")
    uids = [i.uid for i in module.instructions()]
    assert len(uids) == len(set(uids))
    assert all(u >= 0 for u in uids)


def test_static_method_call_on_class_name(compile_source):
    module = compile_source(
        'class A { void m() { Log.d("tag", "msg"); } }'
    )
    invokes = instrs(module, "A", "m", Invoke)
    assert invokes[0].kind == "static"
