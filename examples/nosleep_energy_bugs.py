#!/usr/bin/env python3
"""The section-9 extension: no-sleep energy bugs as ordering violations.

A voice recorder acquires a WakeLock when recording starts.  The release
lives in ``onPause`` -- but whether it runs after the acquire depends on
the event order (the user can keep recording in the foreground forever),
so the API pair is *racy*.  Moving the release to ``onDestroy`` gives a
must-happens-after guarantee and silences the report; deleting it
entirely upgrades the finding to a definite leak.

Run:  python examples/nosleep_energy_bugs.py
"""

from repro.analysis import run_pointsto
from repro.extensions import detect_nosleep, LEAKED, RACY_RELEASE
from repro.lowering import compile_app
from repro.threadify import threadify

RECORDER = """
class RecorderActivity extends Activity {{
  PowerManager powerManager;
  WakeLock recordingLock;
  View recordButton;

  void onCreate(Bundle b) {{
    super.onCreate(b);
    recordingLock = powerManager.newWakeLock(1, "recording");
    recordButton = findViewById(1);
    recordButton.setOnClickListener(new OnClickListener() {{
      public void onClick(View v) {{
        recordingLock.acquire();
      }}
    }});
  }}
{release_site}
}}
"""


def report(variant: str, release_site: str):
    module = compile_app(RECORDER.format(release_site=release_site),
                         seal=False)
    program = threadify(module)
    warnings = detect_nosleep(program, run_pointsto(program.module))
    print(f"== {variant} ==")
    if not warnings:
        print("clean: every acquire has a guaranteed release\n")
    else:
        for warning in warnings:
            print(warning.describe(program))
        print()
    return warnings


def main() -> None:
    leaked = report("no release anywhere", "")
    assert leaked and leaked[0].severity == LEAKED

    racy = report(
        "release in onPause (racy)",
        """
  void onPause() {
    super.onPause();
    recordingLock.release();
  }
""",
    )
    assert racy and racy[0].severity == RACY_RELEASE

    clean = report(
        "release in onDestroy (guaranteed)",
        """
  void onDestroy() {
    super.onDestroy();
    recordingLock.release();
  }
""",
    )
    assert not clean
    print("ordering contracts generalize the UAF machinery, as section 9 "
          "suggests")


if __name__ == "__main__":
    main()
