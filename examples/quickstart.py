#!/usr/bin/env python3
"""Quickstart: find a use-after-free ordering violation in 30 lines.

The app below frees ``session`` when its background service disconnects,
but a context-menu callback still dereferences it -- the paper's
Figure 1(a) bug shape.  ``analyze_app`` runs the whole nAdroid pipeline:
threadification, Chord-style detection, and the happens-before filters.

Run:  python examples/quickstart.py
"""

from repro.core import analyze_app

APP = """
class Session { void send() { } }

class MainActivity extends Activity {
  Session session;

  void onStart() {
    super.onStart();
    bindService(new Intent("svc"), new ServiceConnection() {
      public void onServiceConnected(ComponentName n, IBinder s) {
        session = new Session();
      }
      public void onServiceDisconnected(ComponentName n) {
        session = null;                  // the free
      }
    }, 0);
  }

  void onCreateContextMenu(ContextMenu m, View v, ContextMenuInfo i) {
    session.send();                      // the use -- no guard
  }

  void onClick(View v) {
    if (session != null) {
      session.send();                    // guarded: filtered out
    }
  }
}
"""


def main() -> None:
    result = analyze_app(APP)

    counts = result.counts()
    print(f"modeled threads : EC={counts['EC']} PC={counts['PC']} T={counts['T']}")
    print(f"potential UAFs  : {counts['potential']}")
    print(f"after sound     : {counts['after_sound']}")
    print(f"after unsound   : {counts['after_unsound']}")
    print()
    for warning in result.remaining():
        print(warning.describe(result.program.forest))
        print()

    assert result.remaining(), "the unguarded use survives the filters"
    assert all(
        "onCreateContextMenu" in w.use_method for w in result.remaining()
    ), "the guarded use was pruned by the IG filter"
    print("OK: one harmful ordering violation reported, the guarded one pruned")


if __name__ == "__main__":
    main()
