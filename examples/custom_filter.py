#!/usr/bin/env python3
"""Extending the pipeline with a custom filter.

The filter framework (repro.filters) is open: a filter is an object with
a ``name``, a soundness flag and a side-effect-free ``prunes`` predicate
over warning occurrences.  This example adds a (deliberately naive)
"same-class frees are trusted" filter and shows how to run the pipeline
with a custom filter chain -- and why the naive rule is a bad idea: it
prunes the ConnectBot Figure 1(a) bug.

Run:  python examples/custom_filter.py
"""

from repro.analysis.lockset import LocksetAnalysis
from repro.analysis.pointsto import run_pointsto
from repro.corpus import app
from repro.filters import Filter, FilterContext, FilterPipeline, SOUND_FILTERS
from repro.filters.unsound import UNSOUND_FILTERS
from repro.race.detector import detect_uaf_warnings
from repro.threadify import threadify


class TrustOwnClassFilter(Filter):
    """Prune pairs whose use and free sit in the same top-level class.

    An (unsound!) heuristic a downstream user might try: "a class that
    frees its own field surely knows what it is doing."
    """

    name = "TrustOwnClass"
    sound = False

    def prunes(self, occ, warning, ctx) -> bool:
        use_root = occ.use.method_qname.split(".")[0].split("$")[0]
        free_root = occ.free.method_qname.split(".")[0].split("$")[0]
        return use_root == free_root


def main() -> None:
    spec = app("aard")
    module = spec.compile()
    program = threadify(module, spec.manifest_for(module))
    pointsto = run_pointsto(program.module)
    lockset = LocksetAnalysis(program.module, pointsto)
    warnings = detect_uaf_warnings(program, pointsto, lockset=lockset)

    ctx = FilterContext(program, pointsto, lockset)
    custom_chain = (*UNSOUND_FILTERS, TrustOwnClassFilter())
    report = FilterPipeline(ctx, SOUND_FILTERS, custom_chain).apply(warnings)

    remaining = [w for w in warnings if w.survives_all]
    print(f"potential={report.potential} after_sound={report.after_sound} "
          f"after_unsound+custom={report.after_unsound}")
    surviving_fields = {w.fieldref.field_name for w in remaining}
    print(f"surviving fields: {sorted(surviving_fields)}")

    # the custom rule threw away Aard's real dictionaryService bug (the
    # use sits in a click listener of the same activity that frees it in
    # its service-connection callback): unsound filters trade recall for
    # precision, and this one trades badly.
    assert "dictionaryService" not in surviving_fields
    print("note: TrustOwnClass pruned Aard's real service UAF -- "
          "custom unsound filters are sharp tools")


if __name__ == "__main__":
    main()
