#!/usr/bin/env python3
"""Sweep the 27-app evaluation corpus and print the Table 1 analogue.

By default runs the static pipeline only (fast); pass ``--validate`` to
also confirm every surviving warning dynamically via schedule search
(about a minute).

Run:  python examples/corpus_sweep.py [--validate]
"""

import sys

from repro.harness import (
    fp_totals,
    render_table1,
    run_table1,
    total_true_harmful,
)


def main() -> None:
    validate = "--validate" in sys.argv
    rows = run_table1(validate=validate)
    print(render_table1(rows))
    if validate:
        print(f"\ntrue harmful UAFs (dynamically confirmed): "
              f"{total_true_harmful(rows)}")
        print(f"false positives by category: {fp_totals(rows)}")
    else:
        print("\n(static pipeline only; pass --validate for the dynamic "
              "true-harmful column)")


if __name__ == "__main__":
    main()
