#!/usr/bin/env python3
"""The paper's Figure 1: three real harmful UAF shapes, detected
statically and then confirmed dynamically by schedule search.

(a) ConnectBot: single-threaded EC-PC UAF (service disconnect vs menu)
(b) ConnectBot: PC-PC UAF (a guard checked on the looper, the use
    deferred into a posted Runnable)
(c) FireFox: C-NT UAF (an if-guard without atomicity against a thread
    pool free)

Run:  python examples/fig1_uaf_examples.py
"""

from repro.corpus import app
from repro.core import analyze_module
from repro.runtime import Simulator, validate_warning


def confirm(app_name: str, field: str) -> None:
    spec = app(app_name)
    module = spec.compile()
    result = analyze_module(module, spec.manifest_for(module))
    program = result.program

    survivors = [
        w for w in result.remaining() if w.fieldref.field_name == field
    ]
    assert survivors, f"{app_name}.{field}: not reported"
    warning = survivors[0]
    print(f"== {app_name}: potential UAF on {field} "
          f"[{warning.pair_type()}] ==")
    print(warning.describe(program.forest))

    def make_sim():
        return Simulator(program.module, program.manifest)

    verdict = validate_warning(make_sim, warning)
    assert verdict.confirmed, f"{app_name}.{field}: no crashing schedule found"
    print(f"confirmed harmful after {verdict.schedules_tried} schedules:")
    print(f"  {verdict.exception}")
    print("  event trace: " + " -> ".join(verdict.trace[-6:]))
    print()


def main() -> None:
    confirm("connectbot", "bound")        # Figure 1(a), EC-PC
    confirm("connectbot", "hostBridge")   # Figure 1(b), PC-PC
    confirm("firefox", "jClient")         # Figure 1(c), C-NT
    print("all three Figure 1 bugs detected and dynamically confirmed")


if __name__ == "__main__":
    main()
