#!/usr/bin/env python3
"""A tour of threadification (the paper's Figure 3).

Compiles an app exercising all five callback families -- lifecycle entry
callbacks, imperatively registered UI/system listeners, Handler posts,
Service/Receiver registrations, and an AsyncTask -- and prints the
resulting thread forest with poster -> postee lineage.

Run:  python examples/threadification_tour.py
"""

from repro.lowering import compile_app
from repro.threadify import threadify, ThreadKind

APP = """
class MainActivity extends Activity implements LocationListener {
  Handler handler;
  View button;
  LocationManager locationManager;

  void onCreate(Bundle b) {
    super.onCreate(b);
    handler = new UiHandler();
    button = findViewById(1);
    button.setOnClickListener(new OnClickListener() {
      public void onClick(View v) {
        handler.sendEmptyMessage(1);
        handler.post(new Runnable() {
          public void run() { Log.d("tour", "posted"); }
        });
      }
    });
    locationManager.requestLocationUpdates("gps", 0, 0, this);
  }

  void onStart() {
    super.onStart();
    bindService(new Intent("svc"), new ServiceConnection() {
      public void onServiceConnected(ComponentName n, IBinder s) { }
      public void onServiceDisconnected(ComponentName n) { }
    }, 0);
  }

  void onLocationChanged(Location location) {
    new UploadTask().execute();
  }
}

class UiHandler extends Handler {
  public void handleMessage(Message msg) { }
}

class UploadTask extends AsyncTask {
  void onPreExecute() { }
  void doInBackground() { publishProgress(); }
  void onProgressUpdate() { }
  void onPostExecute() { }
}
"""

KIND_TAGS = {
    ThreadKind.DUMMY_MAIN: "main",
    ThreadKind.ENTRY_CALLBACK: "EC",
    ThreadKind.POSTED_CALLBACK: "PC",
    ThreadKind.NATIVE_THREAD: "thread",
    ThreadKind.ASYNC_BACKGROUND: "async-bg",
}


def main() -> None:
    module = compile_app(APP, seal=False)
    program = threadify(module)
    forest = program.forest

    def show(node, depth: int = 0) -> None:
        tag = KIND_TAGS[node.kind]
        label = (
            "dummy main (initial looper)"
            if node.kind is ThreadKind.DUMMY_MAIN
            else f"{node.receiver_class}.{node.method_name}"
        )
        extra = f"  [{node.category.name}]" if node.category else ""
        print("  " * depth + f"- [{tag}] {label}{extra}")
        for child in forest.children(node):
            show(child, depth + 1)

    show(forest.dummy_main)
    counts = forest.counts()
    print(f"\nmodel sizes: EC={counts['EC']} PC={counts['PC']} T={counts['T']}")
    assert counts["EC"] >= 4 and counts["PC"] >= 5 and counts["T"] >= 2


if __name__ == "__main__":
    main()
