"""The job layer: "one analysis job" separated from "one CLI invocation".

Historically the unit of work was a CLI process: ``repro analyze`` read
files, ran the pipeline, rendered, and exited.  The ``repro serve``
daemon needs the same unit *without* the process -- specified by a
request body, scheduled onto the resilience pool, cached, and rendered
into the same artifacts.  This module is that seam:

* :class:`AppSource` / :class:`JobSpec` -- a self-contained description
  of one job: which apps (each a named bundle of MiniDroid sources),
  which :class:`~repro.core.AnalysisConfig` knobs, and which fault
  policy.  Specs are plain data; they serialize to/from the JSON the
  service API accepts.
* :func:`execute_job` -- run a spec on a :class:`~repro.runner
  .CorpusRunner` (the existing process-per-task pool + content-addressed
  cache) and assemble a :class:`JobResult`.
* :class:`JobResult` -- the job's report (byte-identical to the
  ``repro analyze --report-out`` artifact for single-app specs), SARIF,
  run stats and structured faults.

Byte-identity contract: for a single-app spec, :meth:`JobResult
.report_json` equals the file ``repro analyze FILE... --report-out``
writes, byte for byte, regardless of daemon ``--jobs`` or cache
temperature (``tests/service`` pins this over the full 27-app corpus).
Both paths build their report through :func:`single_app_report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import AnalysisConfig
from ..race.detector import DetectorOptions
from ..report import (
    build_app_report,
    build_report,
    fault_app_report,
    report_to_dict,
    report_to_json,
    report_to_sarif,
)
from ..resilience import FaultPolicy
from ..runner.serialize import result_data_from_dict

#: engines the job layer accepts (mirrors the CLI --engine choices)
ENGINES = ("datalog", "imperative")

#: the app key single-app jobs report under -- the same constant the
#: ``repro analyze`` path uses, so the two artifacts line up byte-wise
SINGLE_APP_NAME = "app"


class JobSpecError(ValueError):
    """A request described an invalid job (bad engine, empty sources...)."""


@dataclass(frozen=True)
class AppSource:
    """One application: a name plus its (path, text) source files."""

    name: str
    files: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  name: Optional[str] = None) -> "AppSource":
        app_name = name if name is not None else payload.get("name")
        if not app_name or not isinstance(app_name, str):
            raise JobSpecError("every app needs a non-empty string name")
        files = payload.get("files")
        if not isinstance(files, list) or not files:
            raise JobSpecError(
                f"app {app_name!r}: 'files' must be a non-empty list of "
                f"{{path, text}} objects"
            )
        pairs: List[Tuple[str, str]] = []
        for entry in files:
            if not isinstance(entry, dict) \
                    or not isinstance(entry.get("path"), str) \
                    or not isinstance(entry.get("text"), str):
                raise JobSpecError(
                    f"app {app_name!r}: each file needs string 'path' "
                    f"and 'text' fields"
                )
            pairs.append((entry["path"], entry["text"]))
        return cls(name=app_name, files=tuple(pairs))


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines one analysis job's outcome."""

    apps: Tuple[AppSource, ...]
    k: int = 2
    engine: str = "datalog"
    client: str = "anonymous"
    #: per-job deadline/retry policy (``None`` timeout = no deadline)
    timeout: Optional[float] = None
    max_retries: int = 1
    #: also render SARIF for this job
    sarif: bool = False

    def __post_init__(self) -> None:
        if not self.apps:
            raise JobSpecError("a job needs at least one app")
        if self.engine not in ENGINES:
            raise JobSpecError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.k < 0:
            raise JobSpecError("k must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise JobSpecError("timeout must be a positive number of seconds")
        if self.max_retries < 0:
            raise JobSpecError("max_retries must be >= 0")
        names = [app.name for app in self.apps]
        if len(set(names)) != len(names):
            raise JobSpecError("app names within a job must be unique")

    def config(self) -> AnalysisConfig:
        return AnalysisConfig(
            k=self.k, detector=DetectorOptions(engine=self.engine)
        )

    def policy(self) -> FaultPolicy:
        """Per-job fault policy: a daemon always keeps going -- one bad
        app costs a structured fault entry, never the whole job."""
        return FaultPolicy(timeout=self.timeout,
                           max_retries=self.max_retries,
                           keep_going=True)

    @classmethod
    def from_request(cls, payload: Dict[str, Any],
                     batch: bool) -> "JobSpec":
        """Build a spec from a ``POST /v1/analyze`` (or ``/v1/batch``)
        JSON body.  Raises :class:`JobSpecError` on malformed input."""
        if not isinstance(payload, dict):
            raise JobSpecError("request body must be a JSON object")
        if batch:
            entries = payload.get("apps")
            if not isinstance(entries, list) or not entries:
                raise JobSpecError(
                    "'apps' must be a non-empty list of "
                    "{name, files} objects"
                )
            apps = tuple(AppSource.from_dict(entry) for entry in entries)
        else:
            # single-app jobs report under the CLI's app key so the
            # daemon artifact is byte-identical to `repro analyze`
            apps = (AppSource.from_dict(payload, name=SINGLE_APP_NAME),)
        client = payload.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise JobSpecError("'client' must be a non-empty string")
        try:
            k = int(payload.get("k", 2))
            max_retries = int(payload.get("max_retries", 1))
            timeout = payload.get("timeout")
            timeout = None if timeout is None else float(timeout)
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"bad numeric field: {exc}") from exc
        return cls(
            apps=apps,
            k=k,
            engine=payload.get("engine", "datalog"),
            client=client,
            timeout=timeout,
            max_retries=max_retries,
            sarif=bool(payload.get("sarif", False)),
        )


@dataclass
class JobResult:
    """What one executed job produced."""

    #: the assembled run report (model object; exporters hang off it)
    report: Any
    #: fan-out/cache behaviour: analyzed/cached/faulted/retries plus the
    #: cache hit/miss/store counters -- the warm-path evidence
    stats: Dict[str, int] = field(default_factory=dict)
    #: structured fault records, in input-app order
    faults: List[Dict[str, Any]] = field(default_factory=list)
    #: whether SARIF was requested for this job
    sarif: bool = False

    def report_json(self) -> str:
        """Canonical report text -- the exact bytes ``--report-out``
        writes for the same sources."""
        return report_to_json(self.report)

    def report_dict(self) -> Dict[str, Any]:
        return report_to_dict(self.report)

    def sarif_dict(self) -> Optional[Dict[str, Any]]:
        return report_to_sarif(self.report) if self.sarif else None

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-app funnel counts (the quick-look summary in job status)."""
        return {
            name: dict(app.counts)
            for name, app in sorted(self.report.apps.items())
        }


def single_app_report(result, source: Optional[str], metrics=None):
    """The one-app :class:`~repro.report.AnalysisReport` of a single
    analysis: app keyed :data:`SINGLE_APP_NAME`, sourced at the first
    input path.  ``repro analyze``/``explain`` build their report here;
    the daemon's single-app jobs use the same app key (via
    :meth:`JobSpec.from_request`) and the same ``build_app_report``
    projection, so the two artifacts cannot drift apart byte-wise."""
    return build_report([
        build_app_report(SINGLE_APP_NAME, result, source=source,
                         metrics=metrics)
    ])


def execute_job(spec: JobSpec, runner) -> JobResult:
    """Run one job on a :class:`~repro.runner.CorpusRunner`.

    The runner provides everything the daemon needs per job: the
    process-per-task pool (``jobs`` fan-out within the job), the
    content-addressed cache (cross-job warm path), fault isolation under
    the spec's policy, and per-app metrics snapshots for the report.
    """
    params: Dict[str, Any] = {
        "config": spec.config(),
        "sources": {
            app.name: [list(pair) for pair in app.files]
            for app in spec.apps
        },
    }
    names = [app.name for app in spec.apps]
    payloads, stats = runner.run("analyze", names, params)
    metrics = runner.last_metrics
    per_app = metrics.apps if metrics is not None else {}

    app_reports = []
    faults: List[Dict[str, Any]] = []
    for app, payload in zip(spec.apps, payloads):
        if "error" in payload:
            faults.append(dict(payload["error"]))
            app_reports.append(fault_app_report(payload["error"]))
            continue
        result = result_data_from_dict(payload["result"])
        app_reports.append(build_app_report(
            app.name,
            result,
            source=app.files[0][0],
            metrics=per_app.get(app.name),
        ))
    report = build_report(app_reports)
    return JobResult(
        report=report,
        stats={
            "analyzed": stats.analyzed,
            "cached": stats.cached,
            "faulted": stats.faulted,
            "retries": stats.retries,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_stores": stats.cache_stores,
        },
        faults=faults,
        sarif=spec.sarif,
    )
