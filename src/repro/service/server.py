"""The ``repro serve`` daemon: analysis as a service over loopback HTTP.

Zero new dependencies -- the server is the same stdlib ``http.server``
stack as :mod:`repro.obs.telemetry` (and shares its
:class:`~repro.obs.telemetry.LoopbackHTTPServer` base: ``SO_REUSEADDR``
on, daemonic handler threads, **127.0.0.1 only**).  Two layers:

* :class:`AnalysisService` -- the scheduler.  Holds the long-lived warm
  state (the content-addressed :class:`~repro.runner.ResultCache`, the
  interned framework model and compiled Datalog plans living in this
  process's modules, which forked workers inherit) and a single drain
  thread that executes queued jobs one at a time on a
  :class:`~repro.runner.CorpusRunner` (``--jobs N`` fan-out *within*
  each job keeps results deterministic).  Admission control: a bounded
  queue (:class:`QueueFullError` -> HTTP 429 with ``Retry-After``) and
  round-robin fairness over client ids, so one chatty client cannot
  starve the rest.
* :class:`ServiceServer` -- the HTTP front.  ``POST /v1/analyze`` /
  ``POST /v1/batch`` submit jobs (``"wait": true`` blocks until done),
  ``GET /v1/jobs[/<id>[/report|/sarif]]`` reads them back, and the
  :class:`~repro.obs.LiveAggregator` telemetry routes (``/metrics``,
  ``/healthz``, ``/progress``) are mounted on the same port.

The report endpoint serves the *canonical* report text --
byte-identical to ``repro analyze --report-out`` for the same sources
(see :mod:`repro.service.jobs`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs.telemetry import (
    LiveAggregator,
    LoopbackHTTPServer,
    TELEMETRY_HOST,
    telemetry_response,
)
from ..resilience import FaultPolicy
from ..runner import CorpusRunner, ResultCache
from .jobs import execute_job, JobResult, JobSpec

#: default bound on queued (not yet running) jobs
DEFAULT_QUEUE_LIMIT = 8

#: job lifecycle states
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")


class QueueFullError(Exception):
    """Admission control rejected a submit: the queue is at its bound."""

    def __init__(self, depth: int, limit: int,
                 retry_after: int = 1) -> None:
        super().__init__(
            f"job queue is full ({depth}/{limit} queued); "
            f"retry in {retry_after}s"
        )
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted job and everything known about it so far."""

    id: str
    spec: JobSpec
    status: str = "queued"
    result: Optional[JobResult] = None
    #: one-line reason when status == "failed"
    error: Optional[str] = None
    #: wall seconds the job spent executing (None until finished)
    wall_seconds: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` payload (links, not blobs: the
        report/SARIF bodies live at their own endpoints)."""
        out: Dict[str, Any] = {
            "id": self.id,
            "client": self.spec.client,
            "status": self.status,
            "apps": [app.name for app in self.spec.apps],
        }
        if self.wall_seconds is not None:
            out["wall_seconds"] = round(self.wall_seconds, 6)
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["counts"] = self.result.counts()
            out["stats"] = dict(self.result.stats)
            if self.result.faults:
                out["faults"] = [dict(f) for f in self.result.faults]
            out["report"] = f"/v1/jobs/{self.id}/report"
            if self.result.sarif:
                out["sarif"] = f"/v1/jobs/{self.id}/sarif"
        return out


class AnalysisService:
    """The daemon's scheduler: bounded fair queue + one drain thread.

    Jobs execute strictly one at a time (parallelism lives *inside* a
    job via the runner's ``jobs`` fan-out), which keeps every job's
    results byte-identical to a standalone run -- no cross-job
    interleaving to perturb metrics or cache traffic attribution.

    Call :meth:`start` to begin draining; tests can submit first and
    start later to exercise admission control deterministically.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        policy: Optional[FaultPolicy] = None,
        telemetry: Optional[LiveAggregator] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.default_policy = policy or FaultPolicy(keep_going=True)
        self.telemetry = telemetry
        self.queue_limit = max(0, int(queue_limit))
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        #: per-client FIFO queues, drained round-robin
        self._queues: Dict[str, Deque[Job]] = {}
        #: client rotation order (head = next to be served)
        self._rotation: List[str] = []
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "AnalysisService":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._drain, name="nadroid-service", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop draining: the in-flight job finishes, queued jobs are
        cancelled (their waiters released), and the drain thread joins."""
        with self._wake:
            self._stop = True
            for queue in self._queues.values():
                while queue:
                    job = queue.popleft()
                    job.status = "cancelled"
                    job.done.set()
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- submission / lookup --------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; raises :class:`QueueFullError` at the bound."""
        with self._wake:
            if self._stop:
                raise QueueFullError(0, self.queue_limit)
            depth = sum(len(q) for q in self._queues.values())
            if depth >= self.queue_limit:
                raise QueueFullError(depth, self.queue_limit)
            self._seq += 1
            job = Job(id=f"j{self._seq}", spec=spec)
            self._jobs[job.id] = job
            if spec.client not in self._queues:
                self._queues[spec.client] = deque()
                self._rotation.append(spec.client)
            self._queues[spec.client].append(job)
            self._wake.notify_all()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None) \
            -> Optional[Job]:
        job = self.get(job_id)
        if job is None:
            return None
        job.done.wait(timeout=timeout)
        return job

    # -- the drain thread -----------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Round-robin: serve the first client in rotation with queued
        work, then rotate it to the back."""
        for index, client in enumerate(self._rotation):
            queue = self._queues.get(client)
            if queue:
                self._rotation.append(self._rotation.pop(index))
                return queue.popleft()
        return None

    def _make_runner(self, spec: JobSpec) -> CorpusRunner:
        """A fresh (cheap) runner per job: per-job policy, shared warm
        cache, shared telemetry aggregator."""
        policy = spec.policy()
        if policy.timeout is None and self.default_policy.timeout:
            policy = FaultPolicy(timeout=self.default_policy.timeout,
                                 max_retries=policy.max_retries,
                                 keep_going=True)
        return CorpusRunner(jobs=self.jobs, cache=self.cache,
                            policy=policy, telemetry=self.telemetry)

    def _drain(self) -> None:
        while True:
            with self._wake:
                job = self._next_job()
                while job is None and not self._stop:
                    self._wake.wait()
                    job = self._next_job()
                if job is None:
                    return
                job.status = "running"
            if self.telemetry is not None:
                self.telemetry.set_phase(f"job:{job.id}")
            started = time.perf_counter()
            try:
                job.result = execute_job(job.spec, self._make_runner(job.spec))
                job.status = "done"
            except Exception as exc:  # a job must never kill the daemon
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
            job.wall_seconds = time.perf_counter() - started
            job.done.set()


# -- the HTTP front ----------------------------------------------------------


def _json_body(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes the job API plus the shared telemetry surface."""

    server_version = "nadroid-service"

    # -- plumbing -------------------------------------------------------------

    def _send(self, status: int, content_type: str, body: str,
              headers: Optional[Dict[str, str]] = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._send(status, "application/json; charset=utf-8",
                   _json_body(payload), headers)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(status, {"error": message}, headers)

    @property
    def _service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def _aggregator(self) -> LiveAggregator:
        return self.server.aggregator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Suppressed: the daemon's stderr carries its own lines."""

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        response = telemetry_response(self._aggregator, path)
        if response is not None:
            self._send(*response)
            return
        if path == "/v1/jobs":
            self._send_json(200, {
                "jobs": [job.to_dict() for job in
                         self._service.list_jobs()],
                "queued": self._service.queue_depth(),
            })
            return
        if path.startswith("/v1/jobs/"):
            parts = path[len("/v1/jobs/"):].split("/")
            job = self._service.get(parts[0])
            if job is None:
                self._error(404, f"no such job {parts[0]!r}")
                return
            if len(parts) == 1:
                self._send_json(200, job.to_dict())
                return
            if parts[1:] == ["report"] and job.result is not None:
                # the canonical artifact: exactly the --report-out bytes
                self._send(200, "application/json; charset=utf-8",
                           job.result.report_json())
                return
            if parts[1:] == ["sarif"] and job.result is not None:
                sarif = job.result.sarif_dict()
                if sarif is not None:
                    self._send(200, "application/json; charset=utf-8",
                               json.dumps(sarif, sort_keys=True, indent=2))
                    return
            self._error(404, f"no such artifact for job {parts[0]!r}")
            return
        self._error(404, "not found")

    # -- POST -----------------------------------------------------------------

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._error(400, "request body required")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        from .jobs import JobSpecError

        path = self.path.split("?", 1)[0]
        if path not in ("/v1/analyze", "/v1/batch"):
            self._error(404, "not found")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            spec = JobSpec.from_request(payload, batch=(path == "/v1/batch"))
        except JobSpecError as exc:
            self._error(400, str(exc))
            return
        try:
            job = self._service.submit(spec)
        except QueueFullError as exc:
            self._error(429, str(exc),
                        headers={"Retry-After": str(exc.retry_after)})
            return
        if payload.get("wait"):
            self._service.wait(job.id)
            self._send_json(200, job.to_dict())
            return
        self._send_json(202, job.to_dict(),
                        headers={"Location": f"/v1/jobs/{job.id}"})


class ServiceServer:
    """The daemon's HTTP front: bind 127.0.0.1, serve the job API and
    the telemetry surface on one port.

    ``port=0`` asks the OS for a free port; read :attr:`port` after
    :meth:`bind`.  :meth:`start` serves on a background thread (tests);
    :meth:`serve_forever` serves on the calling thread (the CLI
    foreground path, so SIGINT lands as ``KeyboardInterrupt``).
    """

    def __init__(self, service: AnalysisService,
                 aggregator: Optional[LiveAggregator] = None,
                 port: int = 0) -> None:
        self.service = service
        self.aggregator = aggregator if aggregator is not None \
            else (service.telemetry or LiveAggregator())
        self.requested_port = int(port)
        self._server: Optional[LoopbackHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        return self._server.server_address[1] if self._server else None

    @property
    def url(self) -> Optional[str]:
        if self._server is None:
            return None
        return f"http://{TELEMETRY_HOST}:{self.port}"

    def bind(self) -> "ServiceServer":
        """Bind the listening socket (raises ``OSError`` when a fixed
        port is taken) without serving yet."""
        if self._server is None:
            server = LoopbackHTTPServer(
                (TELEMETRY_HOST, self.requested_port), _ServiceHandler
            )
            server.service = self.service  # type: ignore[attr-defined]
            server.aggregator = self.aggregator  # type: ignore[attr-defined]
            self._server = server
        return self

    def start(self) -> "ServiceServer":
        """Bind and serve on a daemon thread (also starts the service's
        drain thread)."""
        self.bind()
        self.service.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="nadroid-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or a
        ``KeyboardInterrupt`` on the CLI path)."""
        self.bind()
        self.service.start()
        self._server.serve_forever()

    def close(self) -> None:
        if self._server is not None:
            if self._thread is not None:
                self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.shutdown()
