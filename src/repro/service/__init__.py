"""``repro serve``: the analysis daemon (``docs/service.md``).

The package splits along the same seam as the rest of the repo:
:mod:`repro.service.jobs` is the pure job layer (specs, execution,
results -- shared with the CLI so daemon artifacts stay byte-identical
to ``repro analyze``), and :mod:`repro.service.server` is the scheduler
plus the loopback HTTP front.
"""

from .jobs import (
    AppSource,
    execute_job,
    JobResult,
    JobSpec,
    JobSpecError,
    SINGLE_APP_NAME,
    single_app_report,
)
from .server import (
    AnalysisService,
    DEFAULT_QUEUE_LIMIT,
    Job,
    QueueFullError,
    ServiceServer,
)

__all__ = [
    "AnalysisService",
    "AppSource",
    "DEFAULT_QUEUE_LIMIT",
    "execute_job",
    "Job",
    "JobResult",
    "JobSpec",
    "JobSpecError",
    "QueueFullError",
    "ServiceServer",
    "SINGLE_APP_NAME",
    "single_app_report",
]
