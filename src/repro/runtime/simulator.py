"""The Android event-loop simulator.

Drives a sealed module (normally the threadified one, so instruction uids
match the static analysis) under an explicit schedule:

* the **main looper thread** dispatches one posted event or one external
  (lifecycle / UI / system) event at a time, running each callback to
  completion (atomicity, section 2.1);
* **native threads** (Thread/executor/AsyncTask backgrounds) interleave
  with everything at instruction granularity;
* **external events** are generated lawfully: lifecycle callbacks follow
  the Activity automaton (including the back edges), listeners fire only
  while registered, service connections respect the bind contract, and
  ``finish()`` suppresses further UI events -- so any NullPointerException
  the simulator produces corresponds to a feasible Android execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..android.callbacks import SYSTEM_CALLBACKS, UI_CALLBACKS
from ..android.framework import is_framework_class
from ..android.lifecycle import ACTIVE_STATES, ACTIVITY_TRANSITIONS
from ..android.manifest import Manifest
from ..ir import Module
from .errors import SimulationError, ThrownException
from .interpreter import BLOCKED, DONE, Frame, Interpreter, OK, RAISED, ThreadState
from .intrinsics import IntrinsicTable
from .values import Heap, ObjRef, Value

MAIN_THREAD = 0


@dataclass
class PostedTask:
    """An event sitting in the main looper's queue."""

    receiver: ObjRef
    method_name: str
    args: List[Value] = field(default_factory=list)
    poster: Optional[Value] = None


@dataclass
class ConnectionState:
    conn: ObjRef
    connected: bool = False
    disconnected: bool = False
    active: bool = True


class AndroidWorld:
    """Framework-side state: queues, registrations, component lifecycles."""

    def __init__(self) -> None:
        self.main_queue: List[PostedTask] = []
        #: listener object -> callbacks it may receive while registered
        self.listeners: Dict[ObjRef, Tuple[str, ...]] = {}
        #: listener object -> the View it is attached to (for enable/disable)
        self.listener_anchor: Dict[ObjRef, ObjRef] = {}
        #: oids of disabled/hidden views: their listeners do not fire
        self.disabled_anchors: Set[int] = set()
        #: view oid -> owning activity (clicks only arrive while resumed)
        self.view_owner: Dict[int, ObjRef] = {}
        self.connections: List[ConnectionState] = []
        #: activity object -> current lifecycle state name
        self.activity_state: Dict[ObjRef, str] = {}
        self.finished: Set[int] = set()
        self.cancelled_tasks: Set[int] = set()
        #: fire counts per external event key (bounds repeat events)
        self.fire_counts: Dict[str, int] = {}

    # -- queue -----------------------------------------------------------------

    def post(self, receiver: ObjRef, method_name: str,
             args: Optional[List[Value]] = None,
             poster: Optional[Value] = None) -> None:
        self.main_queue.append(
            PostedTask(receiver, method_name, list(args or []), poster)
        )

    def remove_posts(self, predicate: Callable[[PostedTask], bool]) -> None:
        self.main_queue = [t for t in self.main_queue if not predicate(t)]

    # -- registrations -----------------------------------------------------------

    def register(self, obj: ObjRef, callbacks: Sequence[str],
                 anchor: Optional[ObjRef] = None) -> None:
        existing = self.listeners.get(obj, ())
        merged = tuple(dict.fromkeys((*existing, *callbacks)))
        self.listeners[obj] = merged
        if anchor is not None:
            self.listener_anchor[obj] = anchor

    def unregister(self, obj: ObjRef) -> None:
        self.listeners.pop(obj, None)
        self.listener_anchor.pop(obj, None)

    def set_anchor_enabled(self, anchor: ObjRef, enabled: bool) -> None:
        """View.setEnabled/setVisibility semantics: listeners attached to a
        disabled or hidden view stop firing -- the 'one event disables
        another' interactions behind the Missing-HB FP category (8.5)."""
        if enabled:
            self.disabled_anchors.discard(anchor.oid)
        else:
            self.disabled_anchors.add(anchor.oid)

    def anchor_enabled(self, obj: ObjRef) -> bool:
        anchor = self.listener_anchor.get(obj)
        if anchor is None:
            return True
        if anchor.oid in self.disabled_anchors:
            return False
        owner = self.view_owner.get(anchor.oid)
        if owner is not None:
            # UI events reach a view only while its activity is resumed
            if self.is_finished(owner):
                return False
            return self.activity_state.get(owner) == "onResume"
        return True

    def bind_connection(self, conn: ObjRef) -> None:
        self.connections.append(ConnectionState(conn))

    def unbind_connection(self, conn: ObjRef) -> None:
        for state in self.connections:
            if state.conn == conn:
                state.active = False

    # -- components ------------------------------------------------------------------

    def finish_activity(self, activity: ObjRef) -> None:
        self.finished.add(activity.oid)

    def is_finished(self, activity: ObjRef) -> bool:
        return activity.oid in self.finished

    def is_cancelled(self, task: ObjRef) -> bool:
        return task.oid in self.cancelled_tasks

    def start_asynctask(self, sim: "Simulator", thread: ThreadState,
                        task: ObjRef) -> None:
        """AsyncTask.execute: onPreExecute synchronously on the caller,
        then doInBackground on a fresh thread (started only after
        onPreExecute returns), then onPostExecute posted to the looper."""
        pre = sim.module.resolve_method(task.class_name, "onPreExecute")
        gate: Optional[Tuple[int, Frame]] = None
        if pre is not None and pre.cfg.blocks \
                and not is_framework_class(pre.class_name):
            frame = sim.interpreter.make_frame(pre, task, [])
            thread.frames.append(frame)
            gate = (thread.thread_id, frame)
        bg = sim.module.resolve_method(task.class_name, "doInBackground")
        if bg is not None and bg.cfg.blocks \
                and not is_framework_class(bg.class_name):
            worker = sim.spawn_thread(task, "doInBackground",
                                      name=f"async:{task.class_name}")
            worker.waiting_on_frame = gate
            sim.async_completions[worker.thread_id] = task


class Simulator:
    """One simulated execution of an application module."""

    def __init__(self, module: Module, manifest: Manifest,
                 max_steps: int = 50_000,
                 max_event_repeat: int = 2) -> None:
        if not module.sealed:
            raise SimulationError("simulator requires a sealed module")
        self.module = module
        self.manifest = manifest
        self.max_steps = max_steps
        self.max_event_repeat = max_event_repeat
        self.heap = Heap()
        self.world = AndroidWorld()
        self.exceptions: List[ThrownException] = []
        self.clock = 0
        self.total_steps = 0
        self.trace: List[str] = []
        #: instruction uids to watch; executed ones land in hit_watchpoints
        self.watchpoints: Set[int] = set()
        self.hit_watchpoints: Set[int] = set()
        self.intrinsics = IntrinsicTable()
        self.interpreter = Interpreter(
            self.module, self.heap, self.intrinsics, self.exceptions.append
        )
        self.threads: Dict[int, ThreadState] = {
            MAIN_THREAD: ThreadState(MAIN_THREAD, "main", is_looper=True)
        }
        self._next_thread_id = 1
        self.async_completions: Dict[int, ObjRef] = {}
        self.components: Dict[str, ObjRef] = {}
        self._boot()

    # -- boot -------------------------------------------------------------------------

    def _run_synchronously(self, receiver: Optional[ObjRef], class_name: str,
                           method_name: str, args: List[Value]) -> None:
        """Run a method to completion on the main thread (boot only)."""
        method = self.module.resolve_method(class_name, method_name)
        if method is None or not method.cfg.blocks:
            return
        main = self.threads[MAIN_THREAD]
        base_depth = len(main.frames)
        main.frames.append(self.interpreter.make_frame(method, receiver, args))
        guard = 0
        while len(main.frames) > base_depth and main.exception is None:
            self.interpreter.step(main, self)
            guard += 1
            if guard > self.max_steps:
                raise SimulationError(f"boot of {class_name}.{method_name} diverged")
        main.exception = None  # boot exceptions are not app behavior

    def _boot(self) -> None:
        for cls in self.module.classes.values():
            if "<clinit>" in cls.methods and not is_framework_class(cls.name):
                self._run_synchronously(None, cls.name, "<clinit>", [])
        for decl in self.manifest.components.values():
            if not decl.reachable:
                continue
            cls = self.module.lookup_class(decl.name)
            if cls is None or cls.is_interface:
                continue
            obj = self.heap.alloc(decl.name)
            self.components[decl.name] = obj
            self._seed_framework_fields(obj)
            ctor = self.module.lookup_method(decl.name, "<init>")
            if ctor is not None and ctor.arity == 0:
                self._run_synchronously(obj, decl.name, "<init>", [])
            if decl.kind == "activity":
                self.world.activity_state[obj] = "<launch>"
            elif decl.kind in ("receiver", "service", "application"):
                # components whose callbacks are externally deliverable
                callbacks = ("onReceive",) if decl.kind == "receiver" else ()
                if callbacks:
                    self.world.register(obj, callbacks)

    def _seed_framework_fields(self, obj: ObjRef) -> None:
        """Environment injection, mirroring the threadifier's dummy-main
        seeding: framework-typed component fields (Views, managers, pools)
        are provided by the runtime, not by application code."""
        from ..android.framework import concrete_return_class
        from ..ir import FieldRef

        for owner in [obj.class_name, *self.module.superclasses(obj.class_name)]:
            cls = self.module.lookup_class(owner)
            if cls is None or is_framework_class(owner):
                break
            for field_decl in cls.fields.values():
                if field_decl.is_static or not field_decl.type.is_reference():
                    continue
                if not is_framework_class(field_decl.type.name):
                    continue
                concrete = concrete_return_class(field_decl.type.name)
                if concrete is not None:
                    seeded = self.heap.alloc(concrete)
                    if concrete == "View" or self.module.is_subtype(
                        concrete, "View"
                    ):
                        self.world.view_owner[seeded.oid] = obj
                    self.heap.put_field(
                        obj, FieldRef(owner, field_decl.name), seeded
                    )

    # -- threads -------------------------------------------------------------------------

    def spawn_thread(self, receiver: ObjRef, method_name: str,
                     name: str) -> ThreadState:
        method = self.module.resolve_method(receiver.class_name, method_name)
        if method is None:
            raise SimulationError(
                f"cannot spawn thread on {receiver.class_name}.{method_name}"
            )
        thread = ThreadState(self._next_thread_id, name)
        self._next_thread_id += 1
        thread.frames.append(self.interpreter.make_frame(method, receiver, []))
        self.threads[thread.thread_id] = thread
        return thread

    def _thread_runnable(self, thread: ThreadState) -> bool:
        if thread.exception is not None or thread.idle:
            return False
        if thread.waiting_on_frame is not None:
            tid, frame = thread.waiting_on_frame
            owner = self.threads.get(tid)
            if owner is not None and frame in owner.frames:
                return False
            thread.waiting_on_frame = None
        if thread.blocked_on_monitor is not None:
            owner = self.heap.monitors.get(thread.blocked_on_monitor)
            if owner is not None and owner[0] != thread.thread_id:
                return False
        return True

    # -- external events --------------------------------------------------------------------

    def _activity_events(self, obj: ObjRef, state: str) -> List[Tuple[str, str]]:
        """(event key, callback) pairs currently deliverable to an activity."""
        events: List[Tuple[str, str]] = []
        finished = self.world.is_finished(obj)
        for succ in ACTIVITY_TRANSITIONS.get(state, ()):
            if finished and succ in ("onResume", "onRestart"):
                continue  # finish(): fast-forward to destruction only
            if self._implements(obj.class_name, succ):
                events.append((f"{obj.class_name}#{succ}", succ))
            else:
                # transition still happens even without an override
                events.append((f"{obj.class_name}#{succ}", succ))
        if state in ACTIVE_STATES and not finished:
            cls_callbacks = self._component_ui_callbacks(obj.class_name)
            for callback in cls_callbacks:
                events.append((f"{obj.class_name}#{callback}", callback))
        return events

    def _implements(self, class_name: str, method_name: str) -> bool:
        resolved = self.module.resolve_method(class_name, method_name)
        return resolved is not None and not is_framework_class(resolved.class_name)

    def _component_ui_callbacks(self, class_name: str) -> List[str]:
        names: List[str] = []
        for owner in [class_name, *self.module.superclasses(class_name)]:
            if is_framework_class(owner):
                break
            cls = self.module.lookup_class(owner)
            if cls is None:
                continue
            for method_name in cls.methods:
                if method_name in UI_CALLBACKS or method_name in SYSTEM_CALLBACKS:
                    if method_name not in names:
                        names.append(method_name)
        return names

    def external_events(self) -> List[Tuple[str, ObjRef, str]]:
        """All deliverable (key, receiver, callback) external events."""
        events: List[Tuple[str, ObjRef, str]] = []

        def allowed(key: str) -> bool:
            return self.world.fire_counts.get(key, 0) < self.max_event_repeat

        for obj, state in self.world.activity_state.items():
            for key, callback in self._activity_events(obj, state):
                if allowed(key):
                    events.append((key, obj, callback))
        for obj, callbacks in self.world.listeners.items():
            if not self.world.anchor_enabled(obj):
                continue
            for callback in callbacks:
                if not self._implements(obj.class_name, callback):
                    continue
                key = f"{obj.class_name}@{obj.oid}#{callback}"
                if allowed(key):
                    events.append((key, obj, callback))
        for conn_state in self.world.connections:
            if not conn_state.active:
                continue
            if not conn_state.connected:
                key = f"conn@{conn_state.conn.oid}#onServiceConnected"
                if allowed(key):
                    events.append((key, conn_state.conn, "onServiceConnected"))
            elif not conn_state.disconnected:
                key = f"conn@{conn_state.conn.oid}#onServiceDisconnected"
                if allowed(key):
                    events.append((key, conn_state.conn, "onServiceDisconnected"))
        return events

    # -- choices -------------------------------------------------------------------------------

    def choices(self) -> List[Tuple]:
        result: List[Tuple] = []
        main = self.threads[MAIN_THREAD]
        for thread in self.threads.values():
            if self._thread_runnable(thread):
                result.append(("step", thread.thread_id))
        if main.idle and main.exception is None:
            if self.world.main_queue:
                result.append(("dispatch",))
            for key, _obj, _callback in self.external_events():
                result.append(("event", key))
        return result

    def apply(self, choice: Tuple) -> None:
        self.total_steps += 1
        if self.total_steps > self.max_steps:
            raise SimulationError("schedule exceeded step budget")
        kind = choice[0]
        if kind == "step":
            thread = self.threads[choice[1]]
            if self.watchpoints and thread.frames:
                current = thread.top().current_instruction()
                if current is not None and current.uid in self.watchpoints:
                    self.hit_watchpoints.add(current.uid)
            status = self.interpreter.step(thread, self)
            if status == DONE and choice[1] in self.async_completions:
                task = self.async_completions.pop(choice[1])
                if self.world.is_cancelled(task):
                    if self._implements(task.class_name, "onCancelled"):
                        self.world.post(task, "onCancelled", poster=task)
                elif self._implements(task.class_name, "onPostExecute"):
                    self.world.post(task, "onPostExecute", poster=task)
        elif kind == "dispatch":
            task = self.world.main_queue.pop(0)
            self._dispatch(task.receiver, task.method_name, task.args)
            self.trace.append(f"dispatch {task.receiver.class_name}."
                              f"{task.method_name}")
        elif kind == "event":
            key = choice[1]
            for event_key, obj, callback in self.external_events():
                if event_key == key:
                    self.world.fire_counts[key] = (
                        self.world.fire_counts.get(key, 0) + 1
                    )
                    self._fire_external(obj, callback)
                    self.trace.append(f"event {key}")
                    return
            raise SimulationError(f"event {key} is not currently enabled")
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown choice {choice!r}")

    def _fire_external(self, obj: ObjRef, callback: str) -> None:
        if obj in self.world.activity_state:
            current = self.world.activity_state[obj]
            if callback in ACTIVITY_TRANSITIONS.get(current, ()):
                self.world.activity_state[obj] = callback
        for state in self.world.connections:
            if state.conn == obj:
                if callback == "onServiceConnected":
                    state.connected = True
                elif callback == "onServiceDisconnected":
                    state.disconnected = True
                    state.active = False
        self._dispatch(obj, callback, [])

    def _dispatch(self, receiver: ObjRef, method_name: str,
                  args: List[Value]) -> None:
        method = self.module.resolve_method(receiver.class_name, method_name)
        main = self.threads[MAIN_THREAD]
        if method is None or not method.cfg.blocks \
                or is_framework_class(method.class_name):
            return
        main.exception = None
        main.frames.append(self.interpreter.make_frame(method, receiver, args))

    # -- convenience runners ---------------------------------------------------------------------

    @property
    def npe_events(self) -> List[ThrownException]:
        return [e for e in self.exceptions if e.is_npe]

    def run(self, scheduler, max_decisions: int = 5000) -> "Simulator":
        """Drive the simulation with a scheduler until quiescence."""
        for _ in range(max_decisions):
            options = self.choices()
            if not options:
                break
            choice = scheduler.choose(self, options)
            if choice is None:
                break
            self.apply(choice)
        return self


class FifoScheduler:
    """Deterministic: keep stepping the lowest-id runnable thread, then
    dispatch posted events, then fire external events in listing order."""

    def choose(self, sim: Simulator, options: List[Tuple]) -> Optional[Tuple]:
        steps = [c for c in options if c[0] == "step"]
        if steps:
            return min(steps, key=lambda c: c[1])
        for kind in ("dispatch", "event"):
            for choice in options:
                if choice[0] == kind:
                    return choice
        return options[0] if options else None


class RandomScheduler:
    """Seeded random walk over the schedule space."""

    def __init__(self, seed: int) -> None:
        import random

        self._rng = random.Random(seed)

    def choose(self, sim: Simulator, options: List[Tuple]) -> Optional[Tuple]:
        if not options:
            return None
        return self._rng.choice(options)


class ScriptedScheduler:
    """Replay an explicit decision list; fall back to FIFO when exhausted.

    Each script entry is matched against the available options: an exact
    choice tuple, or a string matched against event keys / ``"dispatch"``.
    """

    def __init__(self, script: Sequence) -> None:
        self.script = list(script)
        self._fallback = FifoScheduler()

    def choose(self, sim: Simulator, options: List[Tuple]) -> Optional[Tuple]:
        if self.script:
            want = self.script[0]
            for choice in options:
                if choice == want or (
                    isinstance(want, str)
                    and (choice[0] == want
                         or (choice[0] == "event" and want in choice[1]))
                ):
                    self.script.pop(0)
                    return choice
            # the scripted choice is not enabled yet: make progress first
            steps = [c for c in options if c[0] == "step"]
            if steps:
                return min(steps, key=lambda c: c[1])
            self.script.pop(0)  # cannot satisfy: drop it
            return None if not options else options[0]
        return self._fallback.choose(sim, options)
