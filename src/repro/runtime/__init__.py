"""Dynamic substrate: MiniDroid interpreter, Android event-loop simulator
and the schedule-search validator (paper section 7)."""

from .errors import SimulationError, ThrownException
from .interpreter import Frame, Interpreter, ThreadState
from .intrinsics import IntrinsicTable
from .simulator import (
    AndroidWorld,
    FifoScheduler,
    MAIN_THREAD,
    PostedTask,
    RandomScheduler,
    ScriptedScheduler,
    Simulator,
)
from .validator import validate_warning, ValidationResult
from .values import default_value, Heap, ObjRef, Value

__all__ = [
    "AndroidWorld", "default_value", "FifoScheduler", "Frame", "Heap",
    "Interpreter", "IntrinsicTable", "MAIN_THREAD", "ObjRef", "PostedTask",
    "RandomScheduler", "ScriptedScheduler", "SimulationError", "Simulator",
    "ThreadState", "ThrownException", "validate_warning", "ValidationResult",
    "Value",
]
