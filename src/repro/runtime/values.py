"""Runtime values and the heap for the MiniDroid interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from ..ir import FieldRef, Type


@dataclass(frozen=True)
class ObjRef:
    """A reference to a heap object."""

    oid: int
    class_name: str

    def __str__(self) -> str:
        return f"{self.class_name}@{self.oid}"


#: A runtime value: null is Python None; primitives map to int/bool/str.
Value = Union[None, int, bool, str, ObjRef]


def default_value(type_: Type) -> Value:
    """The Java default for an uninitialized slot of a given type."""
    if type_.name == "boolean":
        return False
    if type_.name in ("int", "long"):
        return 0
    return None


class Heap:
    """Object store: fields, statics, and per-object monitor state."""

    def __init__(self) -> None:
        self._next_oid = 1
        self._fields: Dict[int, Dict[str, Value]] = {}
        self._statics: Dict[str, Value] = {}
        #: oid -> (owner thread id, recursion count)
        self.monitors: Dict[int, tuple] = {}

    def alloc(self, class_name: str) -> ObjRef:
        ref = ObjRef(self._next_oid, class_name)
        self._next_oid += 1
        self._fields[ref.oid] = {}
        return ref

    @staticmethod
    def _key(ref: FieldRef) -> str:
        return f"{ref.class_name}.{ref.field_name}"

    def get_field(self, obj: ObjRef, ref: FieldRef) -> Value:
        return self._fields[obj.oid].get(self._key(ref))

    def put_field(self, obj: ObjRef, ref: FieldRef, value: Value) -> None:
        self._fields[obj.oid][self._key(ref)] = value

    def get_static(self, ref: FieldRef) -> Value:
        return self._statics.get(self._key(ref))

    def put_static(self, ref: FieldRef, value: Value) -> None:
        self._statics[self._key(ref)] = value
