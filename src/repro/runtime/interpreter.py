"""Instruction-level interpreter for the MiniDroid IR.

The interpreter executes one instruction per :meth:`step` call so the
scheduler can interleave threads at instruction granularity -- the
precision needed to reproduce cross-thread UAF windows like Figure 1(c)
(a background free racing a check/use sequence).

Framework methods execute as *intrinsics* (see
:mod:`repro.runtime.intrinsics`); application methods execute their IR
bodies.  Exceptions (NullPointerException from null dereferences, plus
explicit ``throw``) terminate the raising thread and are recorded on the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import (
    Assign,
    BinaryOp,
    Const,
    GetField,
    GetStatic,
    Goto,
    If,
    Instruction,
    Invoke,
    Local,
    Method,
    MonitorEnter,
    MonitorExit,
    New,
    Operand,
    PutField,
    PutStatic,
    Return,
    Throw,
    UnaryOp,
)
from .errors import SimulationError, ThrownException
from .values import default_value, Heap, ObjRef, Value

OK = "ok"
BLOCKED = "blocked"
DONE = "done"
RAISED = "exception"


@dataclass
class Frame:
    """One activation record."""

    method: Method
    locals: Dict[str, Value]
    block_label: str
    index: int = 0
    #: caller local that receives this frame's return value
    result_target: Optional[str] = None

    def current_instruction(self) -> Optional[Instruction]:
        block = self.method.cfg.blocks.get(self.block_label)
        if block is None or self.index >= len(block.instructions):
            return None
        return block.instructions[self.index]


@dataclass
class ThreadState:
    """One simulated thread: a frame stack plus scheduling status."""

    thread_id: int
    name: str
    is_looper: bool = False
    frames: List[Frame] = field(default_factory=list)
    blocked_on_monitor: Optional[int] = None
    #: (thread id, frame) that must pop before this thread may start
    waiting_on_frame: Optional[tuple] = None
    exception: Optional[ThrownException] = None
    steps: int = 0

    @property
    def done(self) -> bool:
        return not self.frames and self.exception is None

    @property
    def idle(self) -> bool:
        return not self.frames

    def top(self) -> Frame:
        return self.frames[-1]


class Interpreter:
    """Shared execution engine; one per simulator."""

    def __init__(self, module, heap: Heap, intrinsics, on_exception) -> None:
        self.module = module
        self.heap = heap
        self.intrinsics = intrinsics  #: IntrinsicTable
        self.on_exception = on_exception
        self._string_counter = 0

    # -- frame helpers ----------------------------------------------------------

    def make_frame(self, method: Method, receiver: Optional[Value],
                   args: List[Value], result_target: Optional[str] = None) -> Frame:
        locals_: Dict[str, Value] = {}
        if not method.is_static:
            locals_["this"] = receiver
        for param, arg in zip(method.params, args):
            locals_[param.name] = arg
        # Missing arguments (framework-invoked callbacks) default per type.
        for param in method.params[len(args):]:
            locals_[param.name] = default_value(param.type)
        return Frame(
            method=method,
            locals=locals_,
            block_label=method.cfg.entry_label,
            result_target=result_target,
        )

    def _value(self, frame: Frame, operand: Operand) -> Value:
        if isinstance(operand, Const):
            return operand.value
        return frame.locals.get(operand.name)

    def _raise(self, thread: ThreadState, name: str, instr: Instruction,
               detail: str = "") -> str:
        exc = ThrownException(
            name=name,
            uid=instr.uid,
            method_qname=thread.top().method.qualified_name,
            thread_id=thread.thread_id,
            detail=detail,
        )
        thread.frames.clear()
        self.on_exception(exc)
        # The exception is recorded on the simulator; the looper keeps
        # dispatching so one crash does not mask other warnings' windows
        # (the validator instruments one warning at a time, like the
        # paper's manual perturbation).
        thread.exception = None
        return RAISED

    # -- one step ---------------------------------------------------------------------

    def step(self, thread: ThreadState, sim) -> str:
        """Execute one instruction of the thread's top frame."""
        if not thread.frames:
            return DONE
        frame = thread.top()
        instr = frame.current_instruction()
        if instr is None:
            # fell off a block without terminator: treat as return (the
            # builder normally prevents this)
            return self._do_return(thread, None)

        thread.steps += 1
        if isinstance(instr, Assign):
            frame.locals[instr.target] = self._value(frame, instr.source)
        elif isinstance(instr, New):
            frame.locals[instr.target] = self.heap.alloc(instr.class_name)
        elif isinstance(instr, BinaryOp):
            try:
                frame.locals[instr.target] = self._binary(
                    instr.op,
                    self._value(frame, instr.lhs),
                    self._value(frame, instr.rhs),
                )
            except ZeroDivisionError:
                return self._raise(thread, "ArithmeticException", instr)
        elif isinstance(instr, UnaryOp):
            operand = self._value(frame, instr.operand)
            frame.locals[instr.target] = (
                (not operand) if instr.op == "!" else -(operand or 0)
            )
        elif isinstance(instr, GetField):
            base = self._value(frame, instr.base)
            if not isinstance(base, ObjRef):
                return self._raise(
                    thread, "NullPointerException", instr,
                    f"read of {instr.fieldref} on null",
                )
            ref = self.module.resolve_field(
                base.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            frame.locals[instr.target] = self.heap.get_field(base, ref)
        elif isinstance(instr, PutField):
            base = self._value(frame, instr.base)
            if not isinstance(base, ObjRef):
                return self._raise(
                    thread, "NullPointerException", instr,
                    f"write of {instr.fieldref} on null",
                )
            ref = self.module.resolve_field(
                base.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            self.heap.put_field(base, ref, self._value(frame, instr.value))
        elif isinstance(instr, GetStatic):
            ref = self.module.resolve_field(
                instr.fieldref.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            frame.locals[instr.target] = self.heap.get_static(ref)
        elif isinstance(instr, PutStatic):
            ref = self.module.resolve_field(
                instr.fieldref.class_name, instr.fieldref.field_name
            ) or instr.fieldref
            self.heap.put_static(ref, self._value(frame, instr.value))
        elif isinstance(instr, MonitorEnter):
            lock = self._value(frame, instr.lock)
            if not isinstance(lock, ObjRef):
                return self._raise(thread, "NullPointerException", instr,
                                   "monitorenter on null")
            owner = self.heap.monitors.get(lock.oid)
            if owner is not None and owner[0] != thread.thread_id:
                thread.blocked_on_monitor = lock.oid
                thread.steps -= 1
                return BLOCKED
            count = owner[1] + 1 if owner else 1
            self.heap.monitors[lock.oid] = (thread.thread_id, count)
            thread.blocked_on_monitor = None
        elif isinstance(instr, MonitorExit):
            lock = self._value(frame, instr.lock)
            if isinstance(lock, ObjRef):
                owner = self.heap.monitors.get(lock.oid)
                if owner and owner[0] == thread.thread_id:
                    if owner[1] <= 1:
                        del self.heap.monitors[lock.oid]
                    else:
                        self.heap.monitors[lock.oid] = (owner[0], owner[1] - 1)
        elif isinstance(instr, Invoke):
            return self._do_invoke(thread, frame, instr, sim)
        elif isinstance(instr, Goto):
            frame.block_label = instr.label
            frame.index = 0
            return OK
        elif isinstance(instr, If):
            cond = self._value(frame, instr.cond)
            frame.block_label = instr.then_label if cond else instr.else_label
            frame.index = 0
            return OK
        elif isinstance(instr, Return):
            return self._do_return(thread, self._value(frame, instr.value)
                                   if instr.value is not None else None)
        elif isinstance(instr, Throw):
            return self._raise(thread, instr.exception, instr, "explicit throw")
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"cannot interpret {instr!r}")

        frame.index += 1
        return OK

    # -- helpers -------------------------------------------------------------------------

    @staticmethod
    def _binary(op: str, lhs: Value, rhs: Value) -> Value:
        if op == "+":
            if isinstance(lhs, str) or isinstance(rhs, str):
                fmt = lambda v: "null" if v is None else (
                    ("true" if v else "false") if isinstance(v, bool) else str(v))
                return fmt(lhs) + fmt(rhs)
            return (lhs or 0) + (rhs or 0)
        if op == "-":
            return (lhs or 0) - (rhs or 0)
        if op == "*":
            return (lhs or 0) * (rhs or 0)
        if op == "/":
            return (lhs or 0) // (rhs or 1 if rhs is None else rhs)
        if op == "%":
            return (lhs or 0) % (rhs or 1 if rhs is None else rhs)
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return (lhs or 0) < (rhs or 0)
        if op == "<=":
            return (lhs or 0) <= (rhs or 0)
        if op == ">":
            return (lhs or 0) > (rhs or 0)
        if op == ">=":
            return (lhs or 0) >= (rhs or 0)
        raise SimulationError(f"unknown binary op {op}")

    def _do_return(self, thread: ThreadState, value: Value) -> str:
        frame = thread.frames.pop()
        if thread.frames and frame.result_target is not None:
            thread.top().locals[frame.result_target] = value
        if thread.frames:
            thread.top().index += 1  # resume after the call
            return OK
        return DONE

    def _do_invoke(self, thread: ThreadState, frame: Frame, instr: Invoke,
                   sim) -> str:
        args = [self._value(frame, a) for a in instr.args]
        receiver: Optional[Value] = None
        if instr.kind != "static":
            assert instr.base is not None
            receiver = self._value(frame, instr.base)
            if not isinstance(receiver, ObjRef):
                return self._raise(
                    thread, "NullPointerException", instr,
                    f"call {instr.methodref.method_name} on null",
                )

        ref = instr.methodref
        if instr.kind == "static":
            resolved = self.module.resolve_method(ref.class_name, ref.method_name)
        elif instr.kind == "special":
            resolved = self.module.resolve_method(ref.class_name, ref.method_name)
        else:
            assert isinstance(receiver, ObjRef)
            resolved = self.module.resolve_method(
                receiver.class_name, ref.method_name
            ) or self.module.resolve_method(ref.class_name, ref.method_name)

        # Intrinsics take precedence for framework-declared behavior.
        handler = self.intrinsics.lookup(
            receiver.class_name if isinstance(receiver, ObjRef)
            else ref.class_name,
            ref.method_name,
            self.module,
        )
        if handler is not None and (
            resolved is None or self.intrinsics.overrides(resolved)
        ):
            result = handler(sim, thread, receiver, args, instr)
            if thread.exception is not None:
                return RAISED
            if instr.target is not None:
                frame.locals[instr.target] = result
            # the intrinsic may have pushed frames (synchronous callback);
            # if so, do not advance past the call yet -- the pushed frame's
            # return advances us.
            if thread.frames and thread.top() is frame:
                frame.index += 1
            return OK

        if resolved is None or not resolved.cfg.blocks:
            # Unknown or abstract method: return a default.
            if instr.target is not None and resolved is not None:
                frame.locals[instr.target] = default_value(resolved.return_type)
            elif instr.target is not None:
                frame.locals[instr.target] = None
            frame.index += 1
            return OK

        new_frame = self.make_frame(resolved, receiver, args, instr.target)
        thread.frames.append(new_frame)
        return OK
