"""Executable semantics of the Android framework API (the intrinsic table).

Each intrinsic implements one framework method for the simulator: posting
to the main looper, spawning threads, registering callbacks, cancelling
work, driving AsyncTasks, or just returning a plausible environment
object.  The table mirrors :mod:`repro.android.api` -- the static and
dynamic views of the framework must agree, and tests assert they do.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..android.framework import (
    concrete_return_class,
    FRAMEWORK_CLASS_NAMES,
    is_framework_class,
)
from ..ir import FieldRef, Module
from .values import default_value, ObjRef, Value

Intrinsic = Callable  # (sim, thread, receiver, args, instr) -> Value


class IntrinsicTable:
    """Dispatch table keyed by (framework class, method name)."""

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], Intrinsic] = {}
        _register_all(self._table)

    def lookup(self, class_name: str, method_name: str,
               module: Module) -> Optional[Intrinsic]:
        for name in [class_name, *sorted(module.supertypes(class_name))]:
            handler = self._table.get((name, method_name))
            if handler is not None:
                return handler
        return None

    @staticmethod
    def overrides(resolved_method) -> bool:
        """Intrinsics replace framework-declared bodies only; application
        overrides win."""
        return is_framework_class(resolved_method.class_name)


# ---------------------------------------------------------------------------
# Registration helpers
# ---------------------------------------------------------------------------


def _register_all(table: Dict[Tuple[str, str], Intrinsic]) -> None:
    def reg(class_name: str, method_name: str):
        def wrap(fn: Intrinsic) -> Intrinsic:
            table[(class_name, method_name)] = fn
            return fn
        return wrap

    # -- posting to the main looper ------------------------------------------

    @reg("Handler", "post")
    @reg("Handler", "postDelayed")
    @reg("View", "post")
    @reg("View", "postDelayed")
    @reg("Activity", "runOnUiThread")
    def _post(sim, thread, receiver, args, instr):
        runnable = args[0]
        if isinstance(runnable, ObjRef):
            sim.world.post(runnable, "run", poster=receiver)
        return True

    @reg("Handler", "sendMessage")
    @reg("Handler", "sendMessageDelayed")
    @reg("Handler", "sendEmptyMessage")
    def _send_message(sim, thread, receiver, args, instr):
        message = args[0] if args and isinstance(args[0], ObjRef) else None
        sim.world.post(receiver, "handleMessage", args=[message],
                       poster=receiver)
        return True

    @reg("Handler", "removeCallbacks")
    @reg("View", "removeCallbacks")
    def _remove_callbacks(sim, thread, receiver, args, instr):
        target = args[0]
        sim.world.remove_posts(lambda t: t.receiver == target)
        return True

    @reg("Handler", "removeCallbacksAndMessages")
    @reg("Handler", "removeMessages")
    def _remove_all(sim, thread, receiver, args, instr):
        sim.world.remove_posts(lambda t: t.poster == receiver)
        return None

    # -- threads ------------------------------------------------------------------

    @reg("Thread", "<init>")
    def _thread_init(sim, thread, receiver, args, instr):
        sim.heap.put_field(receiver, FieldRef("Thread", "$task"), args[0])
        return None

    @reg("Thread", "start")
    def _thread_start(sim, thread, receiver, args, instr):
        target = receiver
        resolved = sim.module.resolve_method(receiver.class_name, "run")
        if resolved is None or is_framework_class(resolved.class_name):
            task = sim.heap.get_field(receiver, FieldRef("Thread", "$task"))
            if isinstance(task, ObjRef):
                target = task
            else:
                return None
        sim.spawn_thread(target, "run", name=f"thread:{target.class_name}")
        return None

    @reg("Thread", "sleep")
    @reg("Thread", "join")
    @reg("Thread", "interrupt")
    def _thread_noop(sim, thread, receiver, args, instr):
        return None

    @reg("Thread", "isAlive")
    def _thread_is_alive(sim, thread, receiver, args, instr):
        return False

    @reg("ExecutorService", "execute")
    @reg("ExecutorService", "submit")
    @reg("Timer", "schedule")
    def _executor_execute(sim, thread, receiver, args, instr):
        task = args[0]
        if isinstance(task, ObjRef):
            sim.spawn_thread(task, "run", name=f"pool:{task.class_name}")
        return None

    @reg("Timer", "cancel")
    @reg("ExecutorService", "shutdown")
    def _executor_noop(sim, thread, receiver, args, instr):
        return None

    # -- AsyncTask -------------------------------------------------------------------

    @reg("AsyncTask", "execute")
    def _async_execute(sim, thread, receiver, args, instr):
        sim.world.start_asynctask(sim, thread, receiver)
        return receiver

    @reg("AsyncTask", "publishProgress")
    def _async_publish(sim, thread, receiver, args, instr):
        if not sim.world.is_cancelled(receiver):
            sim.world.post(receiver, "onProgressUpdate", poster=receiver)
        return None

    @reg("AsyncTask", "cancel")
    def _async_cancel(sim, thread, receiver, args, instr):
        sim.world.cancelled_tasks.add(receiver.oid)
        return True

    @reg("AsyncTask", "isCancelled")
    def _async_is_cancelled(sim, thread, receiver, args, instr):
        return sim.world.is_cancelled(receiver)

    # -- components and cancellation ----------------------------------------------------

    @reg("Activity", "finish")
    def _finish(sim, thread, receiver, args, instr):
        sim.world.finish_activity(receiver)
        return None

    @reg("Activity", "isFinishing")
    def _is_finishing(sim, thread, receiver, args, instr):
        return sim.world.is_finished(receiver)

    @reg("Context", "bindService")
    def _bind_service(sim, thread, receiver, args, instr):
        conn = args[1]
        if isinstance(conn, ObjRef):
            sim.world.bind_connection(conn)
        return True

    @reg("Context", "unbindService")
    def _unbind_service(sim, thread, receiver, args, instr):
        conn = args[0]
        if isinstance(conn, ObjRef):
            sim.world.unbind_connection(conn)
        return None

    @reg("Context", "registerReceiver")
    def _register_receiver(sim, thread, receiver, args, instr):
        target = args[0]
        if isinstance(target, ObjRef):
            sim.world.register(target, ("onReceive",))
        return None

    @reg("Context", "unregisterReceiver")
    def _unregister_receiver(sim, thread, receiver, args, instr):
        target = args[0]
        if isinstance(target, ObjRef):
            sim.world.unregister(target)
        return None

    @reg("Context", "startService")
    @reg("Context", "stopService")
    @reg("Context", "startActivity")
    @reg("Context", "sendBroadcast")
    def _component_noop(sim, thread, receiver, args, instr):
        return None

    @reg("Context", "getSystemService")
    def _get_system_service(sim, thread, receiver, args, instr):
        mapping = {
            "location": "LocationManager",
            "sensor": "SensorManager",
            "power": "PowerManager",
            "notification": "NotificationManager",
        }
        return sim.heap.alloc(mapping.get(args[0] or "", "Object"))

    # -- listener registration -----------------------------------------------------------

    listener_regs = [
        ("View", "setOnClickListener", ("onClick",)),
        ("View", "setOnLongClickListener", ("onLongClick",)),
        ("View", "setOnTouchListener", ("onTouch",)),
        ("ListView", "setOnItemClickListener", ("onItemClick",)),
        ("MediaPlayer", "setOnCompletionListener", ("onCompletion",)),
        ("SharedPreferences", "registerOnSharedPreferenceChangeListener",
         ("onSharedPreferenceChanged",)),
    ]
    for cls_name, mname, callbacks in listener_regs:
        def _make(callbacks=callbacks):
            def _register_listener(sim, thread, receiver, args, instr):
                target = args[0]
                if isinstance(target, ObjRef):
                    sim.world.register(target, callbacks, anchor=receiver)
                return None
            return _register_listener
        table[(cls_name, mname)] = _make()

    @reg("Activity", "findViewById")
    def _find_view(sim, thread, receiver, args, instr):
        view = sim.heap.alloc("View")
        sim.world.view_owner[view.oid] = receiver
        return view

    @reg("View", "setEnabled")
    def _set_enabled(sim, thread, receiver, args, instr):
        sim.world.set_anchor_enabled(receiver, bool(args[0]))
        return None

    @reg("View", "setVisibility")
    def _set_visibility(sim, thread, receiver, args, instr):
        # Android: 0 = VISIBLE; 4 = INVISIBLE; 8 = GONE
        sim.world.set_anchor_enabled(receiver, args[0] == 0)
        return None

    @reg("View", "isEnabled")
    def _is_enabled(sim, thread, receiver, args, instr):
        return receiver.oid not in sim.world.disabled_anchors

    @reg("ContentResolver", "registerContentObserver")
    def _register_observer(sim, thread, receiver, args, instr):
        target = args[1]
        if isinstance(target, ObjRef):
            sim.world.register(target, ("onChange",))
        return None

    @reg("ContentResolver", "unregisterContentObserver")
    def _unregister_observer(sim, thread, receiver, args, instr):
        target = args[0]
        if isinstance(target, ObjRef):
            sim.world.unregister(target)
        return None

    @reg("LocationManager", "requestLocationUpdates")
    def _request_location(sim, thread, receiver, args, instr):
        target = args[3]
        if isinstance(target, ObjRef):
            sim.world.register(target, (
                "onLocationChanged", "onStatusChanged",
                "onProviderEnabled", "onProviderDisabled",
            ))
        return None

    @reg("LocationManager", "removeUpdates")
    @reg("SensorManager", "unregisterListener")
    def _remove_listener(sim, thread, receiver, args, instr):
        target = args[0]
        if isinstance(target, ObjRef):
            sim.world.unregister(target)
        return None

    @reg("SensorManager", "registerListener")
    def _register_sensor(sim, thread, receiver, args, instr):
        target = args[0]
        if isinstance(target, ObjRef):
            sim.world.register(target, ("onSensorChanged", "onAccuracyChanged"))
        return True

    # -- small leaf APIs ------------------------------------------------------------------

    @reg("Object", "equals")
    def _equals(sim, thread, receiver, args, instr):
        return receiver == args[0]

    @reg("Object", "hashCode")
    def _hash_code(sim, thread, receiver, args, instr):
        return receiver.oid if isinstance(receiver, ObjRef) else 0

    @reg("Object", "toString")
    def _to_string(sim, thread, receiver, args, instr):
        return str(receiver)

    @reg("System", "currentTimeMillis")
    def _current_time(sim, thread, receiver, args, instr):
        sim.clock += 1
        return sim.clock

    @reg("StringUtils", "isEmpty")
    def _is_empty(sim, thread, receiver, args, instr):
        return args[0] is None or args[0] == ""

    @reg("StringUtils", "equals")
    def _str_equals(sim, thread, receiver, args, instr):
        return args[0] == args[1]

    @reg("StringUtils", "valueOf")
    def _value_of(sim, thread, receiver, args, instr):
        return str(args[0])


def default_framework_result(sim, resolved_method) -> Value:
    """Fallback for framework methods without a dedicated intrinsic: fresh
    environment objects for reference returns, Java defaults otherwise."""
    ret = resolved_method.return_type
    if ret.is_reference() and ret.name in FRAMEWORK_CLASS_NAMES:
        concrete = concrete_return_class(ret.name)
        if concrete is not None:
            return sim.heap.alloc(concrete)
    return default_value(ret)
