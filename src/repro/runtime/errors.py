"""Runtime exception model."""

from __future__ import annotations

from dataclasses import dataclass

class SimulationError(Exception):
    """Internal simulator failure (bad IR, missing intrinsic, ...)."""


@dataclass
class ThrownException:
    """An exception raised by the simulated application."""

    name: str            #: e.g. "NullPointerException"
    uid: int             #: instruction uid where it was raised
    method_qname: str
    thread_id: int
    detail: str = ""

    @property
    def is_npe(self) -> bool:
        return self.name == "NullPointerException"

    def __str__(self) -> str:
        return (
            f"{self.name} at {self.method_qname} (uid {self.uid}, "
            f"thread {self.thread_id}) {self.detail}"
        )
