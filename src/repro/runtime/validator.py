"""Dynamic validation of static UAF warnings (paper section 7 / 8.4).

The paper's authors confirmed warnings manually, perturbing schedules with
timers and spin loops.  We automate the same idea: search the simulator's
schedule space for an execution that raises a NullPointerException
involving the warning's field.

Two strategies, combined by :func:`validate_warning`:

* **random search** -- seeded random schedules (cheap, surprisingly
  effective for event-order bugs);
* **bounded systematic search** -- depth-first over schedule prefixes with
  branching restricted to *interesting* points (events, dispatches, and
  steps about to touch the racy field), a CHESS-style preemption bounding.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from ..ir import GetField, GetStatic, Instruction, Invoke, PutField, PutStatic
from ..race.warnings import UafWarning
from .simulator import RandomScheduler, Simulator


@dataclass
class ValidationResult:
    """Outcome of the schedule search for one warning."""

    confirmed: bool
    schedules_tried: int
    trace: List[str] = field(default_factory=list)
    exception: Optional[str] = None

    def __bool__(self) -> bool:
        return self.confirmed


def _touches_field(instr: Optional[Instruction], field_names: Set[str]) -> bool:
    if isinstance(instr, (GetField, PutField, GetStatic, PutStatic)):
        return instr.fieldref.field_name in field_names
    if isinstance(instr, Invoke):
        return True  # calls can dispatch callbacks / post events
    return False


def _null_base_from_field(sim: Simulator, uid: int,
                          field_names: Set[str]) -> bool:
    """Does the faulting instruction's null base value trace back to one of
    the warning's fields within its method?"""
    from ..ir import Assign, Local

    instr = sim.module.instruction_at(uid)
    base = getattr(instr, "base", None)
    if not isinstance(base, Local):
        return False
    method = sim.module.method_of(uid)
    worklist = [base.name]
    seen: Set[str] = set()
    while worklist:
        name = worklist.pop()
        if name in seen:
            continue
        seen.add(name)
        for candidate in method.instructions():
            if candidate.target_local() != name:
                continue
            if isinstance(candidate, (GetField, GetStatic)):
                if candidate.fieldref.field_name in field_names:
                    return True
            elif isinstance(candidate, Assign) and isinstance(
                candidate.source, Local
            ):
                worklist.append(candidate.source.name)
    return False


def _npe_matches(sim: Simulator, field_names: Set[str]) -> bool:
    for exc in sim.npe_events:
        if _null_base_from_field(sim, exc.uid, field_names):
            return True
    return False


class TargetedScheduler:
    """Directed race construction (CHESS-style).

    Stalls any thread whose *next* instruction is the warning's use until
    the free instruction has executed (tracked via a simulator
    watchpoint), and prefers stepping a thread that is about to execute
    the free.  Event/dispatch choices are randomized so the surrounding
    callback order is still explored.
    """

    def __init__(self, seed: int, use_uids: Set[int], free_uids: Set[int],
                 use_hint: str = "", free_hint: str = "") -> None:
        import random

        self._rng = random.Random(seed)
        self.use_uids = use_uids
        self.free_uids = free_uids
        #: hints are "Class.method" of the callbacks containing use/free
        self.use_hint = use_hint
        self.free_hint = free_hint

    @staticmethod
    def _matches_hint(event_key: str, hint: str) -> bool:
        """Does an event key ("Cls#cb" or "Cls@oid#cb") match "Cls.cb"?"""
        if not hint or "." not in hint:
            return False
        cls, callback = hint.rsplit(".", 1)
        if not event_key.endswith(f"#{callback}"):
            return False
        head = event_key.rsplit("#", 1)[0]
        return head == cls or head.startswith(f"{cls}@")

    def _next_uid(self, sim: Simulator, choice) -> Optional[int]:
        if choice[0] != "step":
            return None
        thread = sim.threads[choice[1]]
        if not thread.frames:
            return None
        instr = thread.top().current_instruction()
        return instr.uid if instr is not None else None

    def choose(self, sim: Simulator, options):
        if not options:
            return None
        free_done = bool(self.free_uids & sim.hit_watchpoints)
        if free_done:
            hinted = [
                c for c in options
                if c[0] == "event" and self._matches_hint(c[1], self.use_hint)
            ]
            if hinted:
                return hinted[0]
            return self._rng.choice(options)
        next_uids = {id(c): self._next_uid(sim, c) for c in options}
        about_to_free = [c for c in options
                         if next_uids[id(c)] in self.free_uids]
        use_stalled = any(next_uids[id(c)] in self.use_uids for c in options)
        if use_stalled and about_to_free:
            # a thread is parked right at the use: fire the free now
            return about_to_free[0]
        # steer the event order toward the callback containing the free --
        # but only sometimes: firing it too eagerly can waste its repeat
        # budget before the free's enabling conditions hold
        hinted = [
            c for c in options
            if c[0] == "event" and self._matches_hint(c[1], self.free_hint)
        ]
        if hinted and self._rng.random() < 0.5:
            return self._rng.choice(hinted)
        # hold the use and the free instructions back; everything else
        # (including dispatching the use's own callback, which is what
        # parks a thread at the use) makes progress
        allowed = [
            c for c in options
            if next_uids[id(c)] not in self.use_uids
            and next_uids[id(c)] not in self.free_uids
        ]
        if allowed:
            return self._rng.choice(allowed)
        if about_to_free:
            return about_to_free[0]
        return self._rng.choice(options)


def _random_search(
    make_sim: Callable[[], Simulator],
    field_names: Set[str],
    attempts: int,
    max_decisions: int,
    warning: Optional[UafWarning] = None,
) -> Optional[ValidationResult]:
    for seed in range(attempts):
        sim = make_sim()
        if warning is not None:
            # alternate plain-random and targeted schedules
            sim.watchpoints = {warning.free_uid}
            scheduler = (
                TargetedScheduler(
                    seed, {warning.use_uid}, {warning.free_uid},
                    use_hint=warning.use_method,
                    free_hint=warning.free_method,
                )
                if seed % 2 else RandomScheduler(seed)
            )
        else:
            scheduler = RandomScheduler(seed)
        sim.run(scheduler, max_decisions=max_decisions)
        if _npe_matches(sim, field_names):
            return ValidationResult(
                confirmed=True,
                schedules_tried=seed + 1,
                trace=list(sim.trace),
                exception=str(sim.npe_events[0]),
            )
    return None


def _systematic_search(
    base_sim: Simulator,
    field_names: Set[str],
    max_branches: int,
    max_decisions: int,
) -> Tuple[bool, int, Optional[Simulator]]:
    """Bounded DFS; branch only at interesting points."""
    explored = 0
    stack: List[Simulator] = [base_sim]
    while stack and explored < max_branches:
        sim = stack.pop()
        # run deterministically until an interesting branch point
        for _ in range(max_decisions):
            if _npe_matches(sim, field_names):
                return True, explored, sim
            options = sim.choices()
            if not options:
                break
            interesting = [
                c for c in options
                if c[0] in ("dispatch", "event")
                or (
                    c[0] == "step"
                    and _touches_field(
                        sim.threads[c[1]].top().current_instruction()
                        if sim.threads[c[1]].frames else None,
                        field_names,
                    )
                )
            ]
            if len(interesting) > 1 and explored < max_branches:
                explored += 1
                # fork: explore every interesting option
                for choice in interesting[1:]:
                    fork = copy.deepcopy(sim)
                    fork.apply(choice)
                    stack.append(fork)
                sim.apply(interesting[0])
            else:
                # deterministic progress: prefer plain steps
                plain = [c for c in options if c[0] == "step"]
                sim.apply(plain[0] if plain else options[0])
        if _npe_matches(sim, field_names):
            return True, explored, sim
    return False, explored, None


def validate_warning(
    make_sim: Callable[[], Simulator],
    warning: UafWarning,
    random_attempts: int = 60,
    systematic_branches: int = 40,
    max_decisions: int = 1500,
) -> ValidationResult:
    """Search for a schedule that makes the warning's UAF fire."""
    field_names = {warning.fieldref.field_name}

    result = _random_search(make_sim, field_names, random_attempts,
                            max_decisions, warning)
    if result is not None:
        return result

    found, explored, sim = _systematic_search(
        make_sim(), field_names, systematic_branches, max_decisions
    )
    if found and sim is not None:
        return ValidationResult(
            confirmed=True,
            schedules_tried=random_attempts + explored,
            trace=list(sim.trace),
            exception=str(sim.npe_events[0]),
        )
    return ValidationResult(
        confirmed=False,
        schedules_tried=random_attempts + explored,
    )
