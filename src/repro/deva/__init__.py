"""DEvA baseline (the paper's state-of-the-art static comparator)."""

from .analyzer import DevaAnalyzer, DevaWarning, EVENT_HANDLER_NAMES, run_deva

__all__ = ["DevaAnalyzer", "DevaWarning", "EVENT_HANDLER_NAMES", "run_deva"]
