"""DEvA baseline: event-anomaly detection (Safi et al., ESEC/FSE 2015).

The paper compares against DEvA (sections 2.3, 8.7) and attributes to it
three limitations, all reproduced here deliberately:

1. **No happens-before reasoning** -- every pair of distinct event
   callbacks is considered unordered, so MHB-protected pairs (e.g. uses
   against ``onDestroy`` frees) are reported as harmful (Table 3's false
   positives).
2. **Unsound if-guard / intra-allocation filters** -- DEvA assumes every
   method executes atomically, so a guard or allocation suppresses a
   warning regardless of any concurrent free (a false-negative source for
   looper-vs-thread pairs like Figure 1(c)).
3. **Intra-class scope** -- read/write sets are computed per class
   (including its inner classes); racy accesses spanning unrelated classes
   (e.g. an Activity and a separate Runnable class) are invisible
   (the false-negative source for Figures 1(a)/(b) when the callback
   lives in another top-level class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..android.callbacks import (
    ACTIVITY_ENTRY_CALLBACKS,
    APPLICATION_LIFECYCLE,
    PC_CATEGORY_BY_CALLBACK,
    SERVICE_LIFECYCLE,
)
from ..android.framework import is_framework_class
from ..filters.guards import AllocAnalysis, GuardAnalysis, use_is_benign
from ..ir import GetField, Method, Module, PutField
from ..threadify.transform import DUMMY_MAIN_CLASS, REGISTRY_CLASS

#: every method name DEvA treats as an event handler
EVENT_HANDLER_NAMES = frozenset(
    ACTIVITY_ENTRY_CALLBACKS
    | SERVICE_LIFECYCLE
    | APPLICATION_LIFECYCLE
    | set(PC_CATEGORY_BY_CALLBACK)
    | {"doInBackground"}
)

_SYNTHETIC = {REGISTRY_CLASS, DUMMY_MAIN_CLASS}


@dataclass(frozen=True)
class DevaWarning:
    """One DEvA event anomaly (a use/free pair within one class group)."""

    field_class: str
    field_name: str
    use_method: str
    free_method: str
    use_uid: int
    free_uid: int
    #: False when DEvA's (unsound) IG/IA check suppressed it
    harmful: bool

    @property
    def key(self) -> Tuple[int, int]:
        return (self.use_uid, self.free_uid)


class DevaAnalyzer:
    """Run the baseline on a module (framework/synthetic classes skipped)."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._guards: Dict[str, GuardAnalysis] = {}
        self._allocs: Dict[str, AllocAnalysis] = {}

    # -- class grouping (intra-class scope) ------------------------------------

    def _group_root(self, class_name: str) -> str:
        return class_name.split("$", 1)[0]

    def _class_groups(self) -> Dict[str, List[str]]:
        groups: Dict[str, List[str]] = {}
        for name in self.module.classes:
            if is_framework_class(name) or name in _SYNTHETIC:
                continue
            groups.setdefault(self._group_root(name), []).append(name)
        return groups

    def _event_handlers(self, group: List[str]) -> List[Method]:
        handlers = []
        for class_name in group:
            cls = self.module.lookup_class(class_name)
            if cls is None:
                continue
            for method in cls.methods.values():
                if method.name in EVENT_HANDLER_NAMES and method.cfg.blocks:
                    handlers.append(method)
        return handlers

    # -- unsound IG/IA ----------------------------------------------------------

    def _protected(self, method: Method, use_uid: int, base: str,
                   field_class: str, field_name: str) -> bool:
        qname = method.qualified_name
        if qname not in self._guards:
            self._guards[qname] = GuardAnalysis(self.module, method)
            self._allocs[qname] = AllocAnalysis(self.module, method)
        if self._guards[qname].use_protected(use_uid, base, field_class,
                                             field_name):
            return True  # atomicity assumed unconditionally: unsound
        if self._allocs[qname].allocated_at(
            use_uid, base, field_class, field_name, allow_calls=True
        ):
            return True
        # reads feeding only a null comparison ARE the if-guard itself
        return use_is_benign(self.module, method, use_uid)

    # -- detection -----------------------------------------------------------------

    def analyze(self) -> List[DevaWarning]:
        warnings: List[DevaWarning] = []
        for root, group in sorted(self._class_groups().items()):
            group_set = set(group)
            handlers = self._event_handlers(group)
            uses: List[Tuple[Method, GetField]] = []
            frees: List[Tuple[Method, PutField]] = []
            for method in handlers:
                for instr in method.instructions():
                    if isinstance(instr, GetField) \
                            and not instr.fieldref.field_name.startswith("$"):
                        uses.append((method, instr))
                    elif isinstance(instr, PutField) and instr.is_free() \
                            and not instr.fieldref.field_name.startswith("$"):
                        frees.append((method, instr))

            for use_method, use in uses:
                use_field = self.module.resolve_field(
                    use.fieldref.class_name, use.fieldref.field_name
                ) or use.fieldref
                # intra-class restriction: the field must belong to this
                # class group
                if self._group_root(use_field.class_name) not in {
                    self._group_root(g) for g in group_set
                }:
                    continue
                for free_method, free in frees:
                    if free_method.qualified_name == use_method.qualified_name:
                        continue
                    free_field = self.module.resolve_field(
                        free.fieldref.class_name, free.fieldref.field_name
                    ) or free.fieldref
                    if (use_field.class_name, use_field.field_name) != (
                        free_field.class_name, free_field.field_name,
                    ):
                        continue
                    protected = self._protected(
                        use_method, use.uid, use.base.name,
                        use_field.class_name, use_field.field_name,
                    )
                    warnings.append(
                        DevaWarning(
                            field_class=use_field.class_name,
                            field_name=use_field.field_name,
                            use_method=use_method.qualified_name,
                            free_method=free_method.qualified_name,
                            use_uid=use.uid,
                            free_uid=free.uid,
                            harmful=not protected,
                        )
                    )
        return warnings

    def harmful_warnings(self) -> List[DevaWarning]:
        return [w for w in self.analyze() if w.harmful]


def run_deva(module: Module) -> List[DevaWarning]:
    """One-call wrapper returning every DEvA warning."""
    return DevaAnalyzer(module).analyze()
