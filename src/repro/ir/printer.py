"""Human-readable dumps of IR modules, classes and methods.

The textual form is for debugging and golden tests; it is not re-parsed.
"""

from __future__ import annotations

from typing import List

from .module import ClassDef, Method, Module


def format_method(method: Method) -> str:
    flags = []
    if method.is_static:
        flags.append("static")
    if method.is_synchronized:
        flags.append("synchronized")
    prefix = (" ".join(flags) + " ") if flags else ""
    params = ", ".join(f"{p.type} {p.name}" for p in method.params)
    lines = [f"{prefix}{method.return_type} {method.qualified_name}({params}) {{"]
    for block in method.cfg.block_order():
        lines.append(f"  {block.label}:")
        for instr in block.instructions:
            lines.append(f"    {instr}")
    lines.append("}")
    return "\n".join(lines)


def format_class(cls: ClassDef) -> str:
    kind = "interface" if cls.is_interface else "class"
    header = f"{kind} {cls.name}"
    if cls.super_name:
        header += f" extends {cls.super_name}"
    if cls.interfaces:
        header += " implements " + ", ".join(cls.interfaces)
    lines: List[str] = [header + " {"]
    for f in cls.fields.values():
        static = "static " if f.is_static else ""
        lines.append(f"  {static}{f.type} {f.name};")
    for method in cls.methods.values():
        body = format_method(method)
        lines.extend("  " + line for line in body.splitlines())
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    return "\n\n".join(format_class(c) for c in module.classes.values())
