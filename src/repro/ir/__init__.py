"""MiniDroid intermediate representation.

Three-address instructions grouped into basic blocks, per-method control
flow graphs, and module-level class tables.  This is the interchange format
between the frontend (:mod:`repro.lang` / :mod:`repro.lowering`), the
threadifier (:mod:`repro.threadify`), the static analyses
(:mod:`repro.analysis`) and the dynamic interpreter (:mod:`repro.runtime`).
"""

from .builder import IRBuilder
from .cfg import BasicBlock, ControlFlowGraph
from .instructions import (
    Assign,
    BinaryOp,
    Const,
    FieldRef,
    GetField,
    GetStatic,
    Goto,
    If,
    Instruction,
    Invoke,
    Local,
    MethodRef,
    MonitorEnter,
    MonitorExit,
    New,
    Operand,
    PutField,
    PutStatic,
    Return,
    Throw,
    UnaryOp,
)
from .module import ClassDef, Field, Method, Module, Parameter
from .printer import format_class, format_method, format_module
from .types import (
    BOOLEAN,
    INT,
    LONG,
    NULL,
    STRING,
    VOID,
    ClassType,
    PrimitiveType,
    Type,
    is_assignable,
    parse_type,
)
from .verifier import verify_method, verify_module

__all__ = [
    "Assign", "BasicBlock", "BinaryOp", "BOOLEAN", "ClassDef", "ClassType",
    "Const", "ControlFlowGraph", "Field", "FieldRef", "format_class",
    "format_method", "format_module", "GetField", "GetStatic", "Goto", "If",
    "Instruction", "INT", "Invoke", "IRBuilder", "is_assignable", "Local",
    "LONG", "Method", "MethodRef", "Module", "MonitorEnter", "MonitorExit",
    "New", "NULL", "Operand", "Parameter", "parse_type", "PrimitiveType",
    "PutField", "PutStatic", "Return", "STRING", "Throw", "Type", "UnaryOp",
    "verify_method", "verify_module", "VOID",
]
