"""Instruction set of the MiniDroid IR.

The IR is three-address code over named locals.  Instructions live inside
basic blocks (see :mod:`repro.ir.cfg`); the last instruction of every block
is a terminator (:class:`Goto`, :class:`If`, :class:`Return` or
:class:`Throw`).

Race detection cares about a small vocabulary (paper section 5):

* ``GetField``  -- a *use* of a field,
* ``PutField``  with a null operand -- a *free* of a field,
* ``Invoke``    -- call edges, callback registrations, event posts,
* ``New``       -- allocation sites for the k-object-sensitive analysis,
* ``MonitorEnter``/``MonitorExit`` -- lock regions for the lockset analysis.

Every instruction carries a ``uid`` assigned when its method is sealed into
a module; the uid is globally unique and stable, so analyses and reports can
refer to program points by value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .types import Type


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Local:
    """A reference to a method-local variable (including ``this``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal operand.  ``value is None`` encodes the ``null`` literal."""

    value: Union[int, bool, str, None]

    def is_null(self) -> bool:
        return self.value is None

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


Operand = Union[Local, Const]


@dataclass(frozen=True)
class FieldRef:
    """A symbolic reference to ``class_name.field_name``.

    The race analysis resolves field references against the class hierarchy
    so that a field inherited from a superclass has one identity.
    """

    class_name: str
    field_name: str

    def __str__(self) -> str:
        return f"{self.class_name}.{self.field_name}"


@dataclass(frozen=True)
class MethodRef:
    """A symbolic reference to a method signature on a class."""

    class_name: str
    method_name: str
    arity: int

    def __str__(self) -> str:
        return f"{self.class_name}.{self.method_name}/{self.arity}"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass
class Instruction:
    """Base class: every instruction knows its source line and its uid."""

    line: int = field(default=0, kw_only=True)
    uid: int = field(default=-1, kw_only=True)

    def operands(self) -> Tuple[Operand, ...]:
        """Operands read by this instruction (for liveness/dataflow)."""
        return ()

    def target_local(self) -> Optional[str]:
        """Name of the local written by this instruction, if any."""
        return None

    def is_terminator(self) -> bool:
        return False


@dataclass
class Assign(Instruction):
    """``target = source`` (copy or constant load)."""

    target: str
    source: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.source,)

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.source}"


@dataclass
class BinaryOp(Instruction):
    """``target = lhs <op> rhs`` with op in {+,-,*,/,%,==,!=,<,<=,>,>=,&&,||}."""

    target: str
    op: str
    lhs: Operand
    rhs: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.lhs, self.rhs)

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.lhs} {self.op} {self.rhs}"


@dataclass
class UnaryOp(Instruction):
    """``target = <op> operand`` with op in {!, -}."""

    target: str
    op: str
    operand: Operand

    def operands(self) -> Tuple[Operand, ...]:
        return (self.operand,)

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.op}{self.operand}"


@dataclass
class New(Instruction):
    """``target = new ClassName()`` -- an allocation site.

    ``site`` is filled in when the module is sealed; it names the allocation
    site for the points-to analysis (``Class.method#n``).
    """

    target: str
    class_name: str
    site: str = ""

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = new {self.class_name}  [{self.site}]"


@dataclass
class GetField(Instruction):
    """``target = base.field`` -- a *use* in the UAF vocabulary."""

    target: str
    base: Local
    fieldref: FieldRef

    def operands(self) -> Tuple[Operand, ...]:
        return (self.base,)

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.base}.{self.fieldref.field_name}"


@dataclass
class PutField(Instruction):
    """``base.field = value`` -- a *free* when ``value`` is the null const."""

    base: Local
    fieldref: FieldRef
    value: Operand

    def is_free(self) -> bool:
        return isinstance(self.value, Const) and self.value.is_null()

    def operands(self) -> Tuple[Operand, ...]:
        return (self.base, self.value)

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldref.field_name} = {self.value}"


@dataclass
class GetStatic(Instruction):
    """``target = ClassName.field`` (static field use)."""

    target: str
    fieldref: FieldRef

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.fieldref}"


@dataclass
class PutStatic(Instruction):
    """``ClassName.field = value`` (a *free* when value is null)."""

    fieldref: FieldRef
    value: Operand

    def is_free(self) -> bool:
        return isinstance(self.value, Const) and self.value.is_null()

    def operands(self) -> Tuple[Operand, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"{self.fieldref} = {self.value}"


@dataclass
class Invoke(Instruction):
    """A method call.

    ``kind`` is ``"virtual"`` (dispatched through the receiver's dynamic
    type), ``"special"`` (constructors and explicit ``super`` calls) or
    ``"static"``.  ``base`` is None for static calls.
    """

    target: Optional[str]
    kind: str
    base: Optional[Local]
    methodref: MethodRef
    args: List[Operand]

    def operands(self) -> Tuple[Operand, ...]:
        ops: List[Operand] = []
        if self.base is not None:
            ops.append(self.base)
        ops.extend(self.args)
        return tuple(ops)

    def target_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        recv = f"{self.base}." if self.base is not None else ""
        lhs = f"{self.target} = " if self.target else ""
        return f"{lhs}{recv}{self.methodref.method_name}({args}) [{self.kind}]"


@dataclass
class MonitorEnter(Instruction):
    """Entry of a ``synchronized (lock) { ... }`` region."""

    lock: Local

    def operands(self) -> Tuple[Operand, ...]:
        return (self.lock,)

    def __str__(self) -> str:
        return f"monitorenter {self.lock}"


@dataclass
class MonitorExit(Instruction):
    """Exit of a ``synchronized`` region."""

    lock: Local

    def operands(self) -> Tuple[Operand, ...]:
        return (self.lock,)

    def __str__(self) -> str:
        return f"monitorexit {self.lock}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class Goto(Instruction):
    """Unconditional jump to a block label."""

    label: str

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"goto {self.label}"


@dataclass
class If(Instruction):
    """Conditional branch on a boolean operand."""

    cond: Operand
    then_label: str
    else_label: str

    def operands(self) -> Tuple[Operand, ...]:
        return (self.cond,)

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"if {self.cond} then {self.then_label} else {self.else_label}"


@dataclass
class Return(Instruction):
    """Return from the method, optionally with a value."""

    value: Optional[Operand] = None

    def operands(self) -> Tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


@dataclass
class Throw(Instruction):
    """Throw an exception named by ``exception`` (no catch in the dialect)."""

    exception: str
    value: Optional[Operand] = None

    def operands(self) -> Tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"throw {self.exception}"


TERMINATORS = (Goto, If, Return, Throw)
