"""Module-level containers: fields, methods, classes and whole programs.

A :class:`Module` is the unit of analysis: the union of all classes lowered
from an application's MiniDroid sources plus any synthetic classes added by
threadification (the dummy main).  ``Module.seal()`` assigns global uids and
allocation-site names, after which the module is treated as immutable by
the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from .cfg import ControlFlowGraph
from .instructions import FieldRef, Instruction, MethodRef, New
from .types import Type, VOID


@dataclass
class Field:
    """A member field declaration."""

    name: str
    type: Type
    is_static: bool = False
    line: int = 0


@dataclass
class Parameter:
    """A formal method parameter."""

    name: str
    type: Type


class Method:
    """One method: signature, flags and a control-flow graph."""

    def __init__(
        self,
        class_name: str,
        name: str,
        params: Optional[List[Parameter]] = None,
        return_type: Type = VOID,
        is_static: bool = False,
        is_synchronized: bool = False,
        line: int = 0,
    ) -> None:
        self.class_name = class_name
        self.name = name
        self.params = params or []
        self.return_type = return_type
        self.is_static = is_static
        self.is_synchronized = is_synchronized
        self.line = line
        self.cfg = ControlFlowGraph()

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    @property
    def arity(self) -> int:
        return len(self.params)

    def ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.name, self.arity)

    def param_names(self) -> List[str]:
        names = [] if self.is_static else ["this"]
        names.extend(p.name for p in self.params)
        return names

    def instructions(self) -> Iterator[Instruction]:
        return self.cfg.instructions()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Method {self.qualified_name}/{self.arity}>"


class ClassDef:
    """A class or interface definition."""

    def __init__(
        self,
        name: str,
        super_name: Optional[str] = None,
        interfaces: Optional[List[str]] = None,
        is_interface: bool = False,
        line: int = 0,
    ) -> None:
        self.name = name
        self.super_name = super_name
        self.interfaces = interfaces or []
        self.is_interface = is_interface
        self.line = line
        self.fields: Dict[str, Field] = {}
        self.methods: Dict[str, Method] = {}

    def add_field(self, f: Field) -> Field:
        if f.name in self.fields:
            raise ValueError(f"duplicate field {self.name}.{f.name}")
        self.fields[f.name] = f
        return f

    def add_method(self, m: Method) -> Method:
        if m.name in self.methods:
            raise ValueError(f"duplicate method {self.name}.{m.name}")
        self.methods[m.name] = m
        return m

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "interface" if self.is_interface else "class"
        return f"<{kind} {self.name}>"


class Module:
    """A whole program: every class, plus uid/site bookkeeping.

    After :meth:`seal`, every instruction has a unique ``uid`` and every
    ``New`` carries its allocation-site name.  Analyses index program points
    by uid through :meth:`instruction_at` and :meth:`method_of`.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.classes: Dict[str, ClassDef] = {}
        self._sealed = False
        self._by_uid: Dict[int, Instruction] = {}
        self._method_by_uid: Dict[int, Method] = {}
        self._supertypes_cache: Dict[str, Set[str]] = {}
        self._subclasses_cache: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------------

    def add_class(self, cls: ClassDef) -> ClassDef:
        if self._sealed:
            raise RuntimeError("module is sealed")
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls
        self._supertypes_cache.clear()
        self._subclasses_cache.clear()
        return cls

    def seal(self) -> "Module":
        """Assign uids and allocation-site names; freeze the class table."""
        uid = 0
        for cls in self.classes.values():
            for method in cls.methods.values():
                site_counter = 0
                for instr in method.instructions():
                    instr.uid = uid
                    self._by_uid[uid] = instr
                    self._method_by_uid[uid] = method
                    if isinstance(instr, New):
                        instr.site = f"{method.qualified_name}#{site_counter}"
                        site_counter += 1
                    uid += 1
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- queries --------------------------------------------------------------

    def lookup_class(self, name: str) -> Optional[ClassDef]:
        return self.classes.get(name)

    def methods(self) -> Iterator[Method]:
        for cls in self.classes.values():
            yield from cls.methods.values()

    def lookup_method(self, class_name: str, method_name: str) -> Optional[Method]:
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        return cls.methods.get(method_name)

    def instruction_at(self, uid: int) -> Instruction:
        return self._by_uid[uid]

    def method_of(self, uid: int) -> Method:
        return self._method_by_uid[uid]

    def instructions(self) -> Iterator[Instruction]:
        for method in self.methods():
            yield from method.instructions()

    # -- class hierarchy -------------------------------------------------------

    def superclasses(self, class_name: str) -> List[str]:
        """Proper superclass chain, nearest first.  Tolerates unknown roots."""
        chain: List[str] = []
        cls = self.classes.get(class_name)
        seen = {class_name}
        while cls is not None and cls.super_name and cls.super_name not in seen:
            chain.append(cls.super_name)
            seen.add(cls.super_name)
            cls = self.classes.get(cls.super_name)
        return chain

    def supertypes(self, class_name: str) -> Set[str]:
        """All transitive supertypes: superclasses plus interfaces (cached)."""
        cached = self._supertypes_cache.get(class_name)
        if cached is not None:
            return cached
        result: Set[str] = set()
        work = [class_name]
        while work:
            name = work.pop()
            cls = self.classes.get(name)
            if cls is None:
                continue
            parents = list(cls.interfaces)
            if cls.super_name:
                parents.append(cls.super_name)
            for parent in parents:
                if parent not in result:
                    result.add(parent)
                    work.append(parent)
        self._supertypes_cache[class_name] = result
        return result

    def is_subtype(self, sub: str, sup: str) -> bool:
        return sub == sup or sup in self.supertypes(sub)

    def subclasses(self, class_name: str) -> Set[str]:
        """All classes (transitively) deriving from or implementing a type
        (cached)."""
        cached = self._subclasses_cache.get(class_name)
        if cached is not None:
            return cached
        result = {
            name
            for name in self.classes
            if name != class_name and class_name in self.supertypes(name)
        }
        self._subclasses_cache[class_name] = result
        return result

    def resolve_field(self, class_name: str, field_name: str) -> Optional[FieldRef]:
        """Resolve a field access to the class that declares the field."""
        for name in [class_name, *self.superclasses(class_name)]:
            cls = self.classes.get(name)
            if cls is not None and field_name in cls.fields:
                return FieldRef(name, field_name)
        return None

    def resolve_method(self, class_name: str, method_name: str) -> Optional[Method]:
        """Resolve a virtual call against the hierarchy (nearest declaration)."""
        for name in [class_name, *self.superclasses(class_name)]:
            method = self.lookup_method(name, method_name)
            if method is not None:
                return method
        return None
