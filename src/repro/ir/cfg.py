"""Basic blocks and control-flow graphs for IR methods.

A :class:`BasicBlock` is a labelled list of instructions ending in a
terminator.  The :class:`ControlFlowGraph` owns the blocks of one method and
answers successor/predecessor and ordering queries used by the data-flow
analyses (intra-allocation filter, lockset, if-guard dominance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .instructions import Goto, If, Instruction, Return, Throw


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with a unique label."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successor_labels(self) -> Tuple[str, ...]:
        term = self.terminator
        if isinstance(term, Goto):
            return (term.label,)
        if isinstance(term, If):
            return (term.then_label, term.else_label)
        if isinstance(term, (Return, Throw)):
            return ()
        return ()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __str__(self) -> str:
        body = "\n".join(f"    {i}" for i in self.instructions)
        return f"  {self.label}:\n{body}"


class ControlFlowGraph:
    """The control-flow graph of a single method."""

    def __init__(self, entry_label: str = "entry") -> None:
        self.entry_label = entry_label
        self.blocks: Dict[str, BasicBlock] = {}
        self._order: List[str] = []

    # -- construction -------------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        self._order.append(block.label)
        return block

    def new_block(self, label: str) -> BasicBlock:
        return self.add_block(BasicBlock(label))

    # -- queries ------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_label]

    def block_order(self) -> List[BasicBlock]:
        """Blocks in insertion order (the order lowering emitted them)."""
        return [self.blocks[label] for label in self._order]

    def successors(self, label: str) -> Tuple[str, ...]:
        return self.blocks[label].successor_labels()

    def predecessors(self, label: str) -> List[str]:
        return [
            b.label for b in self.blocks.values() if label in b.successor_labels()
        ]

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse postorder from the entry (forward dataflow order)."""
        seen: Set[str] = set()
        post: List[str] = []

        def visit(label: str) -> None:
            if label in seen or label not in self.blocks:
                return
            seen.add(label)
            for succ in self.successors(label):
                visit(succ)
            post.append(label)

        visit(self.entry_label)
        return [self.blocks[label] for label in reversed(post)]

    def instructions(self) -> Iterator[Instruction]:
        """All instructions, in insertion (roughly source) order."""
        for block in self.block_order():
            yield from block.instructions

    def reachable_labels(self) -> Set[str]:
        return {b.label for b in self.reverse_postorder()}

    def instruction_index(self) -> Dict[int, Tuple[str, int]]:
        """Map instruction uid -> (block label, index within block)."""
        index: Dict[int, Tuple[str, int]] = {}
        for block in self.block_order():
            for i, instr in enumerate(block.instructions):
                index[instr.uid] = (block.label, i)
        return index

    # -- validation helpers --------------------------------------------------

    def check(self) -> List[str]:
        """Return a list of structural problems (empty when well-formed)."""
        problems: List[str] = []
        if self.entry_label not in self.blocks:
            problems.append(f"missing entry block {self.entry_label!r}")
        for block in self.blocks.values():
            if block.terminator is None:
                problems.append(f"block {block.label!r} lacks a terminator")
            for i, instr in enumerate(block.instructions[:-1]):
                if instr.is_terminator():
                    problems.append(
                        f"block {block.label!r} has a terminator at position {i}"
                    )
            for succ in block.successor_labels():
                if succ not in self.blocks:
                    problems.append(
                        f"block {block.label!r} jumps to unknown label {succ!r}"
                    )
        return problems
