"""Structural well-formedness checks for IR modules.

The verifier catches lowering bugs early: unterminated blocks, jumps to
missing labels, reads of never-written locals, duplicate definitions and
dangling super/interface references.  It reports problems rather than
raising, so tests can assert on the exact message set.
"""

from __future__ import annotations

from typing import List, Set

from .instructions import Local
from .module import Method, Module


def verify_method(method: Method, module: Module) -> List[str]:
    if not method.cfg.blocks:
        return []  # abstract / interface method: no body to check
    problems = [
        f"{method.qualified_name}: {p}" for p in method.cfg.check()
    ]

    defined: Set[str] = set(method.param_names())
    for instr in method.instructions():
        target = instr.target_local()
        if target is not None:
            defined.add(target)

    for instr in method.instructions():
        for op in instr.operands():
            if isinstance(op, Local) and op.name not in defined:
                problems.append(
                    f"{method.qualified_name}: read of undefined local "
                    f"{op.name!r} at line {instr.line}"
                )
    return problems


def verify_module(module: Module, known_external: Set[str] = frozenset()) -> List[str]:
    """Verify every method plus hierarchy references.

    ``known_external`` lists type names that are allowed to be undeclared in
    the module (the Android framework classes supplied by the registry).
    """
    problems: List[str] = []
    for cls in module.classes.values():
        if cls.super_name and cls.super_name not in module.classes \
                and cls.super_name not in known_external:
            problems.append(
                f"{cls.name}: unknown superclass {cls.super_name!r}"
            )
        for iface in cls.interfaces:
            if iface not in module.classes and iface not in known_external:
                problems.append(f"{cls.name}: unknown interface {iface!r}")
        for method in cls.methods.values():
            problems.extend(verify_method(method, module))
    return problems
