"""Imperative construction helper for IR methods.

The lowering pass and the threadifier both need to emit IR; the builder
keeps track of the current block, generates fresh temporaries and labels,
and guarantees that every emitted block ends in a terminator.
"""

from __future__ import annotations

from typing import List, Optional

from .cfg import BasicBlock
from .instructions import (
    Assign,
    BinaryOp,
    Const,
    FieldRef,
    GetField,
    GetStatic,
    Goto,
    If,
    Instruction,
    Invoke,
    Local,
    MethodRef,
    MonitorEnter,
    MonitorExit,
    New,
    Operand,
    PutField,
    PutStatic,
    Return,
    Throw,
    UnaryOp,
)
from .module import Method


class IRBuilder:
    """Emit instructions into a :class:`Method`, one block at a time."""

    def __init__(self, method: Method) -> None:
        self.method = method
        self._temp_counter = 0
        self._label_counter = 0
        self._current: Optional[BasicBlock] = None
        self.position_at_new_block(method.cfg.entry_label)

    # -- block management ----------------------------------------------------

    def fresh_label(self, hint: str = "bb") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def fresh_temp(self, hint: str = "t") -> str:
        self._temp_counter += 1
        return f"${hint}{self._temp_counter}"

    def position_at_new_block(self, label: Optional[str] = None) -> BasicBlock:
        block = self.method.cfg.new_block(label or self.fresh_label())
        self._current = block
        return block

    def position_at(self, block: BasicBlock) -> None:
        self._current = block

    @property
    def current_block(self) -> BasicBlock:
        assert self._current is not None
        return self._current

    @property
    def terminated(self) -> bool:
        return self.current_block.terminator is not None

    def emit(self, instr: Instruction, line: int = 0) -> Instruction:
        if self.terminated:
            # Unreachable code after return/goto: park it in a fresh block so
            # the CFG stays well-formed (the verifier flags it as unreachable).
            self.position_at_new_block(self.fresh_label("dead"))
        if line:
            instr.line = line
        self.current_block.instructions.append(instr)
        return instr

    # -- instruction helpers ---------------------------------------------------

    def assign(self, target: str, source: Operand, line: int = 0) -> Instruction:
        return self.emit(Assign(target, source), line)

    def const_into_temp(self, value, line: int = 0) -> Local:
        temp = self.fresh_temp()
        self.assign(temp, Const(value), line)
        return Local(temp)

    def binary(self, op: str, lhs: Operand, rhs: Operand, line: int = 0) -> Local:
        temp = self.fresh_temp()
        self.emit(BinaryOp(temp, op, lhs, rhs), line)
        return Local(temp)

    def unary(self, op: str, operand: Operand, line: int = 0) -> Local:
        temp = self.fresh_temp()
        self.emit(UnaryOp(temp, op, operand), line)
        return Local(temp)

    def new(self, class_name: str, target: Optional[str] = None, line: int = 0) -> Local:
        target = target or self.fresh_temp("obj")
        self.emit(New(target, class_name), line)
        return Local(target)

    def get_field(
        self, base: Local, fieldref: FieldRef, target: Optional[str] = None, line: int = 0
    ) -> Local:
        target = target or self.fresh_temp()
        self.emit(GetField(target, base, fieldref), line)
        return Local(target)

    def put_field(self, base: Local, fieldref: FieldRef, value: Operand, line: int = 0) -> None:
        self.emit(PutField(base, fieldref, value), line)

    def get_static(self, fieldref: FieldRef, target: Optional[str] = None, line: int = 0) -> Local:
        target = target or self.fresh_temp()
        self.emit(GetStatic(target, fieldref), line)
        return Local(target)

    def put_static(self, fieldref: FieldRef, value: Operand, line: int = 0) -> None:
        self.emit(PutStatic(fieldref, value), line)

    def invoke(
        self,
        kind: str,
        base: Optional[Local],
        methodref: MethodRef,
        args: Optional[List[Operand]] = None,
        target: Optional[str] = None,
        line: int = 0,
    ) -> Optional[Local]:
        self.emit(Invoke(target, kind, base, methodref, list(args or [])), line)
        return Local(target) if target else None

    def call_virtual(
        self,
        base: Local,
        class_name: str,
        method_name: str,
        args: Optional[List[Operand]] = None,
        target: Optional[str] = None,
        line: int = 0,
    ) -> Optional[Local]:
        ref = MethodRef(class_name, method_name, len(args or []))
        return self.invoke("virtual", base, ref, args, target, line)

    def monitor_enter(self, lock: Local, line: int = 0) -> None:
        self.emit(MonitorEnter(lock), line)

    def monitor_exit(self, lock: Local, line: int = 0) -> None:
        self.emit(MonitorExit(lock), line)

    # -- terminators -------------------------------------------------------------

    def goto(self, label: str, line: int = 0) -> None:
        if not self.terminated:
            self.emit(Goto(label), line)

    def branch(self, cond: Operand, then_label: str, else_label: str, line: int = 0) -> None:
        if not self.terminated:
            self.emit(If(cond, then_label, else_label), line)

    def ret(self, value: Optional[Operand] = None, line: int = 0) -> None:
        if not self.terminated:
            self.emit(Return(value), line)

    def throw(self, exception: str, value: Optional[Operand] = None, line: int = 0) -> None:
        if not self.terminated:
            self.emit(Throw(exception, value), line)

    def finish(self) -> Method:
        """Terminate any fall-through block with a bare return."""
        for block in self.method.cfg.block_order():
            if block.terminator is None:
                block.instructions.append(Return(None))
        return self.method
