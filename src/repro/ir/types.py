"""Type model for the MiniDroid IR.

The IR is deliberately small: a handful of primitive types plus named
reference types.  Types are interned value objects -- two references to
``ClassType("A")`` compare equal and hash equally -- so analyses can use
them freely as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for all IR types."""

    name: str

    def is_reference(self) -> bool:
        return False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class PrimitiveType(Type):
    """A primitive value type (int, boolean, void)."""


@dataclass(frozen=True)
class ClassType(Type):
    """A named reference type (a class or interface)."""

    def is_reference(self) -> bool:
        return True


@dataclass(frozen=True)
class NullType(Type):
    """The type of the ``null`` literal; subtype of every reference type."""

    def is_reference(self) -> bool:
        return True


@dataclass(frozen=True)
class StringType(Type):
    """Strings are reference types but opaque to the race analysis."""

    def is_reference(self) -> bool:
        return True


INT = PrimitiveType("int")
BOOLEAN = PrimitiveType("boolean")
LONG = PrimitiveType("long")
VOID = PrimitiveType("void")
NULL = NullType("null")
STRING = StringType("String")

_PRIMITIVES = {t.name: t for t in (INT, BOOLEAN, LONG, VOID)}


def parse_type(name: str) -> Type:
    """Resolve a source-level type name to an IR type.

    Unknown names become :class:`ClassType`; the frontend performs its own
    existence checks against the class table and the Android framework
    registry, so this function never fails.
    """
    if name in _PRIMITIVES:
        return _PRIMITIVES[name]
    if name == "String":
        return STRING
    return ClassType(name)


def is_assignable(target: Type, value: Type) -> bool:
    """Shallow assignability check used by the IR verifier.

    Reference types are mutually assignable (the frontend checks the class
    hierarchy; the IR stays permissive so synthetic code such as the dummy
    main does not need precise types).
    """
    if target == value:
        return True
    if target.is_reference() and value.is_reference():
        return True
    return False
