"""MiniDroid frontend: lexer, parser and AST.

MiniDroid is the Java-like dialect in which corpus applications are
written.  It supports classes, interfaces, single inheritance, fields with
initializers, constructors, anonymous inner classes with final-local
capture, ``synchronized`` blocks, and the control flow needed by real
Android code (if/else, while, early returns, throw).
"""

from . import ast
from .errors import LexError, LoweringError, ParseError, SourceError
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program

__all__ = [
    "ast",
    "Lexer",
    "LexError",
    "LoweringError",
    "ParseError",
    "Parser",
    "parse_program",
    "SourceError",
    "tokenize",
]
