"""Token definitions for the MiniDroid lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Union


class TokenType(Enum):
    # literals and identifiers
    IDENT = auto()
    INT_LITERAL = auto()
    STRING_LITERAL = auto()

    # keywords
    CLASS = auto()
    INTERFACE = auto()
    EXTENDS = auto()
    IMPLEMENTS = auto()
    STATIC = auto()
    SYNCHRONIZED = auto()
    FINAL = auto()
    PUBLIC = auto()
    PRIVATE = auto()
    PROTECTED = auto()
    VOID = auto()
    INT = auto()
    LONG = auto()
    BOOLEAN = auto()
    IF = auto()
    ELSE = auto()
    WHILE = auto()
    RETURN = auto()
    NEW = auto()
    THIS = auto()
    SUPER = auto()
    NULL = auto()
    TRUE = auto()
    FALSE = auto()
    THROW = auto()

    # punctuation
    LBRACE = auto()
    RBRACE = auto()
    LPAREN = auto()
    RPAREN = auto()
    SEMI = auto()
    COMMA = auto()
    DOT = auto()
    AT = auto()

    # operators
    ASSIGN = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    AND = auto()
    OR = auto()
    NOT = auto()

    EOF = auto()


KEYWORDS = {
    "class": TokenType.CLASS,
    "interface": TokenType.INTERFACE,
    "extends": TokenType.EXTENDS,
    "implements": TokenType.IMPLEMENTS,
    "static": TokenType.STATIC,
    "synchronized": TokenType.SYNCHRONIZED,
    "final": TokenType.FINAL,
    "public": TokenType.PUBLIC,
    "private": TokenType.PRIVATE,
    "protected": TokenType.PROTECTED,
    "void": TokenType.VOID,
    "int": TokenType.INT,
    "long": TokenType.LONG,
    "boolean": TokenType.BOOLEAN,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "return": TokenType.RETURN,
    "new": TokenType.NEW,
    "this": TokenType.THIS,
    "super": TokenType.SUPER,
    "null": TokenType.NULL,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "throw": TokenType.THROW,
}

# Single- and double-character punctuation, longest match first.
PUNCTUATION = [
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
    ("{", TokenType.LBRACE),
    ("}", TokenType.RBRACE),
    ("(", TokenType.LPAREN),
    (")", TokenType.RPAREN),
    (";", TokenType.SEMI),
    (",", TokenType.COMMA),
    (".", TokenType.DOT),
    ("@", TokenType.AT),
    ("=", TokenType.ASSIGN),
    ("<", TokenType.LT),
    (">", TokenType.GT),
    ("+", TokenType.PLUS),
    ("-", TokenType.MINUS),
    ("*", TokenType.STAR),
    ("/", TokenType.SLASH),
    ("%", TokenType.PERCENT),
    ("!", TokenType.NOT),
]

TYPE_KEYWORDS = {
    TokenType.VOID: "void",
    TokenType.INT: "int",
    TokenType.LONG: "long",
    TokenType.BOOLEAN: "boolean",
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Union[str, int]
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.type.name}({self.value!r})@{self.line}:{self.column}"
