"""Hand-written lexer for the MiniDroid dialect.

Supports line (``//``) and block (``/* */``) comments, decimal integers,
double-quoted strings with the common escapes, identifiers and the keyword
and punctuation tables in :mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError
from .tokens import KEYWORDS, PUNCTUATION, Token, TokenType

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r", "0": "\0"}


class Lexer:
    """Tokenize one MiniDroid source string."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- character helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column, self.filename)

    # -- skipping ----------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise LexError(
                            "unterminated block comment",
                            start_line, start_col, self.filename,
                        )
                    self._advance()
                self._advance(2)
            else:
                return

    # -- token producers -----------------------------------------------------------

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", line, column, self.filename)
            if ch == '"':
                self._advance()
                return Token(TokenType.STRING_LITERAL, "".join(chars), line, column)
            if ch == "\\":
                esc = self._peek(1)
                if esc not in _ESCAPES:
                    raise self._error(f"unknown escape sequence \\{esc}")
                chars.append(_ESCAPES[esc])
                self._advance(2)
            else:
                chars.append(ch)
                self._advance()

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        digits: List[str] = []
        while self._peek().isdigit():
            digits.append(self._peek())
            self._advance()
        if self._peek().isalpha() and self._peek() not in "lL":
            raise self._error(f"malformed number near {''.join(digits)!r}")
        if self._peek() and self._peek() in "lL":  # long suffix, value kept as int
            self._advance()
        return Token(TokenType.INT_LITERAL, int("".join(digits)), line, column)

    def _lex_word(self) -> Token:
        line, column = self.line, self.column
        chars: List[str] = []
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            chars.append(self._peek())
            self._advance()
        word = "".join(chars)
        ttype = KEYWORDS.get(word, TokenType.IDENT)
        return Token(ttype, word, line, column)

    def _lex_punct(self) -> Token:
        line, column = self.line, self.column
        for text, ttype in PUNCTUATION:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(ttype, text, line, column)
        raise self._error(f"unexpected character {self._peek()!r}")

    # -- public API ----------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            ch = self._peek()
            if not ch:
                yield Token(TokenType.EOF, "", self.line, self.column)
                return
            if ch == '"':
                yield self._lex_string()
            elif ch.isdigit():
                yield self._lex_number()
            elif ch.isalpha() or ch in "_$":
                yield self._lex_word()
            else:
                yield self._lex_punct()


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize a source string into a list ending with an EOF token."""
    return list(Lexer(source, filename).tokens())
