"""Abstract syntax tree for the MiniDroid dialect.

The AST mirrors the source closely; all desugaring (anonymous classes,
implicit ``this``, field initializers, chained accesses) happens in the
lowering pass.  Every node carries its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    pass


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class Name(Expr):
    """A bare identifier: a local, parameter, field, or class name.

    Disambiguated during lowering against the lexical scope, the class
    hierarchy, and the module class table.
    """

    ident: str


@dataclass
class FieldAccess(Expr):
    """``target.name`` -- instance field read, or static read when ``target``
    names a class."""

    target: Expr
    name: str


@dataclass
class Call(Expr):
    """``target.name(args)``; ``target is None`` means an implicit-this or
    same-class-static call."""

    target: Optional[Expr]
    name: str
    args: List[Expr]


@dataclass
class SuperCall(Expr):
    """``super.name(args)`` -- used by lifecycle callbacks."""

    name: str
    args: List[Expr]


@dataclass
class NewExpr(Expr):
    """``new ClassName(args)`` with an optional anonymous-class body."""

    class_name: str
    args: List[Expr]
    body: Optional[List["MemberDecl"]] = None


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assignment(Expr):
    """``target = value``; target must be a Name or FieldAccess."""

    target: Expr
    value: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class Block(Stmt):
    statements: List[Stmt]


@dataclass
class VarDecl(Stmt):
    type_name: str
    name: str
    init: Optional[Expr]
    is_final: bool = False


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt]


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]


@dataclass
class ThrowStmt(Stmt):
    exception: str


@dataclass
class SyncStmt(Stmt):
    """``synchronized (lock) { ... }``"""

    lock: Expr
    body: Block


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class MemberDecl:
    line: int = field(default=0, kw_only=True)


@dataclass
class FieldDecl(MemberDecl):
    type_name: str
    name: str
    init: Optional[Expr]
    is_static: bool = False


@dataclass
class ParamDecl:
    type_name: str
    name: str


@dataclass
class MethodDecl(MemberDecl):
    return_type: str
    name: str
    params: List[ParamDecl]
    body: Block
    is_static: bool = False
    is_synchronized: bool = False
    is_constructor: bool = False


@dataclass
class ClassDecl:
    name: str
    super_name: Optional[str]
    interfaces: List[str]
    members: List[MemberDecl]
    is_interface: bool = False
    line: int = 0

    def field_decls(self) -> List[FieldDecl]:
        return [m for m in self.members if isinstance(m, FieldDecl)]

    def method_decls(self) -> List[MethodDecl]:
        return [m for m in self.members if isinstance(m, MethodDecl)]


@dataclass
class Program:
    classes: List[ClassDecl]
    filename: str = "<source>"
