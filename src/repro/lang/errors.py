"""Source-level diagnostics for the MiniDroid frontend."""

from __future__ import annotations


class SourceError(Exception):
    """An error attributed to a location in a MiniDroid source file."""

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 filename: str = "<source>") -> None:
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename
        super().__init__(f"{filename}:{line}:{column}: {message}")


class LexError(SourceError):
    """Unrecognized or malformed token."""


class ParseError(SourceError):
    """Token stream does not match the MiniDroid grammar."""


class LoweringError(SourceError):
    """AST is grammatical but cannot be translated to IR (e.g. unresolved
    name, assignment to a non-lvalue, capture of a mutated local)."""
