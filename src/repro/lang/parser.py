"""Recursive-descent parser for the MiniDroid dialect.

Grammar (EBNF, simplified):

    program     ::= class_decl*
    class_decl  ::= annotation* ("class" | "interface") IDENT
                    ("extends" IDENT)? ("implements" IDENT ("," IDENT)*)?
                    "{" member* "}"
    member      ::= annotation* modifier* (field | method | constructor)
    field       ::= type IDENT ("=" expr)? ";"
    method      ::= type IDENT "(" params? ")" (block | ";")
    constructor ::= IDENT "(" params? ")" block          -- IDENT = class name
    stmt        ::= var_decl | if | while | return | throw
                  | synchronized | block | expr ";"
    expr        ::= assignment (right-associative) over the usual
                    ||, &&, ==/!=, relational, additive, multiplicative,
                    unary and postfix (field access / call) levels
    primary     ::= "new" IDENT "(" args? ")" anon_body?
                  | "(" expr ")" | "this" | "super" "." IDENT "(" args? ")"
                  | literal | IDENT ("(" args? ")")?

Modifiers ``public``/``private``/``protected``/``final`` and annotations are
accepted and ignored (``final`` on locals is recorded for capture checking).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import TYPE_KEYWORDS, Token, TokenType

_MODIFIERS = {
    TokenType.PUBLIC,
    TokenType.PRIVATE,
    TokenType.PROTECTED,
    TokenType.STATIC,
    TokenType.SYNCHRONIZED,
    TokenType.FINAL,
}

#: Hard bound on statement/expression nesting.  The parser is recursive
#: descent, so without a limit a pathological input (thousands of nested
#: parentheses, unary chains, or blocks) escalates into Python's
#: ``RecursionError`` -- an analyzer crash instead of a diagnostic.  Real
#: MiniDroid sources nest a handful of levels; 64 is far above anything
#: legitimate while staying well inside the interpreter's stack.
MAX_NESTING_DEPTH = 64


class Parser:
    """Parse one MiniDroid source file into an AST :class:`~ast.Program`."""

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.tokens = tokenize(source, filename)
        self.filename = filename
        self.index = 0
        self._depth = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, ttype: TokenType, offset: int = 0) -> bool:
        return self._peek(offset).type is ttype

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _match(self, ttype: TokenType) -> Optional[Token]:
        if self._at(ttype):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, what: str = "") -> Token:
        if self._at(ttype):
            return self._advance()
        token = self._peek()
        expected = what or ttype.name.lower()
        raise ParseError(
            f"expected {expected}, found {token.value!r}",
            token.line, token.column, self.filename,
        )

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column, self.filename)

    def _enter_nesting(self) -> None:
        """Count one level of recursive nesting; callers pair this with a
        ``finally: self._depth -= 1``.  Guards both the statement
        recursion (blocks/if/while) and the expression recursion
        (parentheses, unary chains, assignment right-hand sides), which
        are the two ways source text drives the parser's stack."""
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            raise self._error(
                f"nesting depth exceeds the MiniDroid limit of "
                f"{MAX_NESTING_DEPTH}"
            )

    # -- types and modifiers -----------------------------------------------------

    def _at_type(self, offset: int = 0) -> bool:
        return self._peek(offset).type in TYPE_KEYWORDS or self._at(
            TokenType.IDENT, offset
        )

    def _parse_type_name(self) -> str:
        token = self._peek()
        if token.type in TYPE_KEYWORDS:
            self._advance()
            return TYPE_KEYWORDS[token.type]
        return str(self._expect(TokenType.IDENT, "a type name").value)

    def _skip_annotations(self) -> None:
        while self._match(TokenType.AT):
            self._expect(TokenType.IDENT, "an annotation name")
            if self._match(TokenType.LPAREN):
                depth = 1
                while depth:
                    tok = self._advance()
                    if tok.type is TokenType.LPAREN:
                        depth += 1
                    elif tok.type is TokenType.RPAREN:
                        depth -= 1
                    elif tok.type is TokenType.EOF:
                        raise self._error("unterminated annotation arguments")

    def _parse_modifiers(self) -> dict:
        mods = {"static": False, "synchronized": False, "final": False}
        while self._peek().type in _MODIFIERS:
            token = self._advance()
            if token.type is TokenType.STATIC:
                mods["static"] = True
            elif token.type is TokenType.SYNCHRONIZED:
                mods["synchronized"] = True
            elif token.type is TokenType.FINAL:
                mods["final"] = True
        return mods

    # -- declarations ---------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes: List[ast.ClassDecl] = []
        while not self._at(TokenType.EOF):
            classes.append(self._parse_class())
        return ast.Program(classes, self.filename)

    def _parse_class(self) -> ast.ClassDecl:
        self._skip_annotations()
        self._parse_modifiers()  # `public class` etc.
        is_interface = False
        if self._match(TokenType.INTERFACE):
            is_interface = True
        else:
            self._expect(TokenType.CLASS, "'class' or 'interface'")
        name_token = self._expect(TokenType.IDENT, "a class name")
        super_name = None
        interfaces: List[str] = []
        if self._match(TokenType.EXTENDS):
            super_name = str(self._expect(TokenType.IDENT).value)
        if self._match(TokenType.IMPLEMENTS):
            interfaces.append(str(self._expect(TokenType.IDENT).value))
            while self._match(TokenType.COMMA):
                interfaces.append(str(self._expect(TokenType.IDENT).value))
        self._expect(TokenType.LBRACE)
        members = self._parse_members(str(name_token.value))
        self._expect(TokenType.RBRACE)
        return ast.ClassDecl(
            name=str(name_token.value),
            super_name=super_name,
            interfaces=interfaces,
            members=members,
            is_interface=is_interface,
            line=name_token.line,
        )

    def _parse_members(self, class_name: str) -> List[ast.MemberDecl]:
        members: List[ast.MemberDecl] = []
        while not self._at(TokenType.RBRACE) and not self._at(TokenType.EOF):
            members.append(self._parse_member(class_name))
        return members

    def _parse_member(self, class_name: str) -> ast.MemberDecl:
        self._skip_annotations()
        mods = self._parse_modifiers()
        start = self._peek()

        # Constructor: ClassName ( ... )
        if (
            self._at(TokenType.IDENT)
            and str(start.value) == class_name
            and self._at(TokenType.LPAREN, 1)
        ):
            self._advance()
            params = self._parse_params()
            body = self._parse_block()
            return ast.MethodDecl(
                return_type="void",
                name="<init>",
                params=params,
                body=body,
                is_static=False,
                is_synchronized=mods["synchronized"],
                is_constructor=True,
                line=start.line,
            )

        type_name = self._parse_type_name()
        name_token = self._expect(TokenType.IDENT, "a member name")
        if self._at(TokenType.LPAREN):
            params = self._parse_params()
            if self._match(TokenType.SEMI):  # abstract/interface method
                body = ast.Block([], line=name_token.line)
            else:
                body = self._parse_block()
            return ast.MethodDecl(
                return_type=type_name,
                name=str(name_token.value),
                params=params,
                body=body,
                is_static=mods["static"],
                is_synchronized=mods["synchronized"],
                line=start.line,
            )

        init = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMI)
        return ast.FieldDecl(
            type_name=type_name,
            name=str(name_token.value),
            init=init,
            is_static=mods["static"],
            line=start.line,
        )

    def _parse_params(self) -> List[ast.ParamDecl]:
        self._expect(TokenType.LPAREN)
        params: List[ast.ParamDecl] = []
        if not self._at(TokenType.RPAREN):
            while True:
                self._parse_modifiers()  # allow `final` on parameters
                type_name = self._parse_type_name()
                name = str(self._expect(TokenType.IDENT, "a parameter name").value)
                params.append(ast.ParamDecl(type_name, name))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        return params

    # -- statements --------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        lbrace = self._expect(TokenType.LBRACE)
        statements: List[ast.Stmt] = []
        while not self._at(TokenType.RBRACE) and not self._at(TokenType.EOF):
            statements.append(self._parse_stmt())
        self._expect(TokenType.RBRACE)
        return ast.Block(statements, line=lbrace.line)

    def _looks_like_var_decl(self) -> bool:
        """Lookahead: ``type name =`` / ``type name ;`` begins a declaration."""
        offset = 0
        if self._at(TokenType.FINAL):
            offset = 1
        if not self._at_type(offset):
            return False
        if not self._at(TokenType.IDENT, offset + 1):
            return False
        return self._peek(offset + 2).type in (TokenType.ASSIGN, TokenType.SEMI)

    def _parse_stmt(self) -> ast.Stmt:
        self._enter_nesting()
        try:
            return self._parse_stmt_inner()
        finally:
            self._depth -= 1

    def _parse_stmt_inner(self) -> ast.Stmt:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self._parse_block()
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.RETURN:
            self._advance()
            value = None if self._at(TokenType.SEMI) else self._parse_expr()
            self._expect(TokenType.SEMI)
            return ast.ReturnStmt(value, line=token.line)
        if token.type is TokenType.THROW:
            self._advance()
            self._expect(TokenType.NEW)
            exc = str(self._expect(TokenType.IDENT, "an exception class").value)
            self._expect(TokenType.LPAREN)
            if self._at(TokenType.STRING_LITERAL):
                self._advance()
            self._expect(TokenType.RPAREN)
            self._expect(TokenType.SEMI)
            return ast.ThrowStmt(exc, line=token.line)
        if token.type is TokenType.SYNCHRONIZED:
            self._advance()
            self._expect(TokenType.LPAREN)
            lock = self._parse_expr()
            self._expect(TokenType.RPAREN)
            body = self._parse_block()
            return ast.SyncStmt(lock, body, line=token.line)
        if self._looks_like_var_decl():
            is_final = self._match(TokenType.FINAL) is not None
            type_name = self._parse_type_name()
            name = str(self._expect(TokenType.IDENT).value)
            init = None
            if self._match(TokenType.ASSIGN):
                init = self._parse_expr()
            self._expect(TokenType.SEMI)
            return ast.VarDecl(type_name, name, init, is_final, line=token.line)
        expr = self._parse_expr()
        self._expect(TokenType.SEMI)
        return ast.ExprStmt(expr, line=token.line)

    def _parse_if(self) -> ast.Stmt:
        token = self._expect(TokenType.IF)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN)
        then_branch = self._parse_stmt()
        else_branch = None
        if self._match(TokenType.ELSE):
            else_branch = self._parse_stmt()
        return ast.IfStmt(cond, then_branch, else_branch, line=token.line)

    def _parse_while(self) -> ast.Stmt:
        token = self._expect(TokenType.WHILE)
        self._expect(TokenType.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenType.RPAREN)
        body = self._parse_stmt()
        return ast.WhileStmt(cond, body, line=token.line)

    # -- expressions ------------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_or()
        if self._at(TokenType.ASSIGN):
            token = self._advance()
            if not isinstance(lhs, (ast.Name, ast.FieldAccess)):
                raise ParseError(
                    "left-hand side of '=' must be a variable or field",
                    token.line, token.column, self.filename,
                )
            rhs = self._parse_assignment()
            return ast.Assignment(lhs, rhs, line=token.line)
        return lhs

    def _parse_binary_level(self, sub, ops) -> ast.Expr:
        lhs = sub()
        while self._peek().type in ops:
            token = self._advance()
            rhs = sub()
            lhs = ast.Binary(str(token.value), lhs, rhs, line=token.line)
        return lhs

    def _parse_or(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_and, {TokenType.OR})

    def _parse_and(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_equality, {TokenType.AND})

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_relational, {TokenType.EQ, TokenType.NE}
        )

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_additive,
            {TokenType.LT, TokenType.LE, TokenType.GT, TokenType.GE},
        )

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_multiplicative, {TokenType.PLUS, TokenType.MINUS}
        )

    def _parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_unary, {TokenType.STAR, TokenType.SLASH, TokenType.PERCENT}
        )

    def _parse_unary(self) -> ast.Expr:
        # Every expression-level recursion cycle (parenthesized primary,
        # assignment rhs, unary chain) passes through here exactly once,
        # so this is the single choke point for the expression depth guard.
        self._enter_nesting()
        try:
            token = self._peek()
            if token.type in (TokenType.NOT, TokenType.MINUS):
                self._advance()
                operand = self._parse_unary()
                return ast.Unary(str(token.value), operand, line=token.line)
            return self._parse_postfix()
        finally:
            self._depth -= 1

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at(TokenType.DOT):
            dot = self._advance()
            name = str(self._expect(TokenType.IDENT, "a member name").value)
            if self._at(TokenType.LPAREN):
                args = self._parse_args()
                expr = ast.Call(expr, name, args, line=dot.line)
            else:
                expr = ast.FieldAccess(expr, name, line=dot.line)
        return expr

    def _parse_args(self) -> List[ast.Expr]:
        self._expect(TokenType.LPAREN)
        args: List[ast.Expr] = []
        if not self._at(TokenType.RPAREN):
            while True:
                args.append(self._parse_expr())
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return ast.IntLit(int(token.value), line=token.line)
        if token.type is TokenType.STRING_LITERAL:
            self._advance()
            return ast.StrLit(str(token.value), line=token.line)
        if token.type is TokenType.TRUE:
            self._advance()
            return ast.BoolLit(True, line=token.line)
        if token.type is TokenType.FALSE:
            self._advance()
            return ast.BoolLit(False, line=token.line)
        if token.type is TokenType.NULL:
            self._advance()
            return ast.NullLit(line=token.line)
        if token.type is TokenType.THIS:
            self._advance()
            return ast.ThisExpr(line=token.line)
        if token.type is TokenType.SUPER:
            self._advance()
            self._expect(TokenType.DOT)
            name = str(self._expect(TokenType.IDENT).value)
            args = self._parse_args()
            return ast.SuperCall(name, args, line=token.line)
        if token.type is TokenType.NEW:
            self._advance()
            class_name = str(self._expect(TokenType.IDENT, "a class name").value)
            args = self._parse_args()
            body = None
            if self._at(TokenType.LBRACE):
                self._expect(TokenType.LBRACE)
                body = self._parse_members(class_name)
                self._expect(TokenType.RBRACE)
            return ast.NewExpr(class_name, args, body, line=token.line)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type is TokenType.IDENT:
            self._advance()
            if self._at(TokenType.LPAREN):
                args = self._parse_args()
                return ast.Call(None, str(token.value), args, line=token.line)
            return ast.Name(str(token.value), line=token.line)
        raise self._error(f"unexpected token {token.value!r} in expression")


@contextmanager
def _nesting_headroom() -> Iterator[None]:
    """Guarantee the parser's own depth guard fires before the
    interpreter's.

    One level of MiniDroid nesting costs ~15 interpreter frames (the
    expression-grammar cascade), so ``MAX_NESTING_DEPTH`` levels plus a
    deep caller stack (pytest, the worker pool) can reach the default
    recursion limit before ``_enter_nesting`` trips -- surfacing as a
    ``RecursionError`` instead of the clean :class:`ParseError`.  Raise
    the interpreter limit for the duration of the parse so the depth
    guard is always the binding constraint.
    """
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 20_000))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def parse_program(source: str, filename: str = "<source>") -> ast.Program:
    """Parse MiniDroid source text into an AST program."""
    with _nesting_headroom():
        return Parser(source, filename).parse_program()
