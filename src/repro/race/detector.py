"""Potential UAF detection (paper section 5).

After threadification, nAdroid runs a modified Chord:

* only use/free pairs on the same field are considered (not general races),
* lockset analysis is ignored at detection time (locks cannot prevent
  ordering violations) -- it is applied selectively by the IG/IA filters,
* MHP analysis is disabled (replaced by the HB filters of section 6).

Two accesses race when they belong to different modeled threads and their
receiver objects may alias under the k-object-sensitive points-to
analysis; static fields alias by name.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..analysis.escape import compute_escaping
from ..analysis.mhp import may_happen_in_parallel
from ..analysis.pointsto import HeapObject, PointsToResult
from ..threadify.transform import ThreadifiedProgram
from .events import AccessEvent, collect_access_events, FREE, USE
from .warnings import classify_pair, Occurrence, UafWarning, Witness


@dataclass
class DetectorOptions:
    """Knobs for the ablation study; defaults follow the paper."""

    #: restrict candidates to escaping objects (Chord's thread-escape)
    use_escape_analysis: bool = True
    #: apply forest-structural MHP at detection time (paper: off)
    use_mhp: bool = False
    #: require a common lock to *suppress* warnings at detection time
    #: (paper: off -- locks do not prevent ordering violations)
    respect_locks: bool = False
    #: solve the racy-pair relation declaratively, like Chord's
    #: Datalog/bddbddb backend ("datalog"), or with the equivalent direct
    #: joins ("imperative").  Non-default MHP/lock options force the
    #: imperative engine.
    engine: str = "datalog"


class UafDetector:
    """Detect potential UAF warnings over a threadified program."""

    def __init__(
        self,
        program: ThreadifiedProgram,
        pointsto: PointsToResult,
        options: Optional[DetectorOptions] = None,
        lockset=None,
    ) -> None:
        self.program = program
        self.pointsto = pointsto
        self.options = options or DetectorOptions()
        self.lockset = lockset
        self._escaping: Optional[Set[HeapObject]] = None

    # -- helpers -----------------------------------------------------------------

    def _base_objects(self, event: AccessEvent) -> Set[HeapObject]:
        if event.is_static:
            return set()
        assert event.base_local is not None
        return self.pointsto.pts(event.method_qname, event.base_local)

    def _escaping_objects(self) -> Set[HeapObject]:
        if self._escaping is None:
            self._escaping = compute_escaping(self.pointsto, self.program)
        return self._escaping

    def _may_alias(self, use: AccessEvent, free: AccessEvent) -> bool:
        if use.is_static and free.is_static:
            return True  # same resolved static field
        if use.is_static != free.is_static:
            return False
        overlap = self._base_objects(use) & self._base_objects(free)
        if not overlap:
            return False
        if self.options.use_escape_analysis:
            return bool(overlap & self._escaping_objects())
        return True

    def _alias_witness(self, use: AccessEvent, free: AccessEvent) -> Witness:
        """Why the two accesses can touch the same storage (section 7's
        points-to provenance: abstract field plus allocation contexts)."""
        field = f"{use.fieldref.class_name}.{use.fieldref.field_name}"
        if use.is_static:
            return Witness(
                kind="static-field",
                detail=(f"static field {field}: both accesses resolve to "
                        "the same storage by name"),
                data={"field": field},
            )
        overlap = self._base_objects(use) & self._base_objects(free)
        objects = sorted("/".join(obj) for obj in overlap)
        return Witness(
            kind="points-to",
            detail=(f"use and free bases may alias on {field}: "
                    f"{len(objects)} shared abstract object(s) under "
                    f"{self.pointsto.k}-object-sensitivity"),
            data={"field": field, "objects": objects},
        )

    def _make_occurrence(self, use: AccessEvent,
                         free: AccessEvent) -> Occurrence:
        """One provenance-carrying occurrence: pair category, both
        poster->postee lineage chains, and the aliasing witness."""
        forest = self.program.forest
        use_node = forest.node(use.node_id)
        free_node = forest.node(free.node_id)
        return Occurrence(
            use=use,
            free=free,
            pair_type=classify_pair(forest, use_node, free_node),
            use_lineage=use_node.lineage_entries(),
            free_lineage=free_node.lineage_entries(),
            alias=self._alias_witness(use, free),
        )

    def _nodes_concurrent(self, use: AccessEvent, free: AccessEvent) -> bool:
        if use.node_id == free.node_id:
            # Callbacks on one looper are atomic; an access pair inside one
            # modeled thread is ordered by program order, not a race.
            return False
        forest = self.program.forest
        node_use = forest.node(use.node_id)
        node_free = forest.node(free.node_id)
        if self.options.use_mhp and not may_happen_in_parallel(
            forest, node_use, node_free
        ):
            return False
        if self.options.respect_locks and self.lockset is not None:
            if self.lockset.common_lock(use.uid, free.uid):
                return False
        return True

    # -- detection --------------------------------------------------------------------

    @staticmethod
    def _record_funnel(events: List[AccessEvent],
                       warnings: List[UafWarning]) -> None:
        """Top of the warning funnel: events -> same-field use/free
        candidate pairs -> potential warnings (instruction pairs)."""
        uses = sum(1 for e in events if e.kind == USE)
        frees = len(events) - uses
        by_field: Dict[Tuple[str, str], List[int]] = defaultdict(
            lambda: [0, 0]
        )
        for event in events:
            key = (event.fieldref.class_name, event.fieldref.field_name)
            by_field[key][0 if event.kind == USE else 1] += 1
        candidate_pairs = sum(u * f for u, f in by_field.values())
        obs.add("detector.events.use", uses)
        obs.add("detector.events.free", frees)
        obs.add("detector.candidate_pairs", candidate_pairs)
        obs.add("detector.potential_warnings", len(warnings))
        obs.add("detector.occurrences",
                sum(len(w.occurrences) for w in warnings))
        obs.add("report.witnesses.alias",
                sum(1 for w in warnings for o in w.occurrences
                    if o.alias is not None))
        obs.add("report.lineage.entries",
                sum(len(o.use_lineage) + len(o.free_lineage)
                    for w in warnings for o in w.occurrences))

    def detect(self) -> List[UafWarning]:
        if (
            self.options.engine == "datalog"
            and not self.options.use_mhp
            and not self.options.respect_locks
        ):
            return self._detect_datalog()
        return self._detect_imperative()

    def _detect_datalog(self) -> List[UafWarning]:
        """Chord-style: solve the racy-pair relation with the Datalog
        engine (the default, mirroring the paper's bddbddb backend)."""
        from ..datalog.chord import build_race_program
        from ..datalog.engine import evaluate

        events = collect_access_events(self.program)
        dl = build_race_program(
            self.program, self.pointsto,
            use_escape=self.options.use_escape_analysis,
            events=events,
        )
        relations = evaluate(dl)
        warnings: Dict[Tuple[int, int], UafWarning] = {}
        for use_index, free_index in sorted(relations.get("racyPair", ())):
            use = events[use_index]
            free = events[free_index]
            key = (use.uid, free.uid)
            warning = warnings.get(key)
            if warning is None:
                warning = UafWarning(
                    fieldref=use.fieldref,
                    use_uid=use.uid,
                    free_uid=free.uid,
                    use_method=use.method_qname,
                    free_method=free.method_qname,
                )
                warnings[key] = warning
            warning.occurrences.append(self._make_occurrence(use, free))
        result = sorted(
            warnings.values(), key=lambda w: (w.fieldref.class_name,
                                              w.fieldref.field_name,
                                              w.use_uid, w.free_uid)
        )
        self._record_funnel(events, result)
        return result

    def _detect_imperative(self) -> List[UafWarning]:
        events = collect_access_events(self.program)
        by_field: Dict[Tuple[str, str], Dict[str, List[AccessEvent]]] = defaultdict(
            lambda: {USE: [], FREE: []}
        )
        for event in events:
            key = (event.fieldref.class_name, event.fieldref.field_name)
            by_field[key][event.kind].append(event)

        warnings: Dict[Tuple[int, int], UafWarning] = {}
        for accesses in by_field.values():
            for use in accesses[USE]:
                for free in accesses[FREE]:
                    if not self._nodes_concurrent(use, free):
                        continue
                    if not self._may_alias(use, free):
                        continue
                    key = (use.uid, free.uid)
                    warning = warnings.get(key)
                    if warning is None:
                        warning = UafWarning(
                            fieldref=use.fieldref,
                            use_uid=use.uid,
                            free_uid=free.uid,
                            use_method=use.method_qname,
                            free_method=free.method_qname,
                        )
                        warnings[key] = warning
                    warning.occurrences.append(
                        self._make_occurrence(use, free)
                    )
        result = sorted(
            warnings.values(), key=lambda w: (w.fieldref.class_name,
                                              w.fieldref.field_name,
                                              w.use_uid, w.free_uid)
        )
        self._record_funnel(events, result)
        return result


def detect_uaf_warnings(
    program: ThreadifiedProgram,
    pointsto: PointsToResult,
    options: Optional[DetectorOptions] = None,
    lockset=None,
) -> List[UafWarning]:
    """One-call wrapper around :class:`UafDetector`."""
    return UafDetector(program, pointsto, options, lockset).detect()
