"""Access-event extraction: the use/free vocabulary of section 5.

nAdroid defines a *use* as a ``getfield`` and a *free* as a ``putfield``
storing null, and only pairs a use with a free on the same field.  This
module walks application code, extracts those accesses and attributes each
to every thread-forest node whose region executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import FieldRef, GetField, GetStatic, PutField, PutStatic
from ..threadify.transform import ThreadifiedProgram

USE = "use"
FREE = "free"


@dataclass(frozen=True)
class AccessEvent:
    """One field access attributed to one modeled thread."""

    node_id: int
    method_qname: str
    uid: int
    fieldref: FieldRef   #: resolved to the declaring class
    kind: str            #: USE or FREE
    is_static: bool
    base_local: Optional[str]
    line: int

    def key(self) -> Tuple[int, int]:
        return (self.node_id, self.uid)


def _is_analysis_field(fieldref: FieldRef) -> bool:
    """Synthetic plumbing fields ($outer, $cap_*, $task, registry slots)
    are not part of the application's UAF vocabulary."""
    return not fieldref.field_name.startswith("$")


def collect_access_events(program: ThreadifiedProgram) -> List[AccessEvent]:
    """All use/free events of the application, per owning thread node."""
    module = program.module
    method_nodes: Dict[str, List[int]] = {}
    for node_id, region in program.regions.items():
        for qname in region:
            method_nodes.setdefault(qname, []).append(node_id)

    events: List[AccessEvent] = []
    for method in module.methods():
        if not program.is_app_class(method.class_name):
            continue
        qname = method.qualified_name
        nodes = method_nodes.get(qname)
        if not nodes:
            continue  # code not reachable from any modeled thread
        for instr in method.instructions():
            record: Optional[Tuple[FieldRef, str, bool, Optional[str]]] = None
            if isinstance(instr, GetField):
                record = (instr.fieldref, USE, False, instr.base.name)
            elif isinstance(instr, PutField) and instr.is_free():
                record = (instr.fieldref, FREE, False, instr.base.name)
            elif isinstance(instr, GetStatic):
                record = (instr.fieldref, USE, True, None)
            elif isinstance(instr, PutStatic) and instr.is_free():
                record = (instr.fieldref, FREE, True, None)
            if record is None:
                continue
            fieldref, kind, is_static, base = record
            resolved = module.resolve_field(
                fieldref.class_name, fieldref.field_name
            ) or fieldref
            if not _is_analysis_field(resolved):
                continue
            for node_id in nodes:
                events.append(
                    AccessEvent(
                        node_id=node_id,
                        method_qname=qname,
                        uid=instr.uid,
                        fieldref=resolved,
                        kind=kind,
                        is_static=is_static,
                        base_local=base,
                        line=instr.line,
                    )
                )
    return events
