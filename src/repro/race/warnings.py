"""Warning model: instruction-level UAF pairs with per-thread occurrences.

A *warning* is a (use instruction, free instruction) pair on one field --
the unit the paper counts in Table 1.  The same instruction pair can be
exercised by several thread pairs (the same helper method may run under
several callbacks); each such (use node, free node) combination is an
*occurrence*.  Filters prune occurrences; a warning survives while at
least one occurrence survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..ir import FieldRef
from ..threadify.model import ThreadForest, ThreadKind, ThreadNode
from .events import AccessEvent

#: Table 1 origin categories (section 7).
PAIR_EC_EC = "EC-EC"
PAIR_EC_PC = "EC-PC"
PAIR_PC_PC = "PC-PC"
PAIR_C_RT = "C-RT"
PAIR_C_NT = "C-NT"
PAIR_T_T = "T-T"

PAIR_TYPES = (PAIR_EC_EC, PAIR_EC_PC, PAIR_PC_PC, PAIR_C_RT, PAIR_C_NT, PAIR_T_T)


def classify_pair(forest: ThreadForest, a: ThreadNode, b: ThreadNode) -> str:
    """Origin category of a node pair (paper section 7)."""
    if a.is_callback and b.is_callback:
        kinds = sorted(
            ("EC" if n.kind is ThreadKind.ENTRY_CALLBACK else "PC") for n in (a, b)
        )
        return f"{kinds[0]}-{kinds[1]}"
    if a.is_callback or b.is_callback:
        callback, thread = (a, b) if a.is_callback else (b, a)
        if forest.is_reachable_thread(callback, thread):
            return PAIR_C_RT
        return PAIR_C_NT
    return PAIR_T_T


@dataclass(frozen=True)
class Witness:
    """Why one analysis decision holds: the section-7 provenance unit.

    Every filter that prunes or downgrades an occurrence produces one of
    these; the detector attaches one per occurrence for the points-to
    claim that made the pair a candidate in the first place.  ``data`` is
    JSON-safe so witnesses ride through the runner's cache envelopes and
    into reports unchanged.
    """

    #: vocabulary: ``mhb-edge``, ``guard``, ``allocation``, ``resume-hb``,
    #: ``cancel-hb``, ``post-hb``, ``return-use``, ``thread-thread``,
    #: ``points-to``, ``static-field`` (see docs/reporting.md)
    kind: str
    #: one human-readable line for the decision trail
    detail: str
    #: structured payload (endpoint nodes, lock, allocation site, ...)
    data: Dict[str, Any] = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail,
                "data": dict(self.data)}

    @staticmethod
    def from_dict(payload: Optional[Dict[str, Any]]) -> Optional["Witness"]:
        if payload is None:
            return None
        return Witness(kind=payload["kind"], detail=payload["detail"],
                       data=dict(payload.get("data", {})))


@dataclass
class Occurrence:
    """One (use node, free node) realization of a warning."""

    use: AccessEvent
    free: AccessEvent
    pair_type: str
    #: name of the sound filter that pruned this occurrence, if any
    pruned_by: Optional[str] = None
    #: name of the unsound filter that downgraded it, if any
    downgraded_by: Optional[str] = None
    #: why the pruning/downgrading filter fired (None while surviving)
    witness: Optional[Witness] = None
    #: poster->postee callback lineage of each side, root (dummy main)
    #: first -- serializable snapshot of the thread-forest paths
    use_lineage: List[Dict[str, Any]] = field(default_factory=list)
    free_lineage: List[Dict[str, Any]] = field(default_factory=list)
    #: the points-to witness that made the pair a candidate (abstract
    #: field plus the overlapping allocation contexts, or static-field)
    alias: Optional[Witness] = None

    @property
    def surviving(self) -> bool:
        return self.pruned_by is None and self.downgraded_by is None

    @property
    def surviving_sound(self) -> bool:
        return self.pruned_by is None

    @property
    def verdict(self) -> str:
        """``surviving``, ``downgraded`` or ``pruned`` (decision trail)."""
        if self.pruned_by is not None:
            return "pruned"
        if self.downgraded_by is not None:
            return "downgraded"
        return "surviving"


@dataclass
class UafWarning:
    """A potential UAF ordering violation on one field."""

    fieldref: FieldRef
    use_uid: int
    free_uid: int
    use_method: str
    free_method: str
    occurrences: List[Occurrence] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.use_uid, self.free_uid)

    def surviving_occurrences(self) -> List[Occurrence]:
        return [o for o in self.occurrences if o.surviving]

    @property
    def survives_sound(self) -> bool:
        return any(o.surviving_sound for o in self.occurrences)

    @property
    def survives_all(self) -> bool:
        return any(o.surviving for o in self.occurrences)

    @property
    def status(self) -> str:
        """Report classification: ``remaining`` (survives every filter),
        ``downgraded`` (killed only by unsound filters) or ``pruned``."""
        if self.survives_all:
            return "remaining"
        if self.survives_sound:
            return "downgraded"
        return "pruned"

    def pair_type(self) -> str:
        """Category of the warning: taken from a surviving occurrence when
        one exists, else from the first occurrence."""
        for occ in self.occurrences:
            if occ.surviving:
                return occ.pair_type
        for occ in self.occurrences:
            if occ.surviving_sound:
                return occ.pair_type
        return self.occurrences[0].pair_type if self.occurrences else PAIR_EC_EC

    def pruning_filters(self) -> Dict[str, int]:
        """How many occurrences each filter removed (diagnostics)."""
        counts: Dict[str, int] = {}
        for occ in self.occurrences:
            name = occ.pruned_by or occ.downgraded_by
            if name:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def describe(self, forest: ThreadForest) -> str:
        """Programmer-facing description with callback/thread lineage
        (the section-7 aid)."""
        lines = [
            f"potential UAF on {self.fieldref}:",
            f"  use : {self.use_method} (line {self._line('use')})",
            f"  free: {self.free_method} (line {self._line('free')})",
        ]
        shown = self.surviving_occurrences() or self.occurrences
        for occ in shown[:4]:
            use_node = forest.node(occ.use.node_id)
            free_node = forest.node(occ.free.node_id)
            lines.append(f"  [{occ.pair_type}]")
            lines.append(f"    use  thread: {use_node.describe()}")
            lines.append(f"    free thread: {free_node.describe()}")
        return "\n".join(lines)

    def _line(self, which: str) -> int:
        if not self.occurrences:
            return 0
        occ = self.occurrences[0]
        return occ.use.line if which == "use" else occ.free.line
