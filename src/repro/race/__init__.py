"""Use-after-free ordering-violation detection (paper section 5)."""

from .detector import detect_uaf_warnings, DetectorOptions, UafDetector
from .events import AccessEvent, collect_access_events, FREE, USE
from .warnings import (
    classify_pair,
    Occurrence,
    PAIR_C_NT,
    PAIR_C_RT,
    PAIR_EC_EC,
    PAIR_EC_PC,
    PAIR_PC_PC,
    PAIR_T_T,
    PAIR_TYPES,
    UafWarning,
)

__all__ = [
    "AccessEvent", "classify_pair", "collect_access_events",
    "detect_uaf_warnings", "DetectorOptions", "FREE", "Occurrence",
    "PAIR_C_NT", "PAIR_C_RT", "PAIR_EC_EC", "PAIR_EC_PC", "PAIR_PC_PC",
    "PAIR_T_T", "PAIR_TYPES", "UafDetector", "UafWarning", "USE",
]
