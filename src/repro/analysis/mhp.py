"""May-Happen-in-Parallel analysis over the thread forest.

The paper *disables* Chord's MHP analysis (section 5): blocking
synchronization is rare in Android code and flow-sensitive MHP scales
poorly; the Android-specific happens-before filters replace it.  We
implement a forest-structural MHP anyway so the ablation benchmark can
quantify that design decision.

Rule: a poster's instructions happen before everything its posted/spawned
descendants run (fork edges order parent-past against child), so a node
never runs in parallel with itself, and an ancestor's *post-free* code is
ordered before its descendants.  Lacking flow sensitivity we conservatively
treat ancestor/descendant pairs as ordered only when the descendant is a
posted callback on the same looper (atomic callbacks cannot interleave
with their poster); everything else may happen in parallel.
"""

from __future__ import annotations

from ..threadify.model import ThreadForest, ThreadNode


def may_happen_in_parallel(
    forest: ThreadForest, a: ThreadNode, b: ThreadNode
) -> bool:
    """Conservative forest-structural MHP."""
    if a is b:
        # Callbacks on one looper are atomic and cannot overlap themselves;
        # a native thread class could be spawned twice, so it may self-race.
        return a.is_native
    # Same-looper posted callback vs its poster: strictly ordered
    # (poster completes before the postee is dispatched).
    if forest.same_looper(a, b):
        if b in a.ancestors() or a in b.ancestors():
            return False
    return True
