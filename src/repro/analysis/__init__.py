"""Chord-style static analyses over the threadified IR (paper section 5)."""

from .callgraph import (
    build_cha_callgraph,
    CallGraph,
    dispatch_targets,
    instantiated_classes,
)
from .dataflow import ForwardDataflow, run_forward
from .escape import compute_escaping, multi_region_objects, static_reachable
from .lockset import LocksetAnalysis
from .mhp import may_happen_in_parallel
from .pointsto import (
    Context,
    HeapObject,
    PointsToAnalysis,
    PointsToResult,
    run_pointsto,
)

__all__ = [
    "build_cha_callgraph", "CallGraph", "compute_escaping", "Context",
    "dispatch_targets", "ForwardDataflow", "HeapObject",
    "instantiated_classes", "LocksetAnalysis", "may_happen_in_parallel",
    "multi_region_objects", "PointsToAnalysis", "PointsToResult",
    "run_forward", "run_pointsto", "static_reachable",
]
