"""Lockset analysis (paper section 5/6.1).

nAdroid ignores locks for *detection* (locks provide atomicity, not
ordering) but uses Chord's lockset analysis *selectively* inside the
If-Guard and Intra-Allocation filters: a guard is only trustworthy across
threads when the use and the free hold a common lock.

The analysis is a must-analysis: a lock is in the set at a program point
only if it is held on **every** path there.  Lock identity is resolved
through points-to; two sites hold a *common lock* when some singleton
abstract lock object is must-held at both.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from .. import obs
from ..ir import Instruction, Local, Method, Module, MonitorEnter, MonitorExit
from .dataflow import run_forward
from .pointsto import HeapObject, PointsToResult

#: A held lock: the frozen points-to set of the monitor operand.
LockToken = FrozenSet[HeapObject]
LockState = FrozenSet[LockToken]


class LocksetAnalysis:
    """Compute must-held locksets for every instruction of a module."""

    def __init__(self, module: Module, pointsto: PointsToResult) -> None:
        self.module = module
        self.pointsto = pointsto
        self._cache: Dict[str, Dict[int, LockState]] = {}

    def _lock_token(self, method: Method, operand: Local) -> Optional[LockToken]:
        objs = self.pointsto.pts(method.qualified_name, operand.name)
        if not objs:
            return None
        return frozenset(objs)

    def _method_locks(self, method: Method) -> Dict[int, LockState]:
        qname = method.qualified_name
        if qname in self._cache:
            obs.add("lockset.cache_hits")
            return self._cache[qname]
        obs.add("lockset.methods_analyzed")

        def transfer(instr: Instruction, state: LockState) -> LockState:
            if isinstance(instr, MonitorEnter):
                token = self._lock_token(method, instr.lock)
                if token is not None:
                    return state | {token}
            elif isinstance(instr, MonitorExit):
                token = self._lock_token(method, instr.lock)
                if token is not None:
                    return state - {token}
            return state

        def join(a: LockState, b: LockState) -> LockState:
            return a & b  # must-analysis: intersect at merges

        entry: LockState = frozenset()
        result = run_forward(method, entry, transfer, join)
        self._cache[qname] = result
        return result

    def locks_at(self, uid: int) -> LockState:
        """Must-held locks immediately before the instruction with ``uid``."""
        method = self.module.method_of(uid)
        return self._method_locks(method).get(uid, frozenset())

    def common_lock(self, uid_a: int, uid_b: int) -> bool:
        """Do two program points must-hold a common concrete lock?

        Requires a *singleton* abstract lock object present in a held token
        at both points -- the must-alias condition that makes the common
        lock sound.
        """
        return self.common_lock_witness(uid_a, uid_b) is not None

    def common_lock_witness(self, uid_a: int,
                            uid_b: int) -> Optional[HeapObject]:
        """The common must-held singleton lock object, when one exists.

        Same condition as :meth:`common_lock`, but names the witness: the
        smallest (lexicographically) shared abstract lock, so filter
        provenance can report *which* lock made a guard trustworthy.
        """
        locks_a = self.locks_at(uid_a)
        locks_b = self.locks_at(uid_b)
        singletons_a = {next(iter(t)) for t in locks_a if len(t) == 1}
        singletons_b = {next(iter(t)) for t in locks_b if len(t) == 1}
        shared = singletons_a & singletons_b
        if not shared:
            return None
        return min(shared)
