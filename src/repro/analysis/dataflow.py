"""Generic intra-procedural forward data-flow framework.

Clients (the lockset analysis and the IG/IA/MA filters) supply a transfer
function over immutable states plus a join; the engine iterates blocks in
reverse postorder to a fixpoint and exposes the state *before* every
instruction, keyed by uid.

States must be hashable/immutable (frozensets, tuples); the engine treats
``None`` as bottom (unreachable).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Optional, TypeVar

from ..ir import Instruction, Method

S = TypeVar("S")


class ForwardDataflow(Generic[S]):
    """Forward may/must analysis over one method's CFG."""

    def __init__(
        self,
        method: Method,
        entry_state: S,
        transfer: Callable[[Instruction, S], S],
        join: Callable[[S, S], S],
    ) -> None:
        self.method = method
        self.entry_state = entry_state
        self.transfer = transfer
        self.join = join

    def run(self) -> Dict[int, S]:
        """Return the in-state of every instruction, keyed by uid."""
        cfg = self.method.cfg
        if not cfg.blocks:
            return {}
        block_in: Dict[str, Optional[S]] = {label: None for label in cfg.blocks}
        block_in[cfg.entry_label] = self.entry_state

        changed = True
        while changed:
            changed = False
            for block in cfg.reverse_postorder():
                state = block_in[block.label]
                if state is None:
                    continue
                for instr in block.instructions:
                    state = self.transfer(instr, state)
                for succ in block.successor_labels():
                    current = block_in.get(succ)
                    merged = state if current is None else self.join(current, state)
                    if merged != current:
                        block_in[succ] = merged
                        changed = True

        instr_in: Dict[int, S] = {}
        for block in cfg.reverse_postorder():
            state = block_in[block.label]
            if state is None:
                continue
            for instr in block.instructions:
                instr_in[instr.uid] = state
                state = self.transfer(instr, state)
        return instr_in


def run_forward(
    method: Method,
    entry_state: S,
    transfer: Callable[[Instruction, S], S],
    join: Callable[[S, S], S],
) -> Dict[int, S]:
    """One-call helper around :class:`ForwardDataflow`."""
    return ForwardDataflow(method, entry_state, transfer, join).run()
