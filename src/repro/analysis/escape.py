"""Thread-escape analysis.

Chord restricts race candidates to objects that escape their creating
thread.  In the threadified program an abstract object escapes when it is

* reachable from a static field (including the synthetic ``$Registry``
  channels through which every posted callback flows), or
* held by locals of methods belonging to at least two distinct thread
  regions (e.g. an Activity instance shared by its lifecycle callbacks).

The race detector uses the result as a cheap pre-filter; disabling it is
one of the ablation benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set, TYPE_CHECKING

from .pointsto import HeapObject, PointsToResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..threadify.transform import ThreadifiedProgram


def static_reachable(pointsto: PointsToResult) -> Set[HeapObject]:
    """Objects transitively reachable from any static field."""
    reached: Set[HeapObject] = set()
    work = [obj for objs in pointsto.static_pts.values() for obj in objs]
    while work:
        obj = work.pop()
        if obj in reached:
            continue
        reached.add(obj)
        for (base, _ref), objs in pointsto.field_pts.items():
            if base == obj:
                for succ in objs:
                    if succ not in reached:
                        work.append(succ)
    return reached


def multi_region_objects(
    pointsto: PointsToResult, program: "ThreadifiedProgram"
) -> Set[HeapObject]:
    """Objects held by locals in two or more distinct thread regions."""
    owner_nodes: Dict[HeapObject, Set[int]] = defaultdict(set)
    method_nodes: Dict[str, Set[int]] = defaultdict(set)
    for node_id, region in program.regions.items():
        for qname in region:
            method_nodes[qname].add(node_id)
    for (qname, _ctx, _local), objs in pointsto.var_pts.items():
        nodes = method_nodes.get(qname)
        if not nodes:
            continue
        for obj in objs:
            owner_nodes[obj] |= nodes
    return {obj for obj, nodes in owner_nodes.items() if len(nodes) >= 2}


def compute_escaping(
    pointsto: PointsToResult, program: "ThreadifiedProgram"
) -> Set[HeapObject]:
    """All escaping abstract objects (union of both escape conditions)."""
    return static_reachable(pointsto) | multi_region_objects(pointsto, program)
