"""k-object-sensitive points-to analysis (paper section 5).

Chord performs static race detection on top of a k-object-sensitive
points-to analysis [Milanova et al.].  This module reimplements that
analysis over the MiniDroid IR:

* **Heap abstraction** -- an abstract object is a tuple of at most ``k``
  allocation sites: the site itself followed by the (truncated) context of
  the allocating method's receiver.  Heap-object and context tuples are
  interned, so equal abstractions share one instance across the whole run.
* **Method contexts** -- an instance method is analyzed once per abstract
  receiver object; static methods are analyzed in the empty context, which
  reproduces the imprecision the paper calls out in section 8.5 ("objects
  created by a static method (no context) do not take advantage of
  k-object-sensitive pointer analysis").
* **On-the-fly call graph** -- virtual calls dispatch through the points-to
  set of the receiver, yielding a context-sensitive call graph as a side
  product.

The analysis is flow-insensitive (like Chord's) and runs to a global
fixpoint from the synthetic ``DummyMain.main`` entry point.

**Worklist solver.**  The fixpoint is demand-driven: while a
``(method, context)`` pair is processed, every points-to slot it reads
(variable, field, or static) is recorded as a dependency edge, and a
write that grows a slot re-enqueues exactly the pairs that read it --
instead of re-processing every reachable pair until global quiescence.
Pairs are processed in rounds; within a round the frontier is sorted, so
the schedule (and therefore every ``pointsto.*`` counter) is independent
of hash seeds and worker processes.  The least fixpoint itself is unique
(the transfer functions are monotone over finite lattices), so the
result is identical to the exhaustive solver's, pair for pair.

Hotspot attribution (see :mod:`repro.obs.hotspots`): each processed
``(method, context)`` pair records its pop count and cumulative
``_process`` wall time as ``hotspot.pointsto.pair.<qname>@<ctx>.pops``
(counter, deterministic) and ``....seconds`` (gauge, measurement).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from .. import obs
from ..ir import (
    Assign,
    Const,
    FieldRef,
    GetField,
    GetStatic,
    Invoke,
    Local,
    Method,
    Module,
    New,
    PutField,
    PutStatic,
    Return,
)

#: An abstract heap object: (allocation site, caller sites...) with length <= k,
#: or length 1 when k == 0 (context-insensitive heap naming).
HeapObject = Tuple[str, ...]
#: A method analysis context: the abstract receiver object, or () for static.
Context = Tuple[str, ...]

RETURN_LOCAL = "$ret"

#: divergence guard for the worklist solver (the exhaustive solver used
#: 1000 global passes; this is the equivalent per-pair budget)
MAX_PROCESSINGS = 1_000_000


@dataclass
class PointsToResult:
    """Result bundle: variable/field points-to sets and the CS call graph."""

    module: Module
    k: int
    #: (method qname, context, local name) -> heap objects
    var_pts: Dict[Tuple[str, Context, str], Set[HeapObject]]
    #: (heap object, field ref) -> heap objects
    field_pts: Dict[Tuple[HeapObject, FieldRef], Set[HeapObject]]
    #: static field ref -> heap objects
    static_pts: Dict[FieldRef, Set[HeapObject]]
    #: allocation site -> allocated class
    site_class: Dict[str, str]
    #: (caller qname, context, site uid) -> {(callee qname, callee context)}
    cs_call_edges: Dict[Tuple[str, Context, int], Set[Tuple[str, Context]]]
    #: method qname -> contexts it was analyzed under
    contexts: Dict[str, Set[Context]]

    # -- queries ---------------------------------------------------------------

    def pts(self, method_qname: str, local: str,
            ctx: Optional[Context] = None) -> Set[HeapObject]:
        """Points-to set of a local; union over contexts when ctx is None."""
        if ctx is not None:
            return self.var_pts.get((method_qname, ctx, local), set())
        result: Set[HeapObject] = set()
        for context in self.contexts.get(method_qname, ()):
            result |= self.var_pts.get((method_qname, context, local), set())
        return result

    def class_of(self, obj: HeapObject) -> str:
        return self.site_class[obj[0]]

    def classes_of(self, objs: Iterable[HeapObject]) -> Set[str]:
        return {self.class_of(o) for o in objs}

    def ci_call_edges(self) -> Dict[str, Set[Tuple[int, str]]]:
        """Project the CS call graph to a context-insensitive multigraph."""
        edges: Dict[str, Set[Tuple[int, str]]] = defaultdict(set)
        for (caller, _ctx, uid), callees in self.cs_call_edges.items():
            for callee, _cctx in callees:
                edges[caller].add((uid, callee))
        return dict(edges)

    def reachable_methods(self) -> Set[str]:
        return set(self.contexts)

    def average_pts_size(self) -> float:
        """Mean points-to set size over non-empty variable slots (an
        ablation metric for the k sweep)."""
        sizes = [len(s) for s in self.var_pts.values() if s]
        return sum(sizes) / len(sizes) if sizes else 0.0


#: a unit of worklist work: one (method qname, context) pair
Pair = Tuple[str, Context]


class PointsToAnalysis:
    """Run the analysis on a sealed module."""

    def __init__(self, module: Module, k: int = 2,
                 entry: str = "DummyMain.main") -> None:
        if not module.sealed:
            raise ValueError("points-to analysis requires a sealed module")
        self.module = module
        self.k = max(0, k)
        self.entry = entry
        self.var_pts: Dict[Tuple[str, Context, str], Set[HeapObject]] = defaultdict(set)
        self.field_pts: Dict[Tuple[HeapObject, FieldRef], Set[HeapObject]] = defaultdict(set)
        self.static_pts: Dict[FieldRef, Set[HeapObject]] = defaultdict(set)
        self.site_class: Dict[str, str] = {}
        self.cs_call_edges: Dict[Tuple[str, Context, int], Set[Tuple[str, Context]]] = defaultdict(set)
        self.contexts: Dict[str, Set[Context]] = defaultdict(set)
        # -- worklist machinery ------------------------------------------------
        #: slot key -> pairs that read it; slot keys are
        #: ("v", method, ctx, local) / ("f", obj, ref) / ("s", ref)
        self._readers: Dict[Tuple, Set[Pair]] = defaultdict(set)
        #: the pair currently being processed (dependency sink)
        self._current: Optional[Pair] = None
        #: pairs dirtied for the *next* round
        self._dirty: Set[Pair] = set()
        #: unprocessed remainder of the *current* round's frontier
        self._in_frontier: Set[Pair] = set()
        #: interning table for heap-object / context tuples
        self._interned: Dict[Tuple[str, Context], HeapObject] = {}
        self._pushed = 0
        self._popped = 0
        self._skipped = 0

    # -- worklist helpers -------------------------------------------------------

    def _push(self, pair: Pair) -> None:
        """Schedule a pair; a pair already awaiting processing is not
        enqueued twice (it will observe the new facts anyway)."""
        if pair in self._in_frontier or pair in self._dirty:
            self._skipped += 1
            return
        self._dirty.add(pair)
        self._pushed += 1

    def _invalidate(self, slot: Tuple) -> None:
        for pair in self._readers.get(slot, ()):
            self._push(pair)

    def _depend(self, slot: Tuple) -> None:
        if self._current is not None:
            self._readers[slot].add(self._current)

    # -- lattice helpers --------------------------------------------------------

    def _add_var(self, method: str, ctx: Context, local: str,
                 objs: Set[HeapObject]) -> None:
        if not objs:
            return
        slot = self.var_pts[(method, ctx, local)]
        before = len(slot)
        slot |= objs
        if len(slot) != before:
            self._invalidate(("v", method, ctx, local))

    def _add_field(self, obj: HeapObject, ref: FieldRef,
                   objs: Set[HeapObject]) -> None:
        if not objs:
            return
        slot = self.field_pts[(obj, ref)]
        before = len(slot)
        slot |= objs
        if len(slot) != before:
            self._invalidate(("f", obj, ref))

    def _add_static(self, ref: FieldRef, objs: Set[HeapObject]) -> None:
        if not objs:
            return
        slot = self.static_pts[ref]
        before = len(slot)
        slot |= objs
        if len(slot) != before:
            self._invalidate(("s", ref))

    def _read_var(self, method: str, ctx: Context,
                  local: str) -> Set[HeapObject]:
        self._depend(("v", method, ctx, local))
        return self.var_pts.get((method, ctx, local), set())

    def _read_field(self, obj: HeapObject, ref: FieldRef) -> Set[HeapObject]:
        self._depend(("f", obj, ref))
        return self.field_pts.get((obj, ref), set())

    def _read_static(self, ref: FieldRef) -> Set[HeapObject]:
        self._depend(("s", ref))
        return self.static_pts.get(ref, set())

    def _get(self, method: str, ctx: Context, operand) -> Set[HeapObject]:
        if isinstance(operand, Local):
            return self._read_var(method, ctx, operand.name)
        return set()  # constants (incl. null) point to nothing

    def _heap_object(self, site: str, ctx: Context) -> HeapObject:
        # Interned: one tuple instance per abstraction, so the hash sets
        # downstream compare by identity on the fast path.
        key = (site, ctx)
        obj = self._interned.get(key)
        if obj is None:
            if self.k == 0:
                obj = (site,)
            else:
                obj = tuple([site, *ctx])[: self.k]
            obj = self._interned.setdefault(key, obj)
        return obj

    def _callee_context(self, receiver: HeapObject) -> Context:
        return receiver if self.k > 0 else ()

    def _resolve_field(self, ref: FieldRef) -> FieldRef:
        resolved = self.module.resolve_field(ref.class_name, ref.field_name)
        return resolved if resolved is not None else ref

    # -- main loop -----------------------------------------------------------------

    def run(self) -> PointsToResult:
        entry_class, entry_name = self.entry.rsplit(".", 1)
        entry_method = self.module.lookup_method(entry_class, entry_name)
        if entry_method is None:
            raise ValueError(f"entry method {self.entry} not found")
        self.contexts[self.entry].add(())
        self._push((self.entry, ()))

        # Worklist fixpoint: process dirtied (method, context) pairs in
        # sorted rounds until quiescence.  A pair is dirtied when a slot
        # it read on a previous processing grows, or when it is first
        # discovered as a call target.
        rounds = 0
        # hotspot attribution: per-(method, context) pop counts and
        # cumulative _process seconds (see repro.obs.hotspots)
        pair_pops: Dict[Pair, int] = defaultdict(int)
        pair_seconds: Dict[Pair, float] = defaultdict(float)
        while self._dirty:
            rounds += 1
            frontier = sorted(self._dirty)
            self._dirty = set()
            self._in_frontier = set(frontier)
            for pair in frontier:
                self._in_frontier.discard(pair)
                qname, ctx = pair
                method = self._method_by_qname(qname)
                if method is None:
                    continue
                self._popped += 1
                if self._popped > MAX_PROCESSINGS:  # pragma: no cover
                    raise RuntimeError(
                        "points-to analysis failed to converge"
                    )
                self._current = pair
                t0 = time.perf_counter()
                try:
                    self._process(method, qname, ctx)
                finally:
                    self._current = None
                    pair_pops[pair] += 1
                    pair_seconds[pair] += time.perf_counter() - t0

        # Deterministic size metrics for the section 8.8 observability
        # layer: all are functions of the final fixpoint or of the
        # sorted-round schedule, never of hash seeds or parallelism, so
        # --jobs 1 and --jobs 4 report identical values.
        obs.add("pointsto.passes", rounds)
        obs.add("pointsto.worklist.pushed", self._pushed)
        obs.add("pointsto.worklist.popped", self._popped)
        obs.add("pointsto.worklist.skipped", self._skipped)
        obs.add("pointsto.contexts",
                sum(len(ctxs) for ctxs in self.contexts.values()))
        obs.add("pointsto.reachable_methods", len(self.contexts))
        obs.add("pointsto.var_facts",
                sum(len(objs) for objs in self.var_pts.values()))
        obs.add("pointsto.field_facts",
                sum(len(objs) for objs in self.field_pts.values()))
        obs.add("pointsto.static_facts",
                sum(len(objs) for objs in self.static_pts.values()))
        abstract_objects = set()
        for objs in self.var_pts.values():
            abstract_objects.update(objs)
        for objs in self.field_pts.values():
            abstract_objects.update(objs)
        for objs in self.static_pts.values():
            abstract_objects.update(objs)
        obs.add("pointsto.abstract_objects", len(abstract_objects))
        obs.add("pointsto.call_edges",
                sum(len(c) for c in self.cs_call_edges.values()))
        for pair in sorted(pair_pops):
            qname, ctx = pair
            key = f"{qname}@{','.join(ctx)}"
            obs.add(f"hotspot.pointsto.pair.{key}.pops", pair_pops[pair])
            obs.add_gauge(f"hotspot.pointsto.pair.{key}.seconds",
                          pair_seconds[pair])

        return PointsToResult(
            module=self.module,
            k=self.k,
            var_pts=dict(self.var_pts),
            field_pts=dict(self.field_pts),
            static_pts=dict(self.static_pts),
            site_class=dict(self.site_class),
            cs_call_edges=dict(self.cs_call_edges),
            contexts=dict(self.contexts),
        )

    def _method_by_qname(self, qname: str) -> Optional[Method]:
        class_name, method_name = qname.rsplit(".", 1)
        return self.module.lookup_method(class_name, method_name)

    # -- transfer functions -----------------------------------------------------------

    def _process(self, method: Method, qname: str, ctx: Context) -> None:
        for instr in method.instructions():
            if isinstance(instr, New):
                self.site_class[instr.site] = instr.class_name
                obj = self._heap_object(instr.site, ctx)
                self.site_class.setdefault(obj[0], instr.class_name)
                self._add_var(qname, ctx, instr.target, {obj})
            elif isinstance(instr, Assign):
                self._add_var(qname, ctx, instr.target,
                              self._get(qname, ctx, instr.source))
            elif isinstance(instr, GetField):
                ref = self._resolve_field(instr.fieldref)
                objs: Set[HeapObject] = set()
                for base in self._get(qname, ctx, instr.base):
                    objs |= self._read_field(base, ref)
                self._add_var(qname, ctx, instr.target, objs)
            elif isinstance(instr, PutField):
                ref = self._resolve_field(instr.fieldref)
                values = self._get(qname, ctx, instr.value)
                for base in self._get(qname, ctx, instr.base):
                    self._add_field(base, ref, values)
            elif isinstance(instr, GetStatic):
                ref = self._resolve_field(instr.fieldref)
                self._add_var(qname, ctx, instr.target,
                              self._read_static(ref))
            elif isinstance(instr, PutStatic):
                ref = self._resolve_field(instr.fieldref)
                self._add_static(ref, self._get(qname, ctx, instr.value))
            elif isinstance(instr, Invoke):
                self._process_invoke(method, qname, ctx, instr)
            elif isinstance(instr, Return) and instr.value is not None:
                self._add_var(qname, ctx, RETURN_LOCAL,
                              self._get(qname, ctx, instr.value))

    def _bind_call(
        self,
        caller_qname: str,
        caller_ctx: Context,
        instr: Invoke,
        callee: Method,
        callee_ctx: Context,
        receiver: Optional[HeapObject],
    ) -> None:
        callee_qname = callee.qualified_name
        self.cs_call_edges[(caller_qname, caller_ctx, instr.uid)].add(
            (callee_qname, callee_ctx)
        )
        if callee_ctx not in self.contexts[callee_qname]:
            self.contexts[callee_qname].add(callee_ctx)
            self._push((callee_qname, callee_ctx))
        if receiver is not None:
            self._add_var(callee_qname, callee_ctx, "this", {receiver})
        for param, arg in zip(callee.params, instr.args):
            self._add_var(callee_qname, callee_ctx, param.name,
                          self._get(caller_qname, caller_ctx, arg))
        if instr.target is not None:
            returned = self._read_var(callee_qname, callee_ctx, RETURN_LOCAL)
            self._add_var(caller_qname, caller_ctx, instr.target, returned)

    def _process_invoke(self, method: Method, qname: str, ctx: Context,
                        instr: Invoke) -> None:
        ref = instr.methodref
        if instr.kind == "static":
            callee = self.module.resolve_method(ref.class_name, ref.method_name)
            if callee is not None and callee.cfg.blocks:
                # Static methods get the empty context (section 8.5).
                self._bind_call(qname, ctx, instr, callee, (), None)
            return

        assert instr.base is not None
        receivers = self._get(qname, ctx, instr.base)
        for obj in receivers:
            dynamic_class = self.site_class.get(obj[0])
            if dynamic_class is None:
                continue
            if instr.kind == "special":
                callee = self.module.resolve_method(ref.class_name, ref.method_name)
            else:
                callee = self.module.resolve_method(dynamic_class, ref.method_name)
                if callee is None:
                    # Imprecise receiver class (e.g. an Object returned by
                    # getSystemService): fall back to the declared class.
                    callee = self.module.resolve_method(
                        ref.class_name, ref.method_name
                    )
            if callee is None or not callee.cfg.blocks:
                continue
            self._bind_call(
                qname, ctx, instr, callee, self._callee_context(obj), obj
            )


def run_pointsto(module: Module, k: int = 2,
                 entry: str = "DummyMain.main") -> PointsToResult:
    """Convenience wrapper: run the analysis and return its result."""
    return PointsToAnalysis(module, k=k, entry=entry).run()
