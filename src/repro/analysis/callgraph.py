"""Call-graph construction.

Two precision levels are provided:

* :func:`build_cha_callgraph` -- class-hierarchy analysis refined with
  Rapid Type Analysis (virtual calls dispatch to overriding subtypes that
  are actually instantiated somewhere in the module).  Used by the
  threadifier to delimit per-thread code regions.
* the context-sensitive call graph that falls out of the k-object-
  sensitive points-to analysis (:mod:`repro.analysis.pointsto`), used by
  the race detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import Invoke, Method, Module, New


def instantiated_classes(module: Module) -> Set[str]:
    """RTA set: every class allocated by a ``new`` anywhere in the module."""
    return {
        instr.class_name
        for instr in module.instructions()
        if isinstance(instr, New)
    }


def dispatch_targets(
    module: Module,
    invoke: Invoke,
    rta: Optional[Set[str]] = None,
) -> List[Method]:
    """Possible callee methods of one call site under CHA/RTA.

    * ``static``/``special`` calls resolve to exactly one method.
    * ``virtual`` calls resolve to the override in every instantiated
      subtype of the declared receiver class (plus the declared class's own
      resolution, for receivers whose allocation the RTA set misses).
    """
    ref = invoke.methodref
    if invoke.kind in ("static", "special"):
        target = module.resolve_method(ref.class_name, ref.method_name)
        return [target] if target is not None else []

    targets: Dict[str, Method] = {}
    base = module.resolve_method(ref.class_name, ref.method_name)
    if base is not None and base.cfg.blocks:
        targets[base.qualified_name] = base
    candidates = module.subclasses(ref.class_name)
    for sub in candidates:
        if rta is not None and sub not in rta:
            continue
        cls = module.lookup_class(sub)
        if cls is None or cls.is_interface:
            continue
        resolved = module.resolve_method(sub, ref.method_name)
        if resolved is not None and resolved.cfg.blocks:
            targets[resolved.qualified_name] = resolved
    return list(targets.values())


@dataclass
class CallGraph:
    """A call multigraph: caller method -> (call-site uid, callee method)."""

    module: Module
    edges: Dict[str, Set[Tuple[int, str]]] = field(default_factory=dict)
    methods: Dict[str, Method] = field(default_factory=dict)

    def add_edge(self, caller: Method, site_uid: int, callee: Method) -> None:
        self.methods[caller.qualified_name] = caller
        self.methods[callee.qualified_name] = callee
        self.edges.setdefault(caller.qualified_name, set()).add(
            (site_uid, callee.qualified_name)
        )

    def callees(self, caller_qname: str) -> Set[str]:
        return {callee for _, callee in self.edges.get(caller_qname, set())}

    def callees_at(self, caller_qname: str, site_uid: int) -> Set[str]:
        return {
            callee
            for uid, callee in self.edges.get(caller_qname, set())
            if uid == site_uid
        }

    def callers(self, callee_qname: str) -> Set[str]:
        return {
            caller
            for caller, out in self.edges.items()
            if any(callee == callee_qname for _, callee in out)
        }

    def reachable_from(
        self, entry_qnames: Set[str], skip: Optional[Set[str]] = None
    ) -> Set[str]:
        """Transitive closure of callees from a set of entry methods.

        ``skip``: method qnames whose outgoing edges are not followed
        (used to keep synthetic dummy-main code out of thread regions).
        """
        seen: Set[str] = set()
        work = [q for q in entry_qnames]
        while work:
            qname = work.pop()
            if qname in seen:
                continue
            seen.add(qname)
            if skip is not None and qname in skip:
                continue
            for callee in self.callees(qname):
                if callee not in seen:
                    work.append(callee)
        return seen


def build_cha_callgraph(module: Module, rta: Optional[Set[str]] = None) -> CallGraph:
    """Build the whole-module CHA/RTA call graph.

    Framework stub methods contain no calls (only registry stores after the
    threadification transform), so the graph never crosses back into
    application callbacks through the framework.
    """
    if rta is None:
        rta = instantiated_classes(module)
    graph = CallGraph(module)
    for method in module.methods():
        for instr in method.instructions():
            if not isinstance(instr, Invoke):
                continue
            for target in dispatch_targets(module, instr, rta):
                graph.add_edge(method, instr.uid, target)
    return graph
