"""Seeded property-based generator of MiniDroid apps with ground-truth labels.

Each generated app composes a lifecycle skeleton with a random selection of
*injected* use-after-free patterns modeled on the paper's Figures 1 and 4:
service-connection teardowns (Fig. 1(a)/(b)), the looper-vs-pool race
(Fig. 1(c)), posted-callback-vs-destroy races, fragment transaction and
ordered-broadcast orderings, and foreground-service callback gaps -- plus
deliberately *benign* variants that each exercise one sound filter
(MHB-Lifecycle, MHB-Fragment, MHB-OrderedBroadcast, If-Guard,
Intra-Allocation).

Every injection is recorded as a :class:`GroundTruthLabel` carrying the
field, the exact use/free source lines, the expected pair type and whether
the pipeline is expected to keep (``surviving``) or remove (``filtered``)
the warning -- so generated corpora double as recall/precision oracles for
the whole pipeline (see ``repro.report.score``).

Determinism contract: ``generate_app(config, index)`` depends only on
``(config, index)``.  The per-app stream is ``random.Random(seed *
1_000_003 + index)``, so apps are independently reproducible in worker
processes and across ``--jobs`` settings; sources and label manifests are
byte-identical run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..obs import add as obs_add

#: Label manifest schema version.
LABEL_SCHEMA = 1

EXPECT_SURVIVING = "surviving"
EXPECT_FILTERED = "filtered"


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of one generated corpus (all participate in cache keys)."""

    seed: int = 42
    count: int = 20
    #: patterns injected per non-clean app (inclusive range)
    min_patterns: int = 1
    max_patterns: int = 4
    #: fraction of apps generated with no injected pattern at all
    clean_ratio: float = 0.25
    #: up to this many inert filler classes pad each app
    max_filler_classes: int = 2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "count": self.count,
            "min_patterns": self.min_patterns,
            "max_patterns": self.max_patterns,
            "clean_ratio": self.clean_ratio,
            "max_filler_classes": self.max_filler_classes,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "GeneratorConfig":
        return GeneratorConfig(
            seed=int(payload["seed"]),
            count=int(payload["count"]),
            min_patterns=int(payload.get("min_patterns", 1)),
            max_patterns=int(payload.get("max_patterns", 4)),
            clean_ratio=float(payload.get("clean_ratio", 0.25)),
            max_filler_classes=int(payload.get("max_filler_classes", 2)),
        )


def generated_app_name(seed: int, index: int) -> str:
    return f"g{seed}-{index:04d}"


def generated_app_index(name: str) -> int:
    """Inverse of :func:`generated_app_name` (the index part)."""
    return int(name.rsplit("-", 1)[1])


# ---------------------------------------------------------------------------
# Ground truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroundTruthLabel:
    """One injected use/free pair and what the pipeline should say."""

    app: str
    class_name: str        #: class declaring the raced field
    field_name: str
    use_line: int          #: 1-based source line of the injected use
    free_line: int         #: 1-based source line of the injected free
    pattern: str           #: catalog name of the injected pattern
    pair_type: str         #: expected Table-1 origin category
    expected: str          #: ``surviving`` or ``filtered``

    @property
    def label_id(self) -> str:
        return (f"{self.app}::{self.class_name}.{self.field_name}"
                f"::{self.use_line}::{self.free_line}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.label_id,
            "class": self.class_name,
            "field": self.field_name,
            "use_line": self.use_line,
            "free_line": self.free_line,
            "pattern": self.pattern,
            "pair_type": self.pair_type,
            "expected": self.expected,
        }

    @staticmethod
    def from_dict(app: str, payload: Dict[str, Any]) -> "GroundTruthLabel":
        return GroundTruthLabel(
            app=app,
            class_name=payload["class"],
            field_name=payload["field"],
            use_line=int(payload["use_line"]),
            free_line=int(payload["free_line"]),
            pattern=payload["pattern"],
            pair_type=payload["pair_type"],
            expected=payload["expected"],
        )


@dataclass
class GeneratedApp:
    """One generated MiniDroid application plus its ground truth."""

    name: str
    source: str
    labels: List[GroundTruthLabel] = field(default_factory=list)
    clean: bool = False
    patterns: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Source rendering
# ---------------------------------------------------------------------------


class _Source:
    """Line-accumulating renderer that records marked line numbers."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self.marks: Dict[str, int] = {}

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def lines(self, *texts: str) -> None:
        self._lines.extend(texts)

    def mark(self, key: str, text: str) -> None:
        self._lines.append(text)
        self.marks[key] = len(self._lines)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


@dataclass
class _Injection:
    """A pattern's pending label: resolved to lines after rendering."""

    class_name: str
    field_name: str
    use_key: str
    free_key: str
    pattern: str
    pair_type: str
    expected: str

    def resolve(self, app: str, marks: Dict[str, int]) -> GroundTruthLabel:
        return GroundTruthLabel(
            app=app,
            class_name=self.class_name,
            field_name=self.field_name,
            use_line=marks[self.use_key],
            free_line=marks[self.free_key],
            pattern=self.pattern,
            pair_type=self.pair_type,
            expected=self.expected,
        )


# ---------------------------------------------------------------------------
# Pattern catalog
# ---------------------------------------------------------------------------
#
# Each emitter appends self-contained classes for instance ``i`` and
# returns the injection record.  Instances never share fields, so patterns
# compose within one app without perturbing each other's ground truth.


def _data_class(src: _Source, i: int) -> None:
    src.line(f"class Data{i} {{")
    src.line("  void work() { }")
    src.line("}")
    src.line()


def _connection_class(src: _Source, i: int, free_key: str) -> None:
    """A ServiceConnection whose disconnect callback frees ``Act{i}.fd{i}``."""
    src.line(f"class Conn{i} implements ServiceConnection {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void onServiceConnected(ComponentName name, "
             "IBinder service) { }")
    src.line()
    src.line("  public void onServiceDisconnected(ComponentName name) {")
    src.mark(free_key, f"    owner.fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()


def _bind_in_on_start(src: _Source, i: int) -> None:
    src.line("  void onStart() {")
    src.line("    super.onStart();")
    src.line(f"    Conn{i} conn = new Conn{i}();")
    src.line("    conn.owner = this;")
    src.line(f"    bindService(new Intent(\"gen.Conn{i}\"), conn, 0);")
    src.line("  }")


def _fig1a_service_conn(src: _Source, i: int) -> _Injection:
    """Figure 1(a): an unguarded EC use races the connection teardown."""
    _data_class(src, i)
    _connection_class(src, i, f"f{i}")
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    _bind_in_on_start(src, i)
    src.line()
    src.line("  void onCreateContextMenu(ContextMenu menu, View v, "
             "ContextMenuInfo menuInfo) {")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fig1a-service-conn", "EC-PC", EXPECT_SURVIVING)


def _fig1b_deferred_guard(src: _Source, i: int) -> _Injection:
    """Figure 1(b): the guard runs on the looper, the use is deferred."""
    _data_class(src, i)
    _connection_class(src, i, f"f{i}")
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line(f"  Handler hd{i};")
    src.line(f"  View btn{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    hd{i} = new Handler();")
    src.line(f"    fd{i} = new Data{i}();")
    src.line(f"    btn{i} = findViewById({200 + i});")
    src.line(f"    btn{i}.setOnClickListener(new OnClickListener() {{")
    src.line("      public void onClick(View v) {")
    src.line(f"        if (fd{i} != null) {{")
    src.line(f"          hd{i}.post(new Runnable() {{")
    src.line("            public void run() {")
    src.mark(f"u{i}", f"              fd{i}.work();")
    src.line("            }")
    src.line("          });")
    src.line("        }")
    src.line("      }")
    src.line("    });")
    src.line("  }")
    src.line()
    _bind_in_on_start(src, i)
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fig1b-deferred-guard", "PC-PC", EXPECT_SURVIVING)


def _fig1c_looper_pool(src: _Source, i: int) -> _Injection:
    """Figure 1(c): a pool-thread use against a posted looper-side free."""
    _data_class(src, i)
    src.line(f"class Task{i} implements Runnable {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void run() {")
    src.mark(f"u{i}", f"    owner.fd{i}.work();")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line(f"  ExecutorService pool{i};")
    src.line(f"  Handler hd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    hd{i} = new Handler();")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onResume() {")
    src.line("    super.onResume();")
    src.line(f"    Task{i} task = new Task{i}();")
    src.line("    task.owner = this;")
    src.line(f"    pool{i}.execute(task);")
    src.line("  }")
    src.line()
    src.line("  void onClick(View v) {")
    src.line(f"    hd{i}.post(new Runnable() {{")
    src.line("      public void run() {")
    src.mark(f"f{i}", f"        fd{i} = null;")
    src.line("      }")
    src.line("    });")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fig1c-looper-pool", "C-NT", EXPECT_SURVIVING)


def _posted_vs_destroy(src: _Source, i: int) -> _Injection:
    """A posted refresh races its activity's own onDestroy teardown."""
    _data_class(src, i)
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line(f"  Handler hd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    hd{i} = new Handler();")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onClick(View v) {")
    src.line(f"    hd{i}.post(new Runnable() {{")
    src.line("      public void run() {")
    src.mark(f"u{i}", f"        fd{i}.work();")
    src.line("      }")
    src.line("    });")
    src.line("  }")
    src.line()
    src.line("  void onDestroy() {")
    src.line("    super.onDestroy();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "posted-vs-destroy", "EC-PC", EXPECT_SURVIVING)


def _commit_fragment(src: _Source, i: int, container: int,
                     owner: bool) -> None:
    """onCreate body lines that commit ``Frag{i}`` via a transaction."""
    src.line(f"    Frag{i} frag = new Frag{i}();")
    if owner:
        src.line("    frag.owner = this;")
    src.line(f"    FragmentManager fm{i} = getFragmentManager();")
    src.line(f"    FragmentTransaction ft{i} = fm{i}.beginTransaction();")
    src.line(f"    ft{i}.add({container}, frag);")
    src.line(f"    ft{i}.commit();")


def _fragment_activity_race(src: _Source, i: int) -> _Injection:
    """A committed fragment's onResume races the host activity's destroy."""
    _data_class(src, i)
    src.line(f"class Frag{i} extends Fragment {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  void onResume() {")
    src.line("    super.onResume();")
    src.mark(f"u{i}", f"    owner.fd{i}.work();")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    _commit_fragment(src, i, 1, owner=True)
    src.line("  }")
    src.line()
    src.line("  void onDestroy() {")
    src.line("    super.onDestroy();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fragment-activity-race", "EC-PC", EXPECT_SURVIVING)


def _ordered_broadcast_teardown(src: _Source, i: int) -> _Injection:
    """The registered receiver frees what the result receiver still uses."""
    _data_class(src, i)
    src.line(f"class Reg{i} extends BroadcastReceiver {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void onReceive(Context context, Intent intent) {")
    src.mark(f"f{i}", f"    owner.fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Res{i} extends BroadcastReceiver {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void onReceive(Context context, Intent intent) {")
    src.mark(f"u{i}", f"    owner.fd{i}.work();")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line(f"  Reg{i} reg{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    src.line(f"    reg{i} = new Reg{i}();")
    src.line(f"    reg{i}.owner = this;")
    src.line(f"    registerReceiver(reg{i}, "
             f"new IntentFilter(\"gen.ORDERED{i}\"));")
    src.line(f"    Res{i} res = new Res{i}();")
    src.line("    res.owner = this;")
    src.line(f"    sendOrderedBroadcast(new Intent(\"gen.ORDERED{i}\"), "
             "res);")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "ordered-broadcast-teardown", "PC-PC", EXPECT_SURVIVING)


def _foreground_service_race(src: _Source, i: int) -> _Injection:
    """onTaskRemoved and onTimeout have no mutual order on a service."""
    _data_class(src, i)
    src.line(f"class Svc{i} extends Service {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate() {")
    src.line("    super.onCreate();")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("    startForeground(1, new Notification());")
    src.line("  }")
    src.line()
    src.line("  void onTaskRemoved(Intent rootIntent) {")
    src.line("    super.onTaskRemoved(rootIntent);")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line()
    src.line("  void onTimeout(int startId) {")
    src.line("    super.onTimeout(startId);")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Svc{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "foreground-service-race", "EC-EC", EXPECT_SURVIVING)


def _lifecycle_benign(src: _Source, i: int) -> _Injection:
    """onStart must happen before onDestroy: MHB-Lifecycle prunes."""
    _data_class(src, i)
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onStart() {")
    src.line("    super.onStart();")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line()
    src.line("  void onDestroy() {")
    src.line("    super.onDestroy();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "mhb-lifecycle-benign", "EC-EC", EXPECT_FILTERED)


def _guard_benign(src: _Source, i: int) -> _Injection:
    """A same-looper null check protects the use: If-Guard prunes."""
    _data_class(src, i)
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onResume() {")
    src.line("    super.onResume();")
    src.line(f"    if (fd{i} != null) {{")
    src.mark(f"u{i}", f"      fd{i}.work();")
    src.line("    }")
    src.line("  }")
    src.line()
    src.line("  void onStop() {")
    src.line("    super.onStop();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "if-guard-benign", "EC-EC", EXPECT_FILTERED)


def _fresh_alloc_benign(src: _Source, i: int) -> _Injection:
    """The use sees the fresh allocation stored just above it: IA prunes."""
    _data_class(src, i)
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onResume() {")
    src.line("    super.onResume();")
    src.line(f"    fd{i} = new Data{i}();")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line()
    src.line("  void onStop() {")
    src.line("    super.onStop();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fresh-alloc-benign", "EC-EC", EXPECT_FILTERED)


def _fragment_benign(src: _Source, i: int) -> _Injection:
    """onStart before onDestroy inside one fragment: MHB-Fragment prunes."""
    _data_class(src, i)
    src.line(f"class Frag{i} extends Fragment {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onAttach(Activity activity) {")
    src.line("    super.onAttach(activity);")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onStart() {")
    src.line("    super.onStart();")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line()
    src.line("  void onDestroy() {")
    src.line("    super.onDestroy();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Act{i} extends Activity {{")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    _commit_fragment(src, i, 2, owner=False)
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Frag{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "fragment-benign", "PC-PC", EXPECT_FILTERED)


def _ordered_broadcast_benign(src: _Source, i: int) -> _Injection:
    """The registered receiver's use precedes the result receiver's free:
    MHB-OrderedBroadcast prunes."""
    _data_class(src, i)
    src.line(f"class Reg{i} extends BroadcastReceiver {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void onReceive(Context context, Intent intent) {")
    src.mark(f"u{i}", f"    owner.fd{i}.work();")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Res{i} extends BroadcastReceiver {{")
    src.line(f"  Act{i} owner;")
    src.line()
    src.line("  public void onReceive(Context context, Intent intent) {")
    src.mark(f"f{i}", f"    owner.fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    src.line(f"class Act{i} extends Activity {{")
    src.line(f"  Data{i} fd{i};")
    src.line(f"  Reg{i} reg{i};")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line(f"    setContentView({100 + i});")
    src.line(f"    fd{i} = new Data{i}();")
    src.line(f"    reg{i} = new Reg{i}();")
    src.line(f"    reg{i}.owner = this;")
    src.line(f"    registerReceiver(reg{i}, "
             f"new IntentFilter(\"gen.ORDERED{i}\"));")
    src.line(f"    Res{i} res = new Res{i}();")
    src.line("    res.owner = this;")
    src.line(f"    sendOrderedBroadcast(new Intent(\"gen.ORDERED{i}\"), "
             "res);")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Act{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "ordered-broadcast-benign", "PC-PC", EXPECT_FILTERED)


def _foreground_benign(src: _Source, i: int) -> _Injection:
    """onTimeout must happen before onDestroy: the widened SERVICE_MHB
    prunes."""
    _data_class(src, i)
    src.line(f"class Svc{i} extends Service {{")
    src.line(f"  Data{i} fd{i};")
    src.line()
    src.line("  void onCreate() {")
    src.line("    super.onCreate();")
    src.line(f"    fd{i} = new Data{i}();")
    src.line("  }")
    src.line()
    src.line("  void onTimeout(int startId) {")
    src.line("    super.onTimeout(startId);")
    src.mark(f"u{i}", f"    fd{i}.work();")
    src.line("  }")
    src.line()
    src.line("  void onDestroy() {")
    src.line("    super.onDestroy();")
    src.mark(f"f{i}", f"    fd{i} = null;")
    src.line("  }")
    src.line("}")
    src.line()
    return _Injection(f"Svc{i}", f"fd{i}", f"u{i}", f"f{i}",
                      "foreground-benign", "EC-EC", EXPECT_FILTERED)


_Emitter = Callable[[_Source, int], _Injection]

#: The pattern catalog, ordered; rng indexes into this tuple.
PATTERNS: Tuple[Tuple[str, _Emitter], ...] = (
    ("fig1a-service-conn", _fig1a_service_conn),
    ("fig1b-deferred-guard", _fig1b_deferred_guard),
    ("fig1c-looper-pool", _fig1c_looper_pool),
    ("posted-vs-destroy", _posted_vs_destroy),
    ("fragment-activity-race", _fragment_activity_race),
    ("ordered-broadcast-teardown", _ordered_broadcast_teardown),
    ("foreground-service-race", _foreground_service_race),
    ("mhb-lifecycle-benign", _lifecycle_benign),
    ("if-guard-benign", _guard_benign),
    ("fresh-alloc-benign", _fresh_alloc_benign),
    ("fragment-benign", _fragment_benign),
    ("ordered-broadcast-benign", _ordered_broadcast_benign),
    ("foreground-benign", _foreground_benign),
)

PATTERN_NAMES: Tuple[str, ...] = tuple(name for name, _ in PATTERNS)


# ---------------------------------------------------------------------------
# App assembly
# ---------------------------------------------------------------------------


def _emit_skeleton(src: _Source) -> None:
    """The always-present lifecycle skeleton.  It never nulls a reference
    field, so it contributes no free events (clean apps stay warning-free)."""
    src.line("class BootState {")
    src.line("  void warm() { }")
    src.line("}")
    src.line()
    src.line("class MainActivity extends Activity {")
    src.line("  BootState boot;")
    src.line("  View statusView;")
    src.line()
    src.line("  void onCreate(Bundle savedInstanceState) {")
    src.line("    super.onCreate(savedInstanceState);")
    src.line("    setContentView(1);")
    src.line("    boot = new BootState();")
    src.line("    statusView = findViewById(7);")
    src.line("    boot.warm();")
    src.line("  }")
    src.line()
    src.line("  void onResume() {")
    src.line("    super.onResume();")
    src.line("    boot.warm();")
    src.line("  }")
    src.line("}")
    src.line()


def _emit_filler(src: _Source, j: int) -> None:
    src.line(f"class Util{j} {{")
    src.line("  void tick() { }")
    src.line("  void tock() { }")
    src.line("}")
    src.line()


def _app_rng(seed: int, index: int) -> random.Random:
    return random.Random(seed * 1_000_003 + index)


def generate_app(config: GeneratorConfig, index: int) -> GeneratedApp:
    """Generate app ``index`` of the corpus -- reproducible in isolation."""
    rng = _app_rng(config.seed, index)
    name = generated_app_name(config.seed, index)
    clean = rng.random() < config.clean_ratio

    src = _Source()
    src.line(f"// {name} -- generated MiniDroid app "
             f"(seed {config.seed}, index {index}).")
    if clean:
        src.line("// clean: no injected pattern; zero warnings expected.")
    src.line()
    _emit_skeleton(src)

    injections: List[_Injection] = []
    if not clean:
        k = rng.randint(config.min_patterns, config.max_patterns)
        for slot in range(k):
            _, emitter = PATTERNS[rng.randrange(len(PATTERNS))]
            injections.append(emitter(src, slot))

    for j in range(rng.randint(0, config.max_filler_classes)):
        _emit_filler(src, j)

    source = src.render()
    labels = [inj.resolve(name, src.marks) for inj in injections]
    return GeneratedApp(
        name=name,
        source=source,
        labels=labels,
        clean=clean,
        patterns=[inj.pattern for inj in injections],
    )


def generate_corpus(config: GeneratorConfig) -> List[GeneratedApp]:
    """All ``config.count`` apps, in index order."""
    apps = [generate_app(config, index) for index in range(config.count)]
    obs_add("generator.apps", len(apps))
    obs_add("generator.clean_apps", sum(1 for a in apps if a.clean))
    obs_add("generator.labels", sum(len(a.labels) for a in apps))
    return apps


# ---------------------------------------------------------------------------
# Label manifest
# ---------------------------------------------------------------------------


def label_manifest(config: GeneratorConfig,
                   apps: List[GeneratedApp]) -> Dict[str, Any]:
    """The JSON-safe ground-truth manifest for a generated corpus."""
    return {
        "schema": LABEL_SCHEMA,
        "seed": config.seed,
        "count": config.count,
        "config": config.to_dict(),
        "apps": [
            {
                "name": app.name,
                "clean": app.clean,
                "patterns": list(app.patterns),
                "labels": [label.to_dict() for label in app.labels],
            }
            for app in apps
        ],
    }


def labels_from_manifest(payload: Dict[str, Any]) -> List[GroundTruthLabel]:
    """Flatten a manifest back into label objects."""
    labels: List[GroundTruthLabel] = []
    for entry in payload.get("apps", ()):
        for label in entry.get("labels", ()):
            labels.append(GroundTruthLabel.from_dict(entry["name"], label))
    return labels
