"""Artificial-UAF injection for the false-negative study (paper 8.6, Table 2).

The paper takes the true races DroidRacer reported in 8 applications and
plants new UAF ordering violations at the same locations, yielding 28
ground-truth bugs; nAdroid misses 2 (code reached only through a framework
path outside the analysis scope -- the IBinder case) and unsoundly prunes
3 via the CHB filter (error-handling paths that may call ``finish``).

We reproduce the construction exactly: 28 injections over the same 8
corpus apps, with 2 delivered through the unmodeled ContentObserver
channel (missed by detection) and 3 placed behind a may-``finish`` path
(pruned by the unsound CHB filter).  Every injection is dynamically
harmful: the schedule-search validator can crash each one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ir import Module
from ..lowering import lower_sources
from .registry import app

#: expectations for the Table 2 driver
DETECTED = "detected"
MISSED = "missed-by-detection"
PRUNED_UNSOUND = "pruned-by-unsound-filter"


@dataclass(frozen=True)
class Injection:
    """One artificial UAF planted into a corpus app."""

    injection_id: str
    app_name: str
    description: str
    anchor: str            #: source text the patch attaches to
    addition: str          #: text inserted after the anchor
    field: str             #: racy field of the injected pair
    expectation: str
    #: substrings locating the injected pair among this field's warnings
    use_method_hint: str = ""
    free_method_hint: str = ""


_INJECTIONS: List[Injection] = []


def _inject(**kwargs) -> None:
    _INJECTIONS.append(Injection(**kwargs))


# ---------------------------------------------------------------------------
# Tomdroid (1)
# ---------------------------------------------------------------------------

_inject(
    injection_id="tomdroid-1",
    app_name="tomdroid",
    description="free the sync manager on pause; the sync click still uses it",
    anchor="", addition="",
    field="syncManager",
    expectation=DETECTED,
    free_method_hint="onPause",
)

_TOMDROID_PATCHES = [
    (
        "  void onResume() {",
        "  void onPause() {\n"
        "    super.onPause();\n"
        "    syncManager = null;  // injected free (tomdroid-1)\n"
        "  }\n\n  void onResume() {",
    ),
]

# ---------------------------------------------------------------------------
# SGT Puzzles (9: 8 detected, 1 pruned by CHB)
# ---------------------------------------------------------------------------

_SGTPUZZLES_PATCHES = [
    # unguarded uses in onResume against the existing onPause frees
    (
        "  void onResume() {\n    super.onResume();",
        "  void onResume() {\n    super.onResume();\n"
        "    engine.solveStep();    // injected use (puzzles-1)\n"
        "    timer.tick();          // injected use (puzzles-2)",
    ),
    # a posted continuation using both fields (EC-PC pairs)
    (
        "    newGameButton.setOnClickListener(new OnClickListener() {",
        "    hintHandler = new Handler();\n"
        "    hintButton = findViewById(32);\n"
        "    hintButton.setOnClickListener(new OnClickListener() {\n"
        "      public void onClick(View v) {\n"
        "        hintHandler.post(new Runnable() {\n"
        "          public void run() {\n"
        "            engine.redrawBoard();  // injected use (puzzles-3)\n"
        "            timer.tick();          // injected use (puzzles-4)\n"
        "          }\n"
        "        });\n"
        "        hintHandler.post(new Runnable() {\n"
        "          public void run() {\n"
        "            engine = null;        // injected free (puzzles-5,6)\n"
        "            timer = null;\n"
        "          }\n"
        "        });\n"
        "      }\n"
        "    });\n\n"
        "    newGameButton.setOnClickListener(new OnClickListener() {",
    ),
    # unguarded system-callback uses (puzzles-7, puzzles-8)
    (
        "  void onPause() {\n    super.onPause();",
        "  void onActivityResult(int requestCode, int resultCode, Intent data) {\n"
        "    engine.solveStep();   // injected use (puzzles-7)\n"
        "    timer.tick();         // injected use (puzzles-8)\n"
        "  }\n\n"
        "  void onPause() {\n    super.onPause();",
    ),
    # puzzles-9: a free behind a may-finish error path (CHB prunes it,
    # but the normal path still frees: a real bug nAdroid misses)
    (
        "  void onResume() {\n    super.onResume();",
        "  void onKeyDown2(int keyCode) {\n"
        "    if (keyCode == 111) {\n"
        "      finish();\n"
        "    }\n"
        "    engine = null;   // injected free (puzzles-9, CHB-shadowed)\n"
        "  }\n\n"
        "  boolean onKeyDown(int keyCode, KeyEvent event) {\n"
        "    onKeyDown2(keyCode);\n"
        "    return true;\n"
        "  }\n\n"
        "  void onResume() {\n    super.onResume();",
    ),
]

_SGTPUZZLES_FIELDS = [
    ("puzzles-1", "engine", "onResume", "onPause", DETECTED),
    ("puzzles-2", "timer", "onResume", "onPause", DETECTED),
    ("puzzles-3", "engine", "$", "", DETECTED),       # posted use
    ("puzzles-4", "timer", "$", "", DETECTED),
    ("puzzles-5", "engine", "", "$", DETECTED),       # posted free
    ("puzzles-6", "timer", "", "$", DETECTED),
    ("puzzles-7", "engine", "onActivityResult", "", DETECTED),
    ("puzzles-8", "timer", "onActivityResult", "", DETECTED),
    ("puzzles-9", "engine", "onResume", "onKeyDown2", PRUNED_UNSOUND),
]

for _id, _field, _use, _free, _exp in _SGTPUZZLES_FIELDS:
    _inject(
        injection_id=_id,
        app_name="sgtpuzzles",
        description=f"injected pair on {_field}",
        anchor="", addition="",
        field=_field,
        expectation=_exp,
        use_method_hint=_use,
        free_method_hint=_free,
    )

# ---------------------------------------------------------------------------
# Aard (1)
# ---------------------------------------------------------------------------

_AARD_PATCHES = [
    (
        "  void onDestroy() {\n    super.onDestroy();\n    dictionaryService = null;",
        "  void onResume() {\n"
        "    super.onResume();\n"
        "    volumeMenu.showVolumes();  // injected use (aard-1)\n"
        "  }\n\n"
        "  void onDestroy() {\n    super.onDestroy();\n    dictionaryService = null;",
    ),
]

_inject(
    injection_id="aard-1",
    app_name="aard",
    description="unguarded volume-menu use in onResume vs the close free",
    anchor="", addition="",
    field="volumeMenu",
    expectation=DETECTED,
    use_method_hint="onResume",
)

# ---------------------------------------------------------------------------
# Music (6)
# ---------------------------------------------------------------------------

_MUSIC_PATCHES = [
    # music-1/2: a hard free on pause against existing cursor/adapter uses
    (
        "  void onStop() {\n    super.onStop();\n    if (mTeardownRequested) {",
        "  void onPause() {\n"
        "    super.onPause();\n"
        "    mGuardedCursor = null;   // injected free (music-1)\n"
        "    mAdapter = null;         // injected free (music-2)\n"
        "  }\n\n"
        "  void onStop() {\n    super.onStop();\n    if (mTeardownRequested) {",
    ),
    # music-3/4: posted uses in QueryBrowserActivity
    (
        "    refreshButton.setOnClickListener(new OnClickListener() {",
        "    queryHandler = new Handler();\n"
        "    queryHandler.post(new Runnable() {\n"
        "      public void run() {\n"
        "        mAdapter.requery();        // injected use (music-3)\n"
        "        mToggleAdapter.requery();  // injected use (music-4)\n"
        "      }\n"
        "    });\n"
        "    refreshButton.setOnClickListener(new OnClickListener() {",
    ),
    # music-5/6: background workers freeing browser state (C-NT)
    (
        "class MediaPlaybackService extends Service {",
        "class CacheEvictor implements Runnable {\n"
        "  QueryBrowserActivity owner;\n"
        "  CacheEvictor(QueryBrowserActivity a) { owner = a; }\n"
        "  public void run() {\n"
        "    owner.mAdapter = null;        // injected free (music-5)\n"
        "    owner.mToggleAdapter = null;  // injected free (music-6)\n"
        "  }\n"
        "}\n\n"
        "class MediaPlaybackService extends Service {",
    ),
    (
        "  void onActivityResult(int requestCode, int resultCode, Intent data) {\n"
        "    mAdapter.requery();\n"
        "  }\n\n"
        "  Object onRetainNonConfigurationInstance() {\n"
        "    mAdapter.notifyChanged();\n"
        "    return null;\n"
        "  }\n\n"
        "  void onDestroy() {\n"
        "    super.onDestroy();\n"
        "    mAdapter = null;\n"
        "  }\n"
        "}\n\n"
        "class CacheEvictor",
        "  void onActivityResult(int requestCode, int resultCode, Intent data) {\n"
        "    mAdapter.requery();\n"
        "  }\n\n"
        "  Object onRetainNonConfigurationInstance() {\n"
        "    mAdapter.notifyChanged();\n"
        "    return null;\n"
        "  }\n\n"
        "  void onStart() {\n"
        "    super.onStart();\n"
        "    new Thread(new CacheEvictor(this)).start();\n"
        "  }\n\n"
        "  void onDestroy() {\n"
        "    super.onDestroy();\n"
        "    mAdapter = null;\n"
        "  }\n"
        "}\n\n"
        "class CacheEvictor",
    ),
]

for _id, _field, _use, _free in [
    ("music-1", "mGuardedCursor", "onClick", "onPause"),
    ("music-2", "mAdapter", "", "onPause"),
    ("music-3", "mAdapter", "$", ""),
    ("music-4", "mToggleAdapter", "$", ""),
    ("music-5", "mAdapter", "", "CacheEvictor.run"),
    ("music-6", "mToggleAdapter", "", "CacheEvictor.run"),
]:
    _inject(
        injection_id=_id,
        app_name="music",
        description=f"injected pair on {_field}",
        anchor="", addition="",
        field=_field,
        expectation=DETECTED,
        use_method_hint=_use,
        free_method_hint=_free,
    )

# ---------------------------------------------------------------------------
# Mms (6: 4 detected, 2 missed through the ContentObserver channel)
# ---------------------------------------------------------------------------

_MMS_PATCHES = [
    # wire the observer's owner so its frees are dynamically real
    (
        "class MmsSetupActivity extends Activity {\n"
        "  ContentResolver resolver;\n"
        "  ConversationActivity unusedOwnerWiring;\n\n"
        "  void onCreate(Bundle savedInstanceState) {\n"
        "    super.onCreate(savedInstanceState);\n"
        "    DraftObserver observer = new DraftObserver();\n"
        "    resolver.registerContentObserver(\"content://mms\", observer);\n"
        "  }\n"
        "}",
        "class MmsSetupActivity extends Activity {\n"
        "  ContentResolver resolver;\n"
        "  static ConversationActivity sConversation;\n\n"
        "  void onCreate(Bundle savedInstanceState) {\n"
        "    super.onCreate(savedInstanceState);\n"
        "    DraftObserver observer = new DraftObserver();\n"
        "    observer.owner = MmsSetupActivity.sConversation;\n"
        "    resolver.registerContentObserver(\"content://mms\", observer);\n"
        "  }\n"
        "}",
    ),
    (
        "  void onCreate(Bundle savedInstanceState) {\n"
        "    super.onCreate(savedInstanceState);\n"
        "    setContentView(1);\n"
        "    sendHandler = new Handler();",
        "  void onCreate(Bundle savedInstanceState) {\n"
        "    super.onCreate(savedInstanceState);\n"
        "    MmsSetupActivity.sConversation = this;\n"
        "    setContentView(1);\n"
        "    sendHandler = new Handler();",
    ),
    # mms-1/2 (missed): frees delivered via the unmodeled observer channel
    (
        "  void onChange(boolean selfChange) {\n"
        "    // invisible to the static analysis: ContentObserver callbacks are not\n"
        "    // in the threadifier's model (the section 8.6 unanalyzed-code case)\n"
        "    owner.draftCache = null;\n"
        "  }",
        "  void onChange(boolean selfChange) {\n"
        "    // invisible to the static analysis: ContentObserver callbacks are not\n"
        "    // in the threadifier's model (the section 8.6 unanalyzed-code case)\n"
        "    owner.draftCache = null;       // injected free (mms-1, missed)\n"
        "    owner.slideshowModel = null;   // injected free (mms-2, missed)\n"
        "  }",
    ),
    # mms-3..6 (detected): plain pairs
    (
        "  void onStop() {\n    super.onStop();\n    if (storageFailure) {",
        "  void onStop() {\n    super.onStop();\n"
        "    composeButton = null;          // injected free (mms-3)\n"
        "    slideshowModel = null;         // injected free pairing mms-4\n"
        "    if (storageFailure) {",
    ),
    (
        "  void onResume() {\n    super.onResume();\n    draftCache.refreshDraft();",
        "  void onResume() {\n    super.onResume();\n    draftCache.refreshDraft();\n"
        "    slideshowModel.renderSlide(2);   // injected use (mms-4)\n"
        "    sendHandler.post(new Runnable() {\n"
        "      public void run() {\n"
        "        draftCache.refreshDraft();   // injected use (mms-5)\n"
        "      }\n"
        "    });\n"
        "    sendHandler.post(new Runnable() {\n"
        "      public void run() {\n"
        "        slideshowModel = null;       // injected free (mms-6)\n"
        "      }\n"
        "    });",
    ),
    # give the injected frees real pairs: a hard free of draftCache and a
    # hard use of slideshowModel already exist? ensure a non-flag free:
    (
        "  void onDestroy() {\n    super.onDestroy();\n    draftCache = null;",
        "  void onPause() {\n    super.onPause();\n"
        "    draftCache = null;   // injected free pairing mms-5\n  }\n\n"
        "  void onDestroy() {\n    super.onDestroy();\n    draftCache = null;",
    ),
]

for _id, _field, _use, _free, _exp in [
    ("mms-1", "draftCache", "onResume", "onChange", MISSED),
    ("mms-2", "slideshowModel", "onResume", "onChange", MISSED),
    ("mms-3", "composeButton", "onClick", "onStop", DETECTED),
    ("mms-4", "slideshowModel", "onResume", "onStop", DETECTED),
    ("mms-5", "draftCache", "$", "onPause", DETECTED),
    ("mms-6", "slideshowModel", "", "$", DETECTED),
]:
    _inject(
        injection_id=_id,
        app_name="mms",
        description=f"injected pair on {_field}",
        anchor="", addition="",
        field=_field,
        expectation=_exp,
        use_method_hint=_use,
        free_method_hint=_free,
    )

# ---------------------------------------------------------------------------
# Browser (3: 1 detected, 2 pruned by CHB's may-finish assumption)
# ---------------------------------------------------------------------------

_BROWSER_PATCHES = [
    # rework the close listener: finish() only on an error path, but the
    # teardown always runs -- the real-bug shape CHB unsoundly prunes
    (
        "    closeButton.setOnClickListener(new OnClickListener() {\n"
        "      public void onClick(View v) {\n"
        "        // CHB: finish() stops every UI callback of this activity, so the\n"
        "        // teardown below cannot precede any surviving use\n"
        "        finish();\n"
        "        mTabControl = null;\n"
        "        mDownloads = null;\n"
        "      }\n"
        "    });",
        "    closeButton.setOnClickListener(new OnClickListener() {\n"
        "      public void onClick(View v) {\n"
        "        if (lowDiskSpace) {\n"
        "          finish();  // error handling on a special path (8.6)\n"
        "        }\n"
        "        mTabControl = null;   // injected free (browser-1, CHB-shadowed)\n"
        "        mDownloads = null;    // injected free (browser-2, CHB-shadowed)\n"
        "      }\n"
        "    });",
    ),
    (
        "class BrowserActivity extends Activity {\n  TabControl mTabControl;",
        "class BrowserActivity extends Activity {\n"
        "  boolean lowDiskSpace;\n  TabControl mTabControl;",
    ),
    # browser-3 (detected): an unguarded settings use vs the posted free
    (
        "  void onDestroy() {\n    super.onDestroy();\n    mWebView = null;",
        "  void onNewIntent(Intent intent) {\n"
        "    mSettings.syncPreferences();  // injected use (browser-3)\n"
        "  }\n\n"
        "  void onDestroy() {\n    super.onDestroy();\n    mWebView = null;",
    ),
]

for _id, _field, _use, _free, _exp in [
    ("browser-1", "mTabControl", "onClick", "$", PRUNED_UNSOUND),
    ("browser-2", "mDownloads", "onClick", "$", PRUNED_UNSOUND),
    ("browser-3", "mSettings", "onNewIntent", "$", DETECTED),
]:
    _inject(
        injection_id=_id,
        app_name="browser",
        description=f"injected pair on {_field}",
        anchor="", addition="",
        field=_field,
        expectation=_exp,
        use_method_hint=_use,
        free_method_hint=_free,
    )

# ---------------------------------------------------------------------------
# MyTracks_2 (1)
# ---------------------------------------------------------------------------

_MYTRACKS2_PATCHES = [
    (
        "  void onStop() {\n    super.onStop();\n    routeOverlay = null;",
        "  void onResume() {\n"
        "    super.onResume();\n"
        "    statsTable.updateRow(\"distance\");  // injected use (mytracks2-1)\n"
        "  }\n\n"
        "  void onStop() {\n    super.onStop();\n    routeOverlay = null;",
    ),
]

_inject(
    injection_id="mytracks2-1",
    app_name="mytracks2",
    description="unguarded stats use in onResume vs the hide-stats free",
    anchor="", addition="",
    field="statsTable",
    expectation=DETECTED,
    use_method_hint="onResume",
)

# ---------------------------------------------------------------------------
# K-9 Mail (1)
# ---------------------------------------------------------------------------

_K9_PATCHES = [
    (
        "  void onDestroy() {\n    super.onDestroy();\n    folderAdapter = null;",
        "  void onPause() {\n"
        "    super.onPause();\n"
        "    syncDialog = null;   // injected free (k9mail-1)\n"
        "  }\n\n"
        "  void onDestroy() {\n    super.onDestroy();\n    folderAdapter = null;",
    ),
]

_inject(
    injection_id="k9mail-1",
    app_name="k9mail",
    description="sync dialog freed on pause; the sync click still uses it",
    anchor="", addition="",
    field="syncDialog",
    expectation=DETECTED,
    free_method_hint="onPause",
)

# ---------------------------------------------------------------------------
# patch application
# ---------------------------------------------------------------------------

_PATCHES: Dict[str, List] = {
    "tomdroid": _TOMDROID_PATCHES,
    "sgtpuzzles": _SGTPUZZLES_PATCHES,
    "aard": _AARD_PATCHES,
    "music": _MUSIC_PATCHES,
    "mms": _MMS_PATCHES,
    "browser": _BROWSER_PATCHES,
    "mytracks2": _MYTRACKS2_PATCHES,
    "k9mail": _K9_PATCHES,
}

#: extra declarations some patches rely on (appended fields)
_FIELD_PATCHES: Dict[str, List] = {
    "sgtpuzzles": [
        (
            "class PuzzlesActivity extends Activity {\n  GameEngine engine;",
            "class PuzzlesActivity extends Activity {\n"
            "  Handler hintHandler;\n  View hintButton;\n  GameEngine engine;",
        ),
    ],
    "music": [
        (
            "class QueryBrowserActivity extends Activity {\n  TrackAdapter mAdapter;",
            "class QueryBrowserActivity extends Activity {\n"
            "  Handler queryHandler;\n  TrackAdapter mAdapter;",
        ),
    ],
}

INJECTED_APPS = tuple(sorted(_PATCHES))


def all_injections() -> List[Injection]:
    return list(_INJECTIONS)


def injections_for(app_name: str) -> List[Injection]:
    return [i for i in _INJECTIONS if i.app_name == app_name]


def injected_source(app_name: str) -> str:
    """The app's source with all its injections applied."""
    source = app(app_name).source()
    for old, new in _FIELD_PATCHES.get(app_name, []):
        if old not in source:
            raise ValueError(f"{app_name}: field-patch anchor not found:\n{old}")
        source = source.replace(old, new, 1)
    for old, new in _PATCHES.get(app_name, []):
        if old not in source:
            raise ValueError(f"{app_name}: patch anchor not found:\n{old}")
        source = source.replace(old, new, 1)
    return source


def injected_module(app_name: str) -> Module:
    """Compile the injected variant (unsealed, ready to threadify)."""
    return lower_sources(
        injected_source(app_name), module_name=f"{app_name}-injected",
        seal=False,
    )
