"""The 27-application evaluation corpus (paper Table 1).

Each corpus entry is a synthetic MiniDroid application standing in for one
of the paper's open-source subjects.  We cannot reproduce the real apps'
absolute warning counts; instead every app is seeded with the *kinds* of
use/free patterns its Table 1 row exhibits -- true harmful UAFs where the
paper found them, filterable-benign patterns where the paper's filters
fired, and labeled false-positive patterns matching the section 8.5
categories -- scaled down roughly one decimal order of magnitude.

Ground truth is carried per app: which fields hold genuinely harmful UAFs
(cross-checked dynamically by the schedule-search validator) and which
false-positive category each surviving benign field belongs to.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..android.manifest import ComponentDecl, infer_manifest, Manifest
from ..ir import Module
from ..lowering import lower_sources

#: Section 8.5 false-positive categories.
FP_PATH = "path-insensitivity"
FP_POINTS_TO = "points-to"
FP_NOT_REACHABLE = "not-reachable"
FP_MISSING_HB = "missing-hb"
FP_CATEGORIES = (FP_PATH, FP_POINTS_TO, FP_NOT_REACHABLE, FP_MISSING_HB)


@dataclass(frozen=True)
class PaperRow:
    """The app's Table 1 row (for paper-vs-measured reporting)."""

    loc: int
    potential: int
    after_sound: int
    after_unsound: int
    true_harmful: int


@dataclass(frozen=True)
class AppSpec:
    """One corpus application."""

    name: str
    group: str                    #: "train" or "test"
    description: str
    paper: PaperRow
    #: fields whose surviving warnings are true harmful UAFs
    true_uaf_fields: FrozenSet[str] = frozenset()
    #: surviving-but-benign fields -> FP category
    fp_fields: Dict[str, str] = field(default_factory=dict)
    #: component classes that are declared but unreachable
    unreachable_components: Tuple[str, ...] = ()

    @property
    def filename(self) -> str:
        return f"{self.name}.mjava"

    def source(self) -> str:
        package = importlib.resources.files("repro.corpus") / "apps" / self.filename
        return package.read_text()

    def compile(self) -> Module:
        """Lower the app's sources (unsealed, ready for threadification)."""
        return lower_sources(
            self.source(), module_name=self.name, seal=False
        )

    def manifest_for(self, module: Module) -> Optional[Manifest]:
        """Explicit manifest when the app marks components unreachable."""
        if not self.unreachable_components:
            return None
        manifest = infer_manifest(module, package=self.name)
        for class_name in self.unreachable_components:
            decl = manifest.component(class_name)
            if decl is not None:
                manifest.components[class_name] = ComponentDecl(
                    decl.name, decl.kind, reachable=False, main=decl.main
                )
        return manifest


_REGISTRY: Dict[str, AppSpec] = {}


class UnknownAppError(KeyError):
    """Raised when a corpus app name does not exist in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        known = ", ".join(sorted(_REGISTRY))
        return f"unknown corpus app {self.name!r} (known: {known})"


def _app(spec: AppSpec) -> AppSpec:
    _REGISTRY[spec.name] = spec
    return spec


def app(name: str) -> AppSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAppError(name) from None

def all_apps() -> List[AppSpec]:
    return list(_REGISTRY.values())


def train_apps() -> List[AppSpec]:
    return [a for a in _REGISTRY.values() if a.group == "train"]


def test_apps() -> List[AppSpec]:
    return [a for a in _REGISTRY.values() if a.group == "test"]


# ---------------------------------------------------------------------------
# Train group (the 7 CAFA applications, section 8.2)
# ---------------------------------------------------------------------------

_app(AppSpec(
    name="todolist",
    group="train",
    description="Task list; db lifecycle handled with guards (Table 3 row 1)",
    paper=PaperRow(loc=2637, potential=54, after_sound=32,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="zxing",
    group="train",
    description="Barcode scanner; camera teardown protected by UI-state "
                "interactions the analysis cannot see",
    paper=PaperRow(loc=6453, potential=263, after_sound=6,
                   after_unsound=2, true_harmful=0),
    fp_fields={"camera": FP_MISSING_HB, "decodeThread": FP_MISSING_HB},
))

_app(AppSpec(
    name="music",
    group="train",
    description="Media player; many browser activities sharing adapters and "
                "a playback service (Table 3 rows 2-10)",
    paper=PaperRow(loc=10518, potential=19167, after_sound=2491,
                   after_unsound=207, true_harmful=0),
    fp_fields={
        "mGuardedCursor": FP_PATH,
        "mSharedAdapter": FP_POINTS_TO,
        "mOrphanPlayer": FP_NOT_REACHABLE,
        "mToggleAdapter": FP_MISSING_HB,
    },
    unreachable_components=("HiddenPlaybackActivity",),
))

_app(AppSpec(
    name="mytracks1",
    group="train",
    description="GPS track recorder (CAFA version): recording service and "
                "provider threads race against UI teardown",
    paper=PaperRow(loc=27080, potential=825, after_sound=173,
                   after_unsound=80, true_harmful=29),
    true_uaf_fields=frozenset({
        "providerUtils", "recorder", "trackWriter", "statsUpdater",
    }),
    fp_fields={"binder": FP_PATH},
))

_app(AppSpec(
    name="browser",
    group="train",
    description="Web browser; everything filtered -- plus the Fragment UAF "
                "nAdroid's prototype cannot model (Table 3 last row)",
    paper=PaperRow(loc=30675, potential=34185, after_sound=8077,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="connectbot",
    group="train",
    description="SSH client; the Figure 1(a)/(b) service-connection UAFs "
                "plus further bridge/relay races",
    paper=PaperRow(loc=32645, potential=197, after_sound=33,
                   after_unsound=17, true_harmful=13),
    true_uaf_fields=frozenset({
        "bound", "hostBridge", "relay", "transport", "emulation",
    }),
    fp_fields={"prompted": FP_PATH},
))

_app(AppSpec(
    name="firefox",
    group="train",
    description="Gecko frontend; the Figure 1(c) looper-vs-pool UAF among "
                "a large benign surface",
    paper=PaperRow(loc=102658, potential=16546, after_sound=10004,
                   after_unsound=1540, true_harmful=1),
    true_uaf_fields=frozenset({"jClient"}),
    fp_fields={
        "mLayerController": FP_PATH,
        "mSessionMenu": FP_MISSING_HB,
        "mTabsAdapter": FP_POINTS_TO,
    },
))

# ---------------------------------------------------------------------------
# Test group (6 DroidRacer apps + 14 F-Droid apps, section 8.2)
# ---------------------------------------------------------------------------

_app(AppSpec(
    name="soundrecorder",
    group="test",
    description="Minimal recorder; guards everywhere",
    paper=PaperRow(loc=1194, potential=9, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="swiftnotes",
    group="test",
    description="Note pad with no shared mutable teardown at all",
    paper=PaperRow(loc=1571, potential=0, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="photoaffix",
    group="test",
    description="Photo stitcher; two benign flag-guarded pairs survive",
    paper=PaperRow(loc=1924, potential=84, after_sound=10,
                   after_unsound=4, true_harmful=0),
    fp_fields={"stitcher": FP_PATH, "progressDialog": FP_PATH},
))

_app(AppSpec(
    name="mlmanager",
    group="test",
    description="APK manager; getter idioms pruned by MA/UR",
    paper=PaperRow(loc=2073, potential=304, after_sound=38,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="instamaterial",
    group="test",
    description="Feed UI demo; post-chains pruned by PHB",
    paper=PaperRow(loc=2248, potential=6496, after_sound=544,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="tomdroid",
    group="test",
    description="Note sync client; clean",
    paper=PaperRow(loc=2372, potential=0, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="sgtpuzzles",
    group="test",
    description="Puzzle collection; every pair if-guarded on one looper",
    paper=PaperRow(loc=2944, potential=591, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="aard",
    group="test",
    description="Offline dictionary; true service-lookup UAFs plus "
                "unreachable-component and UI-state false positives",
    paper=PaperRow(loc=3684, potential=216, after_sound=111,
                   after_unsound=48, true_harmful=8),
    true_uaf_fields=frozenset({"dictionaryService", "lookupResult"}),
    fp_fields={
        "debugProbe": FP_NOT_REACHABLE,
        "volumeMenu": FP_MISSING_HB,
    },
    unreachable_components=("DebugConsoleActivity",),
))

_app(AppSpec(
    name="clipstack",
    group="test",
    description="Clipboard history; trivial",
    paper=PaperRow(loc=3948, potential=4, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="kisslauncher",
    group="test",
    description="Launcher; EC-EC pairs guarded by view enablement "
                "(the missing-HB FP signature)",
    paper=PaperRow(loc=5210, potential=264, after_sound=42,
                   after_unsound=36, true_harmful=0),
    fp_fields={"searchAdapter": FP_MISSING_HB, "resultsList": FP_MISSING_HB},
))

_app(AppSpec(
    name="dashclock",
    group="test",
    description="Widget host; one sound survivor pruned by UR",
    paper=PaperRow(loc=10147, potential=74, after_sound=1,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="dns66",
    group="test",
    description="Ad-blocking DNS; unreachable config screen dominates the "
                "false positives",
    paper=PaperRow(loc=10423, potential=99, after_sound=13,
                   after_unsound=13, true_harmful=0),
    fp_fields={
        "ruleDatabase": FP_NOT_REACHABLE,
        "vpnThread": FP_MISSING_HB,
    },
    unreachable_components=("ConfigImportActivity",),
))

_app(AppSpec(
    name="cleanmaster",
    group="test",
    description="Storage cleaner; tiny benign surface",
    paper=PaperRow(loc=11014, potential=7, after_sound=0,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="omninotes",
    group="test",
    description="Notes app; everything pruned by the sound filters",
    paper=PaperRow(loc=13720, potential=10360, after_sound=32,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="solitaire",
    group="test",
    description="Card game; one C-RT false positive from context merging",
    paper=PaperRow(loc=15478, potential=48, after_sound=31,
                   after_unsound=1, true_harmful=0),
    fp_fields={"deckImage": FP_POINTS_TO},
))

_app(AppSpec(
    name="mms",
    group="test",
    description="Messaging app; a large benign surface plus the "
                "ContentObserver path the static analysis cannot track",
    paper=PaperRow(loc=27578, potential=10439, after_sound=3990,
                   after_unsound=1207, true_harmful=0),
    fp_fields={
        "draftCache": FP_PATH,
        "slideshowModel": FP_PATH,
        "contactCache": FP_POINTS_TO,
        "composeButton": FP_MISSING_HB,
        "ratingDialog": FP_NOT_REACHABLE,
    },
    unreachable_components=("RateUsActivity",),
))

_app(AppSpec(
    name="mytracks2",
    group="test",
    description="GPS tracker (DroidRacer version): chart/stats updaters "
                "race with sensor teardown",
    paper=PaperRow(loc=37031, potential=1104, after_sound=145,
                   after_unsound=71, true_harmful=27),
    true_uaf_fields=frozenset({
        "chartUpdater", "sensorManagerProxy", "routeOverlay",
    }),
    fp_fields={"statsTable": FP_MISSING_HB},
))

_app(AppSpec(
    name="mimanganu",
    group="test",
    description="Manga reader; the one sound survivor is UR-benign",
    paper=PaperRow(loc=37827, potential=10, after_sound=1,
                   after_unsound=0, true_harmful=0),
))

_app(AppSpec(
    name="qksms",
    group="test",
    description="SMS client; posted conversation-loader UAFs are real",
    paper=PaperRow(loc=56082, potential=536, after_sound=171,
                   after_unsound=19, true_harmful=10),
    true_uaf_fields=frozenset({"conversationLoader", "composeCache"}),
    fp_fields={"themeCache": FP_PATH},
))

_app(AppSpec(
    name="k9mail",
    group="test",
    description="Mail client; the largest benign surface in the test group",
    paper=PaperRow(loc=78437, potential=45336, after_sound=4143,
                   after_unsound=918, true_harmful=0),
    fp_fields={
        "folderAdapter": FP_PATH,
        "accountStats": FP_POINTS_TO,
        "syncDialog": FP_MISSING_HB,
        "pushController": FP_PATH,
    },
))
