"""Synthetic 27-application evaluation corpus plus the Table 2 fault
injector and the seeded ground-truth app generator."""

from .generator import (
    EXPECT_FILTERED,
    EXPECT_SURVIVING,
    generate_app,
    generate_corpus,
    generated_app_index,
    generated_app_name,
    GeneratedApp,
    GeneratorConfig,
    GroundTruthLabel,
    LABEL_SCHEMA,
    label_manifest,
    labels_from_manifest,
    PATTERN_NAMES,
    PATTERNS,
)
from .registry import (
    all_apps,
    app,
    AppSpec,
    FP_CATEGORIES,
    FP_MISSING_HB,
    FP_NOT_REACHABLE,
    FP_PATH,
    FP_POINTS_TO,
    PaperRow,
    test_apps,
    train_apps,
    UnknownAppError,
)

__all__ = [
    "all_apps", "app", "AppSpec", "EXPECT_FILTERED", "EXPECT_SURVIVING",
    "FP_CATEGORIES", "FP_MISSING_HB", "FP_NOT_REACHABLE", "FP_PATH",
    "FP_POINTS_TO", "generate_app", "generate_corpus",
    "generated_app_index", "generated_app_name", "GeneratedApp",
    "GeneratorConfig", "GroundTruthLabel", "LABEL_SCHEMA",
    "label_manifest", "labels_from_manifest", "PaperRow", "PATTERN_NAMES",
    "PATTERNS", "test_apps", "train_apps", "UnknownAppError",
]
