"""Synthetic 27-application evaluation corpus plus the Table 2 fault
injector."""

from .registry import (
    all_apps,
    app,
    AppSpec,
    FP_CATEGORIES,
    FP_MISSING_HB,
    FP_NOT_REACHABLE,
    FP_PATH,
    FP_POINTS_TO,
    PaperRow,
    test_apps,
    train_apps,
)

__all__ = [
    "all_apps", "app", "AppSpec", "FP_CATEGORIES", "FP_MISSING_HB",
    "FP_NOT_REACHABLE", "FP_PATH", "FP_POINTS_TO", "PaperRow",
    "test_apps", "train_apps",
]
