"""Command-line interface: ``nadroid`` (or ``python -m repro.cli``).

Subcommands:

* ``analyze FILE...``  -- run the full pipeline on MiniDroid sources
* ``simulate FILE...`` -- execute an app under a random event schedule
* ``corpus``           -- Table 1 over the 27-app corpus
* ``figure5``          -- filter-effectiveness study
* ``table2``           -- injected false-negative study
* ``table3``           -- DEvA comparison
* ``timing``           -- section 8.8 stage breakdown
* ``bench``            -- corpus benchmark writing ``BENCH_<date>.json``

Observability (``docs/observability.md``): every corpus subcommand and
``analyze`` accept ``--trace`` (span tree on stderr) and
``--metrics-out PATH`` (deterministic JSON).  Observability output never
touches stdout, which stays byte-stable across ``--jobs`` settings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List


class CliError(Exception):
    """A user-facing error: printed as one line, exit code 2."""


def _read_sources(paths: List[str]):
    sources = []
    for p in paths:
        try:
            sources.append((p, Path(p).read_text()))
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot read {p}: {reason}") from exc
    return sources


def _make_runner(args: argparse.Namespace):
    """Build the corpus runner from the shared --jobs/--cache flags."""
    from .runner import CorpusRunner, default_cache_dir, ResultCache

    cache = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else default_cache_dir()
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot use cache directory {cache_dir}: {reason}"
            ) from exc
        cache = ResultCache(cache_dir)
    return CorpusRunner(jobs=args.jobs, cache=cache)


def _corpus_apps(args: argparse.Namespace):
    """Resolve an optional --apps subset against the registry."""
    from .corpus import all_apps, app

    if not getattr(args, "apps", None):
        return None
    try:
        return [app(name) for name in args.apps]
    except KeyError as exc:
        known = ", ".join(sorted(a.name for a in all_apps()))
        raise CliError(
            f"unknown corpus app {exc.args[0]!r} (known: {known})"
        ) from exc


def _report_stats(runner) -> None:
    """Fan-out/cache statistics go to stderr so stdout stays byte-stable
    across --jobs settings; the line is rendered from the run's metrics
    snapshot rather than hand-formatted."""
    if runner.last_metrics is not None:
        from .obs import describe_run

        print(f"[runner] {describe_run(runner.last_metrics.run)}",
              file=sys.stderr)


def _emit_observability(args, runner) -> None:
    """Honor --trace / --metrics-out for a runner-driven subcommand."""
    metrics = runner.last_metrics
    if metrics is None:
        return
    if getattr(args, "trace", False):
        from .obs import render_spans

        for snapshot in metrics.apps.values():
            rendered = render_spans(snapshot.spans)
            if rendered:
                print(rendered, file=sys.stderr)
    out = getattr(args, "metrics_out", None)
    if out:
        from .obs import write_json

        payload = {
            "run": metrics.run.to_dict(),
            "apps": {
                name: snapshot.to_dict()
                for name, snapshot in metrics.apps.items()
            },
            "totals": metrics.totals().to_dict(),
        }
        try:
            write_json(out, payload)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot write metrics to {out}: {reason}") from exc
        print(f"[obs] wrote {out}", file=sys.stderr)


def cmd_analyze(args: argparse.Namespace) -> int:
    from . import obs
    from .core import analyze_app, AnalysisConfig
    from .race.detector import DetectorOptions

    config = AnalysisConfig(
        k=args.k,
        detector=DetectorOptions(engine=args.engine),
    )
    recorder = obs.Recorder(profile_stages=args.profile_stage or ())
    with obs.use(recorder):
        result = analyze_app(_read_sources(args.files), config=config)
    snapshot = recorder.snapshot()
    if args.trace:
        print(obs.render_spans(snapshot.spans), file=sys.stderr)
        print(obs.render_metrics(snapshot), file=sys.stderr)
    if args.profile_stage:
        for root in recorder.roots:
            for node in root.walk():
                profile = node.attrs.get("profile")
                if profile:
                    print(f"[profile] {node.name}\n{profile}",
                          file=sys.stderr)
    if args.metrics_out:
        try:
            obs.write_json(args.metrics_out, snapshot.to_dict())
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write metrics to {args.metrics_out}: {reason}"
            ) from exc
        print(f"[obs] wrote {args.metrics_out}", file=sys.stderr)
    counts = result.counts()
    print(f"modeled threads : EC={counts['EC']} PC={counts['PC']} "
          f"T={counts['T']}")
    print(f"potential UAFs  : {counts['potential']}")
    print(f"after sound     : {counts['after_sound']}")
    print(f"after unsound   : {counts['after_unsound']}")
    by_type = {k: v for k, v in result.by_pair_type().items() if v}
    if by_type:
        print(f"origin split    : {by_type}")
    print()
    for warning in result.remaining():
        print(warning.describe(result.program.forest))
        if args.validate:
            from .runtime import Simulator, validate_warning

            program = result.program

            def make_sim():
                return Simulator(program.module, program.manifest)

            verdict = validate_warning(make_sim, warning)
            status = "CONFIRMED harmful" if verdict.confirmed \
                else "not confirmed (possible false positive)"
            print(f"  dynamic check: {status} "
                  f"({verdict.schedules_tried} schedules)")
        print()
    return 0 if not result.remaining() else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from .lowering import compile_app
    from .runtime import RandomScheduler, Simulator
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    sim = Simulator(program.module, program.manifest)
    sim.run(RandomScheduler(args.seed), max_decisions=args.max_decisions)
    print(f"executed {sim.total_steps} decisions "
          f"({len(sim.trace)} events dispatched)")
    for line in sim.trace:
        print("  " + line)
    if sim.exceptions:
        print("exceptions:")
        for exc in sim.exceptions:
            print(f"  {exc}")
        return 1
    print("no exceptions raised")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from .harness import (
        fp_totals, render_table1, run_table1, save_result_analysis,
        total_true_harmful,
    )

    runner = _make_runner(args)
    rows = run_table1(
        validate=args.validate, apps=_corpus_apps(args), runner=runner
    )
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_table1(rows))
    if args.validate:
        print(f"\ntrue harmful UAFs: {total_true_harmful(rows)}")
        print(f"false positives by category: {fp_totals(rows)}")
    if args.csv:
        save_result_analysis(rows, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_nosleep(args: argparse.Namespace) -> int:
    from .analysis import run_pointsto
    from .extensions import detect_nosleep
    from .lowering import compile_app
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    pointsto = run_pointsto(program.module)
    warnings = detect_nosleep(program, pointsto)
    if not warnings:
        print("no no-sleep risks found")
        return 0
    for warning in warnings:
        print(warning.describe(program))
        print()
    return 1


def cmd_figure5(args: argparse.Namespace) -> int:
    from .harness import render_figure5, run_figure5

    runner = _make_runner(args)
    data = run_figure5(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_figure5(data))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from .harness import render_table2, run_table2

    runner = _make_runner(args)
    outcomes = run_table2(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_table2(outcomes))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .harness import render_table3, run_table3

    runner = _make_runner(args)
    rows = run_table3(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_table3(rows, runner=runner))
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    from .harness import render_timing, run_timing

    runner = _make_runner(args)
    data = run_timing(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_timing(data))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .harness import default_bench_path, run_bench, write_bench

    # Bench measures; a warm cache would replay old durations.  Only use
    # the cache when the user explicitly points at one.
    if not args.cache_dir:
        args.no_cache = True
    runner = _make_runner(args)
    payload = run_bench(runner, apps=_corpus_apps(args))
    _report_stats(runner)
    _emit_observability(args, runner)
    out = args.out or default_bench_path()
    try:
        write_bench(payload, out)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliError(f"cannot write benchmark to {out}: {reason}") from exc
    print(f"[bench] wrote {out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nadroid",
        description="nAdroid (CGO'18) reproduction: static ordering-"
                    "violation detection for Android-style programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="analyze MiniDroid sources")
    p.add_argument("files", nargs="+", help="MiniDroid (.mjava) source files")
    p.add_argument("--k", type=int, default=2,
                   help="k for k-object-sensitive points-to (default 2)")
    p.add_argument("--engine", choices=("datalog", "imperative"),
                   default="datalog", help="race-pair solver backend")
    p.add_argument("--validate", action="store_true",
                   help="dynamically confirm surviving warnings")
    p.add_argument("--trace", action="store_true",
                   help="print the stage span tree and metrics to stderr")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics snapshot as JSON to PATH")
    p.add_argument("--profile-stage", action="append", metavar="STAGE",
                   help="cProfile a pipeline stage (e.g. pointsto, "
                        "detect); repeatable; report goes to stderr")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("simulate", help="run an app under a random schedule")
    p.add_argument("files", nargs="+")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-decisions", type=int, default=2000)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "nosleep",
        help="detect no-sleep energy bugs (the section 9 extension)",
    )
    p.add_argument("files", nargs="+")
    p.set_defaults(fn=cmd_nosleep)

    def _add_runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="analyze N apps in parallel worker processes "
                            "(default 1 = serial)")
        p.add_argument("--cache-dir", metavar="PATH",
                       help="result cache directory (default: "
                            "$NADROID_CACHE_DIR or ~/.cache/nadroid)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for this run")
        p.add_argument("--trace", action="store_true",
                       help="print per-app span trees to stderr (worker "
                            "spans nest under each app's root)")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write run + per-app metrics as JSON to PATH")

    p = sub.add_parser("corpus", help="Table 1 over the 27-app corpus")
    p.add_argument("--validate", action="store_true")
    p.add_argument("--csv", metavar="PATH",
                   help="also write a ResultAnalysis.csv-style file")
    p.add_argument("--apps", nargs="+", metavar="NAME",
                   help="restrict to these corpus apps (default: all 27)")
    _add_runner_flags(p)
    p.set_defaults(fn=cmd_corpus)

    for name, fn, help_text in (
        ("figure5", cmd_figure5, "filter effectiveness (Figure 5)"),
        ("table2", cmd_table2, "injected false-negative study (Table 2)"),
        ("table3", cmd_table3, "DEvA comparison (Table 3)"),
        ("timing", cmd_timing, "stage time breakdown (section 8.8)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_runner_flags(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser(
        "bench",
        help="run the corpus benchmark and write BENCH_<date>.json",
    )
    p.add_argument("--apps", nargs="+", metavar="NAME",
                   help="restrict to these corpus apps (default: all 27)")
    p.add_argument("--out", metavar="PATH",
                   help="output path (default: BENCH_<YYYY-MM-DD>.json)")
    _add_runner_flags(p)
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CliError as exc:
        print(f"nadroid: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
