"""Command-line interface: ``nadroid`` (or ``python -m repro.cli``).

Subcommands:

* ``analyze FILE...``  -- run the full pipeline on MiniDroid sources
* ``simulate FILE...`` -- execute an app under a random event schedule
* ``corpus``           -- Table 1 over the 27-app corpus
* ``figure5``          -- filter-effectiveness study
* ``table2``           -- injected false-negative study
* ``table3``           -- DEvA comparison
* ``timing``           -- section 8.8 stage breakdown
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List


def _read_sources(paths: List[str]):
    return [(p, Path(p).read_text()) for p in paths]


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core import analyze_app, AnalysisConfig
    from .race.detector import DetectorOptions

    config = AnalysisConfig(
        k=args.k,
        detector=DetectorOptions(engine=args.engine),
    )
    result = analyze_app(_read_sources(args.files), config=config)
    counts = result.counts()
    print(f"modeled threads : EC={counts['EC']} PC={counts['PC']} "
          f"T={counts['T']}")
    print(f"potential UAFs  : {counts['potential']}")
    print(f"after sound     : {counts['after_sound']}")
    print(f"after unsound   : {counts['after_unsound']}")
    by_type = {k: v for k, v in result.by_pair_type().items() if v}
    if by_type:
        print(f"origin split    : {by_type}")
    print()
    for warning in result.remaining():
        print(warning.describe(result.program.forest))
        if args.validate:
            from .runtime import Simulator, validate_warning

            program = result.program

            def make_sim():
                return Simulator(program.module, program.manifest)

            verdict = validate_warning(make_sim, warning)
            status = "CONFIRMED harmful" if verdict.confirmed \
                else "not confirmed (possible false positive)"
            print(f"  dynamic check: {status} "
                  f"({verdict.schedules_tried} schedules)")
        print()
    return 0 if not result.remaining() else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from .lowering import compile_app
    from .runtime import RandomScheduler, Simulator
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    sim = Simulator(program.module, program.manifest)
    sim.run(RandomScheduler(args.seed), max_decisions=args.max_decisions)
    print(f"executed {sim.total_steps} decisions "
          f"({len(sim.trace)} events dispatched)")
    for line in sim.trace:
        print("  " + line)
    if sim.exceptions:
        print("exceptions:")
        for exc in sim.exceptions:
            print(f"  {exc}")
        return 1
    print("no exceptions raised")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from .harness import (
        fp_totals, render_table1, run_table1, save_result_analysis,
        total_true_harmful,
    )

    rows = run_table1(validate=args.validate)
    print(render_table1(rows))
    if args.validate:
        print(f"\ntrue harmful UAFs: {total_true_harmful(rows)}")
        print(f"false positives by category: {fp_totals(rows)}")
    if args.csv:
        save_result_analysis(rows, args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def cmd_nosleep(args: argparse.Namespace) -> int:
    from .analysis import run_pointsto
    from .extensions import detect_nosleep
    from .lowering import compile_app
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    pointsto = run_pointsto(program.module)
    warnings = detect_nosleep(program, pointsto)
    if not warnings:
        print("no no-sleep risks found")
        return 0
    for warning in warnings:
        print(warning.describe(program))
        print()
    return 1


def cmd_figure5(args: argparse.Namespace) -> int:
    from .harness import render_figure5, run_figure5

    print(render_figure5(run_figure5()))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from .harness import render_table2, run_table2

    print(render_table2(run_table2()))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .harness import render_table3, run_table3

    print(render_table3(run_table3()))
    return 0


def cmd_timing(args: argparse.Namespace) -> int:
    from .harness import render_timing, run_timing

    print(render_timing(run_timing()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nadroid",
        description="nAdroid (CGO'18) reproduction: static ordering-"
                    "violation detection for Android-style programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="analyze MiniDroid sources")
    p.add_argument("files", nargs="+", help="MiniDroid (.mjava) source files")
    p.add_argument("--k", type=int, default=2,
                   help="k for k-object-sensitive points-to (default 2)")
    p.add_argument("--engine", choices=("datalog", "imperative"),
                   default="datalog", help="race-pair solver backend")
    p.add_argument("--validate", action="store_true",
                   help="dynamically confirm surviving warnings")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("simulate", help="run an app under a random schedule")
    p.add_argument("files", nargs="+")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-decisions", type=int, default=2000)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "nosleep",
        help="detect no-sleep energy bugs (the section 9 extension)",
    )
    p.add_argument("files", nargs="+")
    p.set_defaults(fn=cmd_nosleep)

    p = sub.add_parser("corpus", help="Table 1 over the 27-app corpus")
    p.add_argument("--validate", action="store_true")
    p.add_argument("--csv", metavar="PATH",
                   help="also write a ResultAnalysis.csv-style file")
    p.set_defaults(fn=cmd_corpus)

    for name, fn, help_text in (
        ("figure5", cmd_figure5, "filter effectiveness (Figure 5)"),
        ("table2", cmd_table2, "injected false-negative study (Table 2)"),
        ("table3", cmd_table3, "DEvA comparison (Table 3)"),
        ("timing", cmd_timing, "stage time breakdown (section 8.8)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
