"""Command-line interface: ``nadroid`` (or ``python -m repro.cli``).

Subcommands:

* ``analyze FILE...``  -- run the full pipeline on MiniDroid sources
* ``explain FILE...``  -- full per-warning provenance (section 7 reports)
* ``diff OLD NEW``     -- compare two report JSONs; the regression gate
* ``simulate FILE...`` -- execute an app under a random event schedule
* ``corpus``           -- Table 1 over the 27-app corpus
* ``corpus generate``  -- write a seeded generated corpus with
  ground-truth labels (``docs/corpus.md``)
* ``corpus score``     -- analyze a generated corpus and grade the
  pipeline against its labels (recall/precision gates)
* ``figure5``          -- filter-effectiveness study
* ``table2``           -- injected false-negative study
* ``table3``           -- DEvA comparison
* ``timing``           -- section 8.8 stage breakdown
* ``hotspots``         -- top-K hotspot attribution table (per-rule,
  per-stratum, per-(method, context) work inside the fixpoint cores)
* ``events summarize`` -- funnel + latency digest of an
  ``--events-out`` JSONL stream
* ``bench``            -- corpus benchmark writing ``BENCH_<date>.json``;
  ``--compare OLD.json`` turns it into the perf regression gate
  (``docs/performance.md``): exit 4 on work-counter or wall-time
  regressions against the baseline; ``--generated N`` benchmarks a
  seeded generated corpus instead of the registry apps;
  ``--history DIR`` appends the run to a history directory and
  ``bench trend DIR`` charts it, exiting 4 on monotone drift
* ``serve``            -- long-running analysis daemon: JSON job API +
  telemetry on one loopback port (``docs/service.md``)
* ``cache prune``      -- sweep quarantined (or all) result-cache entries

Observability (``docs/observability.md``): every corpus subcommand and
``analyze`` accept ``--trace`` (span tree on stderr), ``--metrics-out
PATH`` (deterministic JSON) and ``--trace-out PATH`` (Chrome
trace-event / Perfetto JSON timeline).  Corpus subcommands also accept
``--events-out PATH`` (structured JSONL event stream, tail-able
mid-run; ``events summarize [--json]`` digests it and ``events
to-trace`` converts it to a timeline), ``--progress`` (opt-in stderr
progress line per finished app), ``--memory`` (tracemalloc peak gauges
per stage and app) and ``--serve-telemetry PORT`` (live 127.0.0.1-only
HTTP endpoint: Prometheus ``/metrics``, ``/healthz``, ``/progress``
JSON).  ``hotspots --flame PATH`` writes collapsed-stack flamegraph
input.  Observability output never touches stdout, which stays
byte-stable across ``--jobs`` settings.

Reporting (``docs/reporting.md``): ``analyze``, ``explain`` and
``corpus`` accept ``--report-out PATH`` (deterministic report JSON) and
``--sarif-out PATH`` (SARIF 2.1.0); ``diff`` compares two report files
and exits non-zero under ``--fail-on-new`` when a regression appears.

Fault tolerance (``docs/robustness.md``): every corpus subcommand
accepts ``--timeout SECS``, ``--max-retries N`` and
``--keep-going``/``--fail-fast``.  Under ``--keep-going`` one
pathological app costs one structured fault entry while the others
complete, and the process exits with code 3.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List


class CliError(Exception):
    """A user-facing error: printed as one line, exit code 2."""


def _read_sources(paths: List[str]):
    sources = []
    for p in paths:
        try:
            sources.append((p, Path(p).read_text()))
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot read {p}: {reason}") from exc
    return sources


def _make_runner(args: argparse.Namespace):
    """Build the corpus runner from the shared --jobs/--cache/fault flags."""
    from .resilience import FaultPolicy
    from .runner import CorpusRunner, default_cache_dir, ResultCache

    cache = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else default_cache_dir()
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot use cache directory {cache_dir}: {reason}"
            ) from exc
        cache = ResultCache(cache_dir)
    if getattr(args, "timeout", None) is not None and args.timeout <= 0:
        raise CliError("--timeout must be a positive number of seconds")
    if getattr(args, "max_retries", 1) < 0:
        raise CliError("--max-retries must be >= 0")
    policy = FaultPolicy(
        timeout=getattr(args, "timeout", None),
        max_retries=getattr(args, "max_retries", 1),
        keep_going=getattr(args, "keep_going", False),
    )
    sinks = []
    events_out = getattr(args, "events_out", None)
    if events_out:
        from .obs import JsonlEventSink

        try:
            # fail before the run starts, not at the first event
            open(events_out, "w", encoding="utf-8").close()
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write events to {events_out}: {reason}"
            ) from exc
        sinks.append(JsonlEventSink(events_out))
    if getattr(args, "progress", False):
        from .obs import ProgressSink

        sinks.append(ProgressSink(sys.stderr))
    if getattr(args, "trace_out", None):
        from .obs import MemoryEventSink

        # retain the stream in memory so the Chrome trace can carry the
        # run's instant events alongside the span lanes
        args._trace_events = MemoryEventSink()
        sinks.append(args._trace_events)
    events = None
    if sinks:
        from .obs import RunEventLog

        events = RunEventLog(sinks)
    # remembered so main() can close the sinks even on a faulted run
    args._events_log = events
    telemetry = _make_telemetry(args)
    return CorpusRunner(jobs=args.jobs, cache=cache, policy=policy,
                        events=events,
                        memory=getattr(args, "memory", False),
                        telemetry=telemetry)


def _make_telemetry(args: argparse.Namespace):
    """Honor --serve-telemetry: start the live endpoint before the run.

    Returns the :class:`repro.obs.LiveAggregator` to attach to the
    runner (or ``None``).  The server binds 127.0.0.1 only and is shut
    down by main() after the run, even on faults.
    """
    port = getattr(args, "serve_telemetry", None)
    if port is None:
        return None
    if not 0 <= port <= 65535:
        raise CliError("--serve-telemetry must be a port number (0-65535; "
                       "0 picks a free port)")
    from .obs import LiveAggregator, TelemetryServer

    aggregator = LiveAggregator()
    server = TelemetryServer(aggregator, port=port)
    try:
        server.start()
    except OSError as exc:
        reason = getattr(exc, "strerror", None) or str(exc)
        raise CliError(
            f"cannot serve telemetry on port {port}: {reason}"
        ) from exc
    args._telemetry_server = server
    # machine-readable: scripts parse host:port out of "listening on"
    print(f"[telemetry] listening on 127.0.0.1:{server.port} "
          f"(/metrics /healthz /progress)", file=sys.stderr, flush=True)
    return aggregator


def _corpus_apps(args: argparse.Namespace):
    """Resolve an optional --apps subset against the registry."""
    from .corpus import app, UnknownAppError

    if not getattr(args, "apps", None):
        return None
    try:
        return [app(name) for name in args.apps]
    except UnknownAppError as exc:
        # the registry error already names the bad entry and the known apps
        raise CliError(str(exc)) from exc


def _report_stats(runner) -> None:
    """Fan-out/cache statistics go to stderr so stdout stays byte-stable
    across --jobs settings; the line is rendered from the run's metrics
    snapshot rather than hand-formatted."""
    if runner.last_metrics is not None:
        from .obs import describe_run

        print(f"[runner] {describe_run(runner.last_metrics.run)}",
              file=sys.stderr)


#: exit code for "the run completed, but some apps faulted" (--keep-going)
EXIT_FAULTS = 3

#: exit code for "interrupted by Ctrl-C" (128 + SIGINT, the shell idiom)
EXIT_INTERRUPTED = 130


def _report_faults(runner) -> int:
    """Print one stderr line per app-level fault; return the exit code
    contribution (EXIT_FAULTS when any app faulted, else 0)."""
    if not runner.last_faults:
        return 0
    for fault in runner.last_faults:
        print(f"[fault] {fault.describe()}", file=sys.stderr)
    return EXIT_FAULTS


def _emit_observability(args, runner) -> None:
    """Honor --trace / --metrics-out for a runner-driven subcommand."""
    metrics = runner.last_metrics
    if metrics is None:
        return
    if getattr(args, "trace", False):
        from .obs import render_spans

        for snapshot in metrics.apps.values():
            rendered = render_spans(snapshot.spans)
            if rendered:
                print(rendered, file=sys.stderr)
    out = getattr(args, "metrics_out", None)
    if out:
        from .obs import write_json

        payload = {
            "run": metrics.run.to_dict(),
            "apps": {
                name: snapshot.to_dict()
                for name, snapshot in metrics.apps.items()
            },
            "totals": metrics.totals().to_dict(),
        }
        try:
            write_json(out, payload)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot write metrics to {out}: {reason}") from exc
        print(f"[obs] wrote {out}", file=sys.stderr)
    out = getattr(args, "trace_out", None)
    if out:
        from .obs import chrome_trace, write_trace

        sink = getattr(args, "_trace_events", None)
        trace = chrome_trace(
            metrics.apps,
            events=sink.records if sink is not None else None,
        )
        try:
            write_trace(out, trace)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot write trace to {out}: {reason}") from exc
        print(f"[trace] wrote {out}", file=sys.stderr)


def _emit_report_outputs(args, report) -> None:
    """Honor --report-out / --sarif-out for an AnalysisReport."""
    for key, flag in (("trace", "trace_out"), ("events", "events_out"),
                      ("metrics", "metrics_out")):
        value = getattr(args, flag, None)
        if value:
            # pointers only: the run report records *where* the sibling
            # artifacts went, never their contents
            report.artifacts[key] = str(value)
    out = getattr(args, "report_out", None)
    if out:
        from .report import write_report

        try:
            write_report(report, out)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot write report to {out}: {reason}") from exc
        print(f"[report] wrote {out}", file=sys.stderr)
    out = getattr(args, "sarif_out", None)
    if out:
        from .report import write_sarif

        try:
            write_sarif(report, out)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot write SARIF to {out}: {reason}") from exc
        print(f"[sarif] wrote {out}", file=sys.stderr)


def _single_app_report(args, result, recorder):
    """The one-app AnalysisReport behind analyze/explain outputs.

    Delegates to the job layer's projection so the ``repro serve``
    daemon and the CLI cannot drift apart byte-wise."""
    from .service.jobs import single_app_report

    return single_app_report(
        result,
        source=args.files[0],
        metrics=recorder.snapshot() if recorder is not None else None,
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    from . import obs
    from .core import analyze_app, AnalysisConfig
    from .race.detector import DetectorOptions

    config = AnalysisConfig(
        k=args.k,
        detector=DetectorOptions(engine=args.engine),
    )
    recorder = obs.Recorder(profile_stages=args.profile_stage or ())
    with obs.use(recorder):
        if args.memory:
            with obs.track_memory(recorder):
                result = analyze_app(_read_sources(args.files),
                                     config=config)
        else:
            result = analyze_app(_read_sources(args.files), config=config)
    snapshot = recorder.snapshot()
    if args.trace:
        print(obs.render_spans(snapshot.spans), file=sys.stderr)
        print(obs.render_metrics(snapshot), file=sys.stderr)
    if args.hotspots:
        entries = obs.collect_hotspots([snapshot])
        print(obs.render_hotspots(entries, top=args.hotspots),
              file=sys.stderr)
    if args.profile_stage:
        for root in recorder.roots:
            for node in root.walk():
                profile = node.attrs.get("profile")
                if profile:
                    print(f"[profile] {node.name}\n{profile}",
                          file=sys.stderr)
    if args.metrics_out:
        try:
            obs.write_json(args.metrics_out, snapshot.to_dict())
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write metrics to {args.metrics_out}: {reason}"
            ) from exc
        print(f"[obs] wrote {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        from .obs import chrome_trace, write_trace

        try:
            write_trace(args.trace_out, chrome_trace({"app": snapshot}))
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write trace to {args.trace_out}: {reason}"
            ) from exc
        print(f"[trace] wrote {args.trace_out}", file=sys.stderr)
    if args.report_out or args.sarif_out:
        _emit_report_outputs(args, _single_app_report(args, result, recorder))
    counts = result.counts()
    print(f"modeled threads : EC={counts['EC']} PC={counts['PC']} "
          f"T={counts['T']}")
    print(f"potential UAFs  : {counts['potential']}")
    print(f"after sound     : {counts['after_sound']}")
    print(f"after unsound   : {counts['after_unsound']}")
    by_type = {k: v for k, v in result.by_pair_type().items() if v}
    if by_type:
        print(f"origin split    : {by_type}")
    print()
    for warning in result.remaining():
        print(warning.describe(result.program.forest))
        if args.validate:
            from .runtime import Simulator, validate_warning

            program = result.program

            def make_sim():
                return Simulator(program.module, program.manifest)

            verdict = validate_warning(make_sim, warning)
            status = "CONFIRMED harmful" if verdict.confirmed \
                else "not confirmed (possible false positive)"
            print(f"  dynamic check: {status} "
                  f"({verdict.schedules_tried} schedules)")
        print()
    return 0 if not result.remaining() else 1


def cmd_explain(args: argparse.Namespace) -> int:
    from . import obs
    from .core import analyze_app, AnalysisConfig
    from .race.detector import DetectorOptions
    from .report import render_app_explanations

    config = AnalysisConfig(
        k=args.k,
        detector=DetectorOptions(engine=args.engine),
    )
    recorder = obs.Recorder()
    with obs.use(recorder):
        result = analyze_app(_read_sources(args.files), config=config)
    report = _single_app_report(args, result, recorder)
    app_report = report.apps["app"]
    by_status = {s: len(ws) for s, ws in app_report.by_status().items()}
    print(f"{len(app_report.warnings)} potential warning(s): "
          f"{by_status['remaining']} remaining, "
          f"{by_status['downgraded']} downgraded, "
          f"{by_status['pruned']} pruned")
    text = render_app_explanations(
        app_report, statuses=args.status or None
    )
    if text:
        print()
        print(text)
    _emit_report_outputs(args, report)
    return 0 if not result.remaining() else 1


def cmd_diff(args: argparse.Namespace) -> int:
    from .report import (
        diff_reports, exit_code, load_report, render_diff, REPORT_SCHEMA,
    )

    payloads = []
    for path in (args.old, args.new):
        try:
            payload = load_report(path)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot read {path}: {reason}") from exc
        except ValueError as exc:
            raise CliError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) \
                or payload.get("schema") != REPORT_SCHEMA:
            raise CliError(
                f"{path} is not a nadroid report "
                f"(expected schema {REPORT_SCHEMA})"
            )
        payloads.append(payload)
    diff = diff_reports(payloads[0], payloads[1])
    print(render_diff(diff))
    return exit_code(diff, args.fail_on_new)


def cmd_simulate(args: argparse.Namespace) -> int:
    from .lowering import compile_app
    from .runtime import RandomScheduler, Simulator
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    sim = Simulator(program.module, program.manifest)
    sim.run(RandomScheduler(args.seed), max_decisions=args.max_decisions)
    print(f"executed {sim.total_steps} decisions "
          f"({len(sim.trace)} events dispatched)")
    for line in sim.trace:
        print("  " + line)
    if sim.exceptions:
        print("exceptions:")
        for exc in sim.exceptions:
            print(f"  {exc}")
        return 1
    print("no exceptions raised")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from .harness import (
        fp_totals, render_table1, run_table1, save_result_analysis,
        total_true_harmful,
    )

    runner = _make_runner(args)
    rows = run_table1(
        validate=args.validate, apps=_corpus_apps(args), runner=runner
    )
    _report_stats(runner)
    _emit_observability(args, runner)
    if args.report_out or args.sarif_out:
        from .report import build_app_report, build_report, fault_app_report

        metrics = runner.last_metrics
        per_app = metrics.apps if metrics is not None else {}
        # Faulted apps have no row but still get a report entry carrying
        # their structured fault record, so the run report always has
        # one entry per input app.
        report = build_report([
            build_app_report(
                row.app.name, row.result,
                metrics=per_app.get(row.app.name),
            )
            for row in rows
        ] + [
            fault_app_report(fault.to_dict())
            for fault in runner.last_faults
        ])
        _emit_report_outputs(args, report)
    print(render_table1(rows))
    if args.validate:
        print(f"\ntrue harmful UAFs: {total_true_harmful(rows)}")
        print(f"false positives by category: {fp_totals(rows)}")
    if args.csv:
        save_result_analysis(rows, args.csv)
        print(f"\nwrote {args.csv}")
    return _report_faults(runner)


def _generator_config(args: argparse.Namespace):
    """Build (and validate) a GeneratorConfig from the generate/score flags."""
    from .corpus import GeneratorConfig

    if args.count <= 0:
        raise CliError("--count must be a positive number of apps")
    if args.min_patterns < 1 or args.max_patterns < args.min_patterns:
        raise CliError(
            "--min-patterns/--max-patterns must satisfy 1 <= min <= max"
        )
    if not 0.0 <= args.clean_ratio <= 1.0:
        raise CliError("--clean-ratio must be between 0 and 1")
    if args.max_filler_classes < 0:
        raise CliError("--max-filler-classes must be >= 0")
    return GeneratorConfig(
        seed=args.seed,
        count=args.count,
        min_patterns=args.min_patterns,
        max_patterns=args.max_patterns,
        clean_ratio=args.clean_ratio,
        max_filler_classes=args.max_filler_classes,
    )


def cmd_corpus_generate(args: argparse.Namespace) -> int:
    from .corpus import generate_corpus, label_manifest
    from .obs import write_json

    gconfig = _generator_config(args)
    apps = generate_corpus(gconfig)
    out = Path(args.out)
    try:
        out.mkdir(parents=True, exist_ok=True)
        for app in apps:
            (out / f"{app.name}.mjava").write_text(app.source)
        manifest_path = Path(args.manifest_out) if args.manifest_out \
            else out / "labels.json"
        write_json(str(manifest_path), label_manifest(gconfig, apps))
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliError(f"cannot write generated corpus: {reason}") from exc
    labels = sum(len(app.labels) for app in apps)
    clean = sum(1 for app in apps if app.clean)
    print(f"generated {len(apps)} apps ({labels} labels, {clean} clean) "
          f"in {out}")
    print(f"ground-truth manifest: {manifest_path}")
    return 0


def cmd_corpus_score(args: argparse.Namespace) -> int:
    from .harness import run_generated
    from .report import render_score, score_generated

    for name, value in (("--fail-under-recall", args.fail_under_recall),
                        ("--fail-under-precision",
                         args.fail_under_precision)):
        if value is not None and not 0.0 <= value <= 1.0:
            raise CliError(f"{name} must be between 0 and 1")
    gconfig = _generator_config(args)
    runner = _make_runner(args)
    apps, results = run_generated(runner, gconfig)
    _report_stats(runner)
    _emit_observability(args, runner)
    report = score_generated(apps, results)
    print(render_score(report))
    if args.score_out:
        from .obs import write_json

        try:
            write_json(args.score_out, report.to_dict())
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write score report to {args.score_out}: {reason}"
            ) from exc
        print(f"[score] wrote {args.score_out}", file=sys.stderr)
    code = _report_faults(runner)
    if args.fail_under_recall is not None \
            and report.recall < args.fail_under_recall:
        print(f"[score] gate: recall {report.recall:.3f} < "
              f"{args.fail_under_recall}", file=sys.stderr)
        code = max(code, 1)
    if args.fail_under_precision is not None \
            and report.precision < args.fail_under_precision:
        print(f"[score] gate: precision {report.precision:.3f} < "
              f"{args.fail_under_precision}", file=sys.stderr)
        code = max(code, 1)
    return code


def cmd_nosleep(args: argparse.Namespace) -> int:
    from .analysis import run_pointsto
    from .extensions import detect_nosleep
    from .lowering import compile_app
    from .threadify import threadify

    module = compile_app(_read_sources(args.files), seal=False)
    program = threadify(module)
    pointsto = run_pointsto(program.module)
    warnings = detect_nosleep(program, pointsto)
    if not warnings:
        print("no no-sleep risks found")
        return 0
    for warning in warnings:
        print(warning.describe(program))
        print()
    return 1


def cmd_figure5(args: argparse.Namespace) -> int:
    from .harness import render_figure5, run_figure5

    runner = _make_runner(args)
    data = run_figure5(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_figure5(data))
    return _report_faults(runner)


def cmd_table2(args: argparse.Namespace) -> int:
    from .harness import render_table2, run_table2

    runner = _make_runner(args)
    outcomes = run_table2(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_table2(outcomes))
    return _report_faults(runner)


def cmd_table3(args: argparse.Namespace) -> int:
    from .harness import render_table3, run_table3

    runner = _make_runner(args)
    rows = run_table3(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_table3(rows, runner=runner))
    return _report_faults(runner)


def cmd_timing(args: argparse.Namespace) -> int:
    from .harness import render_timing, run_timing

    runner = _make_runner(args)
    data = run_timing(runner=runner)
    _report_stats(runner)
    _emit_observability(args, runner)
    print(render_timing(data))
    return _report_faults(runner)


def cmd_hotspots(args: argparse.Namespace) -> int:
    from .corpus import all_apps
    from .obs import collect_hotspots, render_hotspots

    if args.top <= 0:
        raise CliError("--top must be a positive number of rows")
    runner = _make_runner(args)
    specs = _corpus_apps(args)
    names = [spec.name for spec in
             (specs if specs is not None else all_apps())]
    runner.run("timing", names, {})
    _report_stats(runner)
    _emit_observability(args, runner)
    metrics = runner.last_metrics
    entries = collect_hotspots(metrics.apps.values()) if metrics else []
    if args.domain:
        entries = [e for e in entries if e.domain == args.domain]
    if args.flame:
        from .obs import collapsed_stacks

        stacks = collapsed_stacks(
            metrics.apps.values() if metrics else []
        )
        try:
            with open(args.flame, "w", encoding="utf-8") as handle:
                handle.write(stacks)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot write flamegraph stacks to {args.flame}: {reason}"
            ) from exc
        print(f"[flame] wrote {args.flame}", file=sys.stderr)
    print(render_hotspots(entries, top=args.top))
    return _report_faults(runner)


def _read_event_stream(path: str):
    from .obs import read_events

    try:
        return read_events(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliError(f"cannot read {path}: {reason}") from exc
    except ValueError as exc:
        raise CliError(f"{path}: {exc}") from exc


def cmd_events(args: argparse.Namespace) -> int:
    import json

    from .obs import render_events_summary, summarize_events

    records = _read_event_stream(args.path)
    summary = summarize_events(records)
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(render_events_summary(summary))
    return 0


def cmd_events_to_trace(args: argparse.Namespace) -> int:
    from .obs import trace_from_events, write_trace

    records = _read_event_stream(args.path)
    trace = trace_from_events(records)
    try:
        write_trace(args.out, trace)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliError(f"cannot write trace to {args.out}: {reason}") from exc
    print(f"[trace] wrote {args.out}", file=sys.stderr)
    return 0


#: exit code for "the bench compare gate found a perf regression"
EXIT_BENCH_REGRESSION = 4


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .harness import (
        BENCH_SCHEMA, compare_bench, default_bench_path, has_regressions,
        render_compare, run_bench, run_generated_bench, write_bench,
    )

    # Bench measures; a warm cache would replay old durations.  Only use
    # the cache when the user explicitly points at one.
    if not args.cache_dir:
        args.no_cache = True
    if args.compare_time_tolerance < 0:
        raise CliError("--compare-time-tolerance must be >= 0")
    if args.generated is not None:
        if args.apps:
            raise CliError("--generated and --apps are mutually exclusive")
        if args.generated <= 0:
            raise CliError("--generated must be a positive number of apps")
    baseline = None
    if args.compare:
        # load (and validate) the baseline before the expensive run
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(f"cannot read {args.compare}: {reason}") from exc
        except ValueError as exc:
            raise CliError(
                f"{args.compare} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(baseline, dict) \
                or baseline.get("schema") != BENCH_SCHEMA:
            raise CliError(
                f"{args.compare} is not a nadroid benchmark "
                f"(expected schema {BENCH_SCHEMA})"
            )
    runner = _make_runner(args)
    if args.generated is not None:
        from .corpus import GeneratorConfig

        payload = run_generated_bench(
            runner, GeneratorConfig(seed=args.seed, count=args.generated)
        )
    else:
        payload = run_bench(runner, apps=_corpus_apps(args))
    _report_stats(runner)
    _emit_observability(args, runner)
    out = args.out or default_bench_path()
    try:
        write_bench(payload, out)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise CliError(f"cannot write benchmark to {out}: {reason}") from exc
    print(f"[bench] wrote {out}", file=sys.stderr)
    if args.history:
        from .harness import append_history

        try:
            history_path = append_history(payload, args.history)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot append to history {args.history}: {reason}"
            ) from exc
        print(f"[bench] appended {history_path}", file=sys.stderr)
    code = _report_faults(runner)
    if baseline is not None:
        comparison = compare_bench(
            baseline, payload,
            time_tolerance=args.compare_time_tolerance,
        )
        print(render_compare(comparison))
        if has_regressions(comparison):
            code = max(code, EXIT_BENCH_REGRESSION)
    return code


def cmd_bench_trend(args: argparse.Namespace) -> int:
    from .harness import (
        check_comparable, detect_drift, load_history, render_trend,
    )

    if args.window < 2:
        raise CliError("--window must be at least 2 runs")
    if args.time_tolerance < 0:
        raise CliError("--time-tolerance must be >= 0")
    try:
        history = load_history(args.history_dir)
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    if not history:
        raise CliError(
            f"bench trend: no BENCH_*.json runs in {args.history_dir}"
        )
    error = check_comparable(history)
    if error is not None:
        raise CliError(error)
    drifts = detect_drift(history, window=args.window,
                          time_tolerance=args.time_tolerance)
    print(render_trend(history, drifts))
    return EXIT_BENCH_REGRESSION if drifts else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis daemon (docs/service.md) until interrupted."""
    from .obs import LiveAggregator
    from .resilience import FaultPolicy
    from .runner import default_cache_dir, ResultCache
    from .service import AnalysisService, DEFAULT_QUEUE_LIMIT, ServiceServer

    if not 0 <= args.port <= 65535:
        raise CliError("--port must be a port number (0-65535; 0 picks "
                       "a free port)")
    if args.jobs < 1:
        raise CliError("--jobs must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        raise CliError("--timeout must be a positive number of seconds")
    if args.max_retries < 0:
        raise CliError("--max-retries must be >= 0")
    queue_limit = args.queue_limit if args.queue_limit is not None \
        else DEFAULT_QUEUE_LIMIT
    if queue_limit < 1:
        raise CliError("--queue-limit must be >= 1")
    cache = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir \
            else default_cache_dir()
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise CliError(
                f"cannot use cache directory {cache_dir}: {reason}"
            ) from exc
        cache = ResultCache(cache_dir)
    aggregator = LiveAggregator()
    service = AnalysisService(
        jobs=args.jobs,
        cache=cache,
        policy=FaultPolicy(timeout=args.timeout,
                           max_retries=args.max_retries,
                           keep_going=True),
        telemetry=aggregator,
        queue_limit=queue_limit,
    )
    server = ServiceServer(service, aggregator=aggregator, port=args.port)
    try:
        server.bind()
    except OSError as exc:
        reason = getattr(exc, "strerror", None) or str(exc)
        raise CliError(
            f"cannot serve on port {args.port}: {reason}"
        ) from exc
    # machine-readable: scripts parse host:port out of "listening on"
    print(f"[serve] listening on 127.0.0.1:{server.port} "
          f"(POST /v1/analyze /v1/batch; GET /v1/jobs "
          f"/metrics /healthz /progress)", file=sys.stderr, flush=True)
    try:
        # foreground, so SIGINT lands here as KeyboardInterrupt and
        # main() turns it into exit 130
        server.serve_forever()
    finally:
        server.close()
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .runner import default_cache_dir, ResultCache

    cache_dir = Path(args.cache_dir) if args.cache_dir \
        else default_cache_dir()
    if args.cache_command == "prune":
        if not cache_dir.is_dir():
            print(f"[cache] {cache_dir} does not exist; nothing to prune",
                  file=sys.stderr)
            return 0
        cache = ResultCache(cache_dir)
        removed = cache.prune(everything=args.all)
        what = "entries" if args.all else "quarantined entries"
        print(f"[cache] pruned {removed} {what} from {cache_dir}",
              file=sys.stderr)
        return 0
    raise CliError(f"unknown cache command {args.cache_command!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nadroid",
        description="nAdroid (CGO'18) reproduction: static ordering-"
                    "violation detection for Android-style programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_report_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--report-out", metavar="PATH",
                       help="write the full warning report (witnesses, "
                            "lineage, metrics) as JSON to PATH")
        p.add_argument("--sarif-out", metavar="PATH",
                       help="write remaining + downgraded warnings as "
                            "SARIF 2.1.0 to PATH")

    p = sub.add_parser("analyze", help="analyze MiniDroid sources")
    p.add_argument("files", nargs="+", help="MiniDroid (.mjava) source files")
    p.add_argument("--k", type=int, default=2,
                   help="k for k-object-sensitive points-to (default 2)")
    p.add_argument("--engine", choices=("datalog", "imperative"),
                   default="datalog", help="race-pair solver backend")
    p.add_argument("--validate", action="store_true",
                   help="dynamically confirm surviving warnings")
    p.add_argument("--trace", action="store_true",
                   help="print the stage span tree and metrics to stderr")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics snapshot as JSON to PATH")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the stage span tree as a Chrome "
                        "trace-event / Perfetto JSON timeline to PATH")
    p.add_argument("--profile-stage", action="append", metavar="STAGE",
                   help="cProfile a pipeline stage (e.g. pointsto, "
                        "detect); repeatable; report goes to stderr")
    p.add_argument("--hotspots", type=int, default=None, metavar="K",
                   help="print the top-K hotspot attribution table "
                        "(per-rule/stratum/context work) to stderr")
    p.add_argument("--memory", action="store_true",
                   help="record tracemalloc peak-memory gauges per "
                        "pipeline stage")
    _add_report_flags(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="explain every warning: lineage, witnesses, filter trail",
    )
    p.add_argument("files", nargs="+", help="MiniDroid (.mjava) source files")
    p.add_argument("--k", type=int, default=2,
                   help="k for k-object-sensitive points-to (default 2)")
    p.add_argument("--engine", choices=("datalog", "imperative"),
                   default="datalog", help="race-pair solver backend")
    p.add_argument("--status", action="append", metavar="STATUS",
                   choices=("remaining", "downgraded", "pruned"),
                   help="only explain warnings with this status "
                        "(repeatable; default: all)")
    _add_report_flags(p)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser(
        "diff",
        help="diff two report JSONs (the regression gate)",
    )
    p.add_argument("old", help="baseline report JSON (e.g. the golden file)")
    p.add_argument("new", help="candidate report JSON")
    p.add_argument("--fail-on-new", action="store_true",
                   help="exit 1 when NEW has remaining warnings that OLD "
                        "did not (new or changed-to-remaining)")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("simulate", help="run an app under a random schedule")
    p.add_argument("files", nargs="+")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-decisions", type=int, default=2000)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "nosleep",
        help="detect no-sleep energy bugs (the section 9 extension)",
    )
    p.add_argument("files", nargs="+")
    p.set_defaults(fn=cmd_nosleep)

    def _add_runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="analyze N apps in parallel worker processes "
                            "(default 1 = serial)")
        p.add_argument("--cache-dir", metavar="PATH",
                       help="result cache directory (default: "
                            "$NADROID_CACHE_DIR or ~/.cache/nadroid)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for this run")
        p.add_argument("--trace", action="store_true",
                       help="print per-app span trees to stderr (worker "
                            "spans nest under each app's root)")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write run + per-app metrics as JSON to PATH")
        p.add_argument("--trace-out", metavar="PATH",
                       help="write a Chrome trace-event / Perfetto JSON "
                            "timeline of the run (one process lane per "
                            "app) to PATH; open with ui.perfetto.dev or "
                            "chrome://tracing")
        p.add_argument("--serve-telemetry", type=int, default=None,
                       metavar="PORT",
                       help="serve live run telemetry on "
                            "http://127.0.0.1:PORT while the run lasts "
                            "(/metrics Prometheus text, /healthz, "
                            "/progress JSON); PORT 0 picks a free port, "
                            "printed to stderr")
        p.add_argument("--events-out", metavar="PATH",
                       help="write the structured run event stream as "
                            "JSONL to PATH (flushed per event, so the "
                            "file can be tailed mid-run)")
        p.add_argument("--progress", action="store_true",
                       help="print a [progress] line to stderr per "
                            "finished app (off by default: stderr stays "
                            "byte-stable without it)")
        p.add_argument("--memory", action="store_true",
                       help="record tracemalloc peak-memory gauges "
                            "(mem.app.peak_kb, mem.stage.*.peak_kb) in "
                            "every worker; changes the cache key")
        p.add_argument("--timeout", type=float, default=None,
                       metavar="SECS",
                       help="per-app deadline: overrunning workers are "
                            "killed and recorded as a timeout fault")
        p.add_argument("--max-retries", type=int, default=1, metavar="N",
                       help="re-submissions for transient faults (a lost "
                            "worker process; default 1); deterministic "
                            "faults are never retried")
        going = p.add_mutually_exclusive_group()
        going.add_argument("--keep-going", action="store_true",
                           help="record per-app faults and finish the "
                                "remaining apps (exit code 3 when any "
                                "app faulted)")
        going.add_argument("--fail-fast", dest="keep_going",
                           action="store_false",
                           help="abort the run on the first app-level "
                                "fault (default)")

    p = sub.add_parser(
        "corpus",
        help="Table 1 over the 27-app corpus; `corpus generate` / "
             "`corpus score` drive the seeded app generator",
    )
    p.add_argument("--validate", action="store_true")
    p.add_argument("--csv", metavar="PATH",
                   help="also write a ResultAnalysis.csv-style file")
    p.add_argument("--apps", nargs="+", metavar="NAME",
                   help="restrict to these corpus apps (default: all 27)")
    _add_runner_flags(p)
    _add_report_flags(p)
    p.set_defaults(fn=cmd_corpus)

    def _add_generator_flags(pp: argparse.ArgumentParser) -> None:
        pp.add_argument("--seed", type=int, default=42,
                        help="generator seed (default 42); the same seed "
                             "reproduces byte-identical apps and labels")
        pp.add_argument("--count", type=int, default=20, metavar="N",
                        help="number of apps to generate (default 20)")
        pp.add_argument("--min-patterns", type=int, default=1, metavar="N",
                        help="min injected patterns per non-clean app "
                             "(default 1)")
        pp.add_argument("--max-patterns", type=int, default=4, metavar="N",
                        help="max injected patterns per non-clean app "
                             "(default 4)")
        pp.add_argument("--clean-ratio", type=float, default=0.25,
                        metavar="FRAC",
                        help="fraction of apps generated with no injection "
                             "at all (default 0.25)")
        pp.add_argument("--max-filler-classes", type=int, default=2,
                        metavar="N",
                        help="up to N inert filler classes per app "
                             "(default 2)")

    corpus_sub = p.add_subparsers(dest="corpus_command",
                                  metavar="SUBCOMMAND")
    pp = corpus_sub.add_parser(
        "generate",
        help="write a seeded generated corpus (.mjava sources + "
             "ground-truth label manifest) to a directory",
    )
    _add_generator_flags(pp)
    pp.add_argument("--out", metavar="DIR", required=True,
                    help="directory for the generated .mjava sources")
    pp.add_argument("--manifest-out", metavar="PATH",
                    help="label manifest path (default: DIR/labels.json)")
    pp.set_defaults(fn=cmd_corpus_generate)

    pp = corpus_sub.add_parser(
        "score",
        help="analyze a seeded generated corpus and grade the pipeline "
             "against its ground-truth labels",
    )
    _add_generator_flags(pp)
    pp.add_argument("--score-out", metavar="PATH",
                    help="write the score report as JSON to PATH")
    pp.add_argument("--fail-under-recall", type=float, default=None,
                    metavar="FRAC",
                    help="exit 1 when recall over injected labels falls "
                         "below FRAC (e.g. 1.0)")
    pp.add_argument("--fail-under-precision", type=float, default=None,
                    metavar="FRAC",
                    help="exit 1 when precision over surviving warnings "
                         "falls below FRAC")
    _add_runner_flags(pp)
    pp.set_defaults(fn=cmd_corpus_score)

    for name, fn, help_text in (
        ("figure5", cmd_figure5, "filter effectiveness (Figure 5)"),
        ("table2", cmd_table2, "injected false-negative study (Table 2)"),
        ("table3", cmd_table3, "DEvA comparison (Table 3)"),
        ("timing", cmd_timing, "stage time breakdown (section 8.8)"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_runner_flags(p)
        p.set_defaults(fn=fn)

    p = sub.add_parser(
        "hotspots",
        help="top-K hotspot attribution over the corpus: which Datalog "
             "rules, strata and points-to (method, context) pairs do "
             "the work",
    )
    p.add_argument("--apps", nargs="+", metavar="NAME",
                   help="restrict to these corpus apps (default: all 27)")
    p.add_argument("--top", type=int, default=20, metavar="K",
                   help="rows in the table (default 20)")
    p.add_argument("--domain", metavar="DOMAIN",
                   choices=("datalog.rule", "datalog.stratum",
                            "pointsto.pair"),
                   help="restrict to one attribution domain")
    p.add_argument("--flame", metavar="PATH",
                   help="also write collapsed-stack lines (span "
                        "self-time plus hotspot counters, flamegraph.pl "
                        "/ speedscope input) to PATH")
    _add_runner_flags(p)
    p.set_defaults(fn=cmd_hotspots)

    p = sub.add_parser(
        "events",
        help="read an --events-out JSONL stream",
    )
    events_sub = p.add_subparsers(dest="events_command", required=True)
    pp = events_sub.add_parser(
        "summarize",
        help="print the run funnel and p50/p95/max per-app latency",
    )
    pp.add_argument("path", help="events JSONL file (from --events-out)")
    pp.add_argument("--json", action="store_true",
                    help="print the summary as JSON instead of the "
                         "human-readable digest")
    pp.set_defaults(fn=cmd_events)
    pp = events_sub.add_parser(
        "to-trace",
        help="convert an event stream into a Chrome trace-event / "
             "Perfetto JSON timeline (real wall-clock lanes, one thread "
             "per app)",
    )
    pp.add_argument("path", help="events JSONL file (from --events-out)")
    pp.add_argument("out", help="trace JSON output path")
    pp.set_defaults(fn=cmd_events_to_trace)

    p = sub.add_parser(
        "bench",
        help="run the corpus benchmark and write BENCH_<date>.json",
    )
    p.add_argument("--apps", nargs="+", metavar="NAME",
                   help="restrict to these corpus apps (default: all 27)")
    p.add_argument("--generated", type=int, default=None, metavar="N",
                   help="stress mode: benchmark N generated apps instead "
                        "of the registry corpus (mutually exclusive with "
                        "--apps)")
    p.add_argument("--seed", type=int, default=42,
                   help="generator seed for --generated (default 42)")
    p.add_argument("--out", metavar="PATH",
                   help="output path (default: BENCH_<YYYY-MM-DD>.json)")
    p.add_argument("--compare", metavar="OLD.json",
                   help="diff against a baseline benchmark: print the "
                        "per-app wall-time delta table and exit 4 on "
                        "work-counter or wall-time regressions")
    p.add_argument("--compare-time-tolerance", type=float, default=0.25,
                   metavar="FRAC",
                   help="relative wall-time growth allowed per app "
                        "before --compare fails (default 0.25 = 25%%); "
                        "widen when the baseline came from a different "
                        "machine -- counters always gate exactly")
    p.add_argument("--history", metavar="DIR",
                   help="also append this run's payload to a bench "
                        "history directory (for `bench trend`)")
    _add_runner_flags(p)
    p.set_defaults(fn=cmd_bench)

    bench_sub = p.add_subparsers(dest="bench_command",
                                 metavar="SUBCOMMAND")
    pp = bench_sub.add_parser(
        "trend",
        help="chart a bench history directory and exit 4 on monotone "
             "perf drift across the trailing window",
    )
    pp.add_argument("history_dir", metavar="DIR",
                    help="directory of BENCH_*.json runs "
                         "(see bench --history)")
    pp.add_argument("--window", type=int, default=5, metavar="N",
                    help="trailing runs inspected by the drift gate "
                         "(default 5)")
    pp.add_argument("--time-tolerance", type=float, default=0.25,
                    metavar="FRAC",
                    help="relative wall-time growth across the window "
                         "tolerated before monotone growth counts as "
                         "drift (default 0.25 = 25%%)")
    pp.set_defaults(fn=cmd_bench_trend)

    p = sub.add_parser(
        "serve",
        help="run the analysis daemon: accept jobs over loopback HTTP "
             "(docs/service.md)",
    )
    p.add_argument("--port", type=int, default=0, metavar="PORT",
                   help="port to bind on 127.0.0.1 (default 0 = OS picks "
                        "a free one; the bound port is printed in the "
                        "'listening on' stderr line)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per job (default 1 = serial; "
                        "jobs themselves run one at a time)")
    p.add_argument("--cache-dir", metavar="PATH",
                   help="result cache directory (default: "
                        "$NADROID_CACHE_DIR or ~/.cache/nadroid)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache for this daemon")
    p.add_argument("--queue-limit", type=int, default=None, metavar="N",
                   help="queued jobs admitted before POSTs get HTTP 429 "
                        "(default 8)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="default per-app deadline for jobs that do not "
                        "set their own")
    p.add_argument("--max-retries", type=int, default=1, metavar="N",
                   help="default re-submissions for transient faults "
                        "(jobs may override per request)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("cache", help="manage the on-disk result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pp = cache_sub.add_parser(
        "prune",
        help="delete quarantined .json.corrupt entries (--all: everything)",
    )
    pp.add_argument("--cache-dir", metavar="PATH",
                    help="cache directory (default: $NADROID_CACHE_DIR "
                         "or ~/.cache/nadroid)")
    pp.add_argument("--all", action="store_true",
                    help="also delete valid entries, emptying the cache")
    pp.set_defaults(fn=cmd_cache)
    return parser


def main(argv: List[str] = None) -> int:
    from .resilience import FaultError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # Ctrl-C: the pool has already terminated and joined its worker
        # processes on the way out (run_parallel's BaseException cleanup)
        # and the finally below flushes the event stream and closes any
        # live servers; all that is left is the conventional exit code.
        print("nadroid: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except FaultError as exc:
        # fail-fast (the default): one app's fault aborted the run
        print(f"nadroid: error: {exc}", file=sys.stderr)
        return 2
    except CliError as exc:
        print(f"nadroid: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. piped into head/less); die quietly,
        # redirecting stdout so the interpreter's shutdown flush cannot
        # raise a second time
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1
    finally:
        # the event stream is flushed per event, so even an aborted run
        # leaves a faithful prefix on disk; this only closes the handles
        events = getattr(args, "_events_log", None)
        if events is not None:
            events.close()
            for sink in events.sinks:
                path = getattr(sink, "path", None)
                if path:
                    print(f"[events] wrote {path}", file=sys.stderr)
        server = getattr(args, "_telemetry_server", None)
        if server is not None:
            server.close()


if __name__ == "__main__":
    sys.exit(main())
