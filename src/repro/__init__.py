"""repro -- a from-scratch reproduction of nAdroid (CGO 2018).

nAdroid statically detects use-after-free ordering violations in Android
applications by *threadifying* event callbacks (modeling them as threads),
running a Chord-style static race detector over the result, and pruning
false warnings with happens-before filters derived from the Android
concurrency model.

Public entry points:

* :func:`repro.lowering.compile_app` -- MiniDroid source -> IR module
* :func:`repro.core.analyze_app` -- full nAdroid pipeline on an IR module
* :mod:`repro.corpus` -- the 27-app synthetic evaluation corpus
* :mod:`repro.harness` -- drivers that regenerate every paper table/figure
* :mod:`repro.obs` -- span tracing, metrics, and profiling for all of it
"""

__version__ = "1.8.0"
