"""AST -> IR lowering, plus the one-call frontend entry point."""

from typing import Iterable, Tuple, Union

from ..android.framework import FRAMEWORK_CLASS_NAMES, install_framework
from ..ir import Module, verify_module
from ..lang import parse_program
from ..lang.errors import SourceError
from .lower import Lowerer

__all__ = ["Lowerer", "lower_sources", "compile_app"]


def lower_sources(
    sources: Union[str, Iterable[Tuple[str, str]]],
    module_name: str = "app",
    framework: bool = True,
    verify: bool = True,
    seal: bool = True,
) -> Module:
    """Parse and lower MiniDroid source text into a (by default sealed,
    verified) IR module.

    ``sources`` is either one source string or an iterable of
    ``(filename, source)`` pairs.  With ``framework=True`` (the default) the
    Android stub classes are installed first so applications can extend and
    call into them.  Pass ``seal=False`` when the module will be further
    transformed (the threadifier adds synthetic classes and seals itself).
    """
    if isinstance(sources, str):
        sources = [("<source>", sources)]
    module = Module(module_name)
    if framework:
        install_framework(module)

    parsed = [(fname, parse_program(text, fname)) for fname, text in sources]
    lowerer = Lowerer(module)
    for fname, program in parsed:
        lowerer.filename = fname
        lowerer.declare_program(program)
    for fname, program in parsed:
        lowerer.filename = fname
        lowerer.lower_program(program)
    if seal:
        module.seal()

    if verify:
        problems = verify_module(module, known_external=FRAMEWORK_CLASS_NAMES)
        if problems:
            raise SourceError(
                "IR verification failed:\n  " + "\n  ".join(problems)
            )
    return module


# compile_app is the name examples use; it reads more naturally there.
compile_app = lower_sources
