"""Lowering: MiniDroid AST -> MiniDroid IR.

Responsibilities beyond straightforward translation:

* **Name resolution** -- identifiers resolve, in order, to method locals and
  parameters, fields of the enclosing class (including inherited ones),
  fields of lexically enclosing classes (through the synthetic ``$outer``
  chain of anonymous classes), and finally class names (for static access).
* **Anonymous classes** -- ``new Iface() { ... }`` is desugared to a fresh
  class ``Outer$n`` with a synthetic ``$outer`` field and one ``$cap_x``
  field per captured enclosing local; the allocation site wires these
  fields before invoking the (possibly synthesized) initializer.
* **Field initializers** -- instance initializers are prepended to every
  constructor (a constructor is synthesized when the class declares none);
  static initializers go into a synthesized ``<clinit>``.
* **Short-circuit `&&`/`||`** -- lowered to control flow over a temporary.
* **Static type tracking** -- each local's static type is tracked so virtual
  call sites carry the declared receiver class, which the call-graph and
  points-to analyses use for dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    BOOLEAN,
    ClassDef,
    ClassType,
    Const,
    Field,
    FieldRef,
    INT,
    IRBuilder,
    Local,
    Method,
    MethodRef,
    Module,
    Operand,
    Parameter,
    STRING,
    Type,
    VOID,
    parse_type,
)
from ..lang import ast
from ..lang.errors import LoweringError


class _Scope:
    """Lexical scope of locals within one method body."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, Type] = {}

    def declare(self, name: str, type_: Type) -> None:
        self.vars[name] = type_

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def all_names(self) -> Set[str]:
        names: Set[str] = set()
        scope: Optional[_Scope] = self
        while scope is not None:
            names.update(scope.vars)
            scope = scope.parent
        return names


def _free_identifiers(members: List[ast.MemberDecl]) -> Set[str]:
    """Names that *might* be free in an anonymous class body.

    Over-approximates: collects every ``Name`` identifier in the member
    bodies that is not declared as a field of the anonymous class itself.
    Locals declared inside anonymous methods shadow captures at resolution
    time, so over-collection only costs an unused capture field.
    """
    own_fields = {m.name for m in members if isinstance(m, ast.FieldDecl)}
    found: Set[str] = set()

    def walk_expr(expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Name):
            found.add(expr.ident)
        elif isinstance(expr, ast.FieldAccess):
            walk_expr(expr.target)
        elif isinstance(expr, ast.Call):
            walk_expr(expr.target)
            for a in expr.args:
                walk_expr(a)
        elif isinstance(expr, ast.SuperCall):
            for a in expr.args:
                walk_expr(a)
        elif isinstance(expr, ast.NewExpr):
            for a in expr.args:
                walk_expr(a)
            if expr.body:
                nested_fields = {
                    m.name for m in expr.body if isinstance(m, ast.FieldDecl)
                }
                for name in _free_identifiers(expr.body):
                    if name not in nested_fields:
                        found.add(name)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, ast.Assignment):
            walk_expr(expr.target)
            walk_expr(expr.value)

    def walk_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                walk_stmt(s)
        elif isinstance(stmt, ast.VarDecl):
            walk_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            walk_expr(stmt.cond)
            walk_stmt(stmt.then_branch)
            if stmt.else_branch:
                walk_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.WhileStmt):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            walk_expr(stmt.value)
        elif isinstance(stmt, ast.SyncStmt):
            walk_expr(stmt.lock)
            walk_stmt(stmt.body)

    for member in members:
        if isinstance(member, ast.FieldDecl):
            walk_expr(member.init)
        elif isinstance(member, ast.MethodDecl):
            walk_stmt(member.body)
    return found - own_fields


class Lowerer:
    """Lower a batch of AST programs into one sealed IR module."""

    def __init__(self, module: Module, filename: str = "<source>") -> None:
        self.module = module
        self.filename = filename
        self._anon_counters: Dict[str, int] = {}
        # Anonymous-class info: class name -> (enclosing class name, captures)
        self.anon_info: Dict[str, Tuple[str, List[Tuple[str, Type]]]] = {}

    # ------------------------------------------------------------------
    # Declaration pass
    # ------------------------------------------------------------------

    def _method_decls_with_synthetics(self, decl: ast.ClassDecl):
        """Method declarations plus a synthesized constructor when instance
        field initializers exist but no constructor was written."""
        instance_inits = [
            f for f in decl.field_decls() if f.init is not None and not f.is_static
        ]
        method_decls = decl.method_decls()
        has_ctor = any(m.is_constructor for m in method_decls)
        if not has_ctor and instance_inits and not decl.is_interface:
            method_decls = [
                ast.MethodDecl(
                    return_type="void",
                    name="<init>",
                    params=[],
                    body=ast.Block([], line=decl.line),
                    is_constructor=True,
                    line=decl.line,
                )
            ] + method_decls
        return method_decls

    def declare_program(self, program: ast.Program) -> None:
        """First pass: classes, fields and method *signatures*, so bodies
        lowered later can resolve forward references."""
        for decl in program.classes:
            if self.module.lookup_class(decl.name) is not None:
                raise LoweringError(
                    f"duplicate class {decl.name}", decl.line, 0, self.filename
                )
            # Java semantics: a class without `extends` derives from Object.
            super_name = decl.super_name
            if super_name is None and not decl.is_interface \
                    and decl.name != "Object":
                super_name = "Object"
            cls = ClassDef(
                decl.name,
                super_name=super_name,
                interfaces=list(decl.interfaces),
                is_interface=decl.is_interface,
                line=decl.line,
            )
            for fdecl in decl.field_decls():
                cls.add_field(
                    Field(
                        fdecl.name,
                        parse_type(fdecl.type_name),
                        is_static=fdecl.is_static,
                        line=fdecl.line,
                    )
                )
            for mdecl in self._method_decls_with_synthetics(decl):
                if decl.is_interface and not mdecl.body.statements:
                    pass  # abstract: still declared, never given a body
                cls.add_method(
                    Method(
                        decl.name,
                        mdecl.name,
                        params=[
                            Parameter(p.name, parse_type(p.type_name))
                            for p in mdecl.params
                        ],
                        return_type=parse_type(mdecl.return_type),
                        is_static=mdecl.is_static,
                        is_synchronized=mdecl.is_synchronized,
                        line=mdecl.line,
                    )
                )
            static_inits = [
                f for f in decl.field_decls() if f.init is not None and f.is_static
            ]
            if static_inits:
                cls.add_method(
                    Method(decl.name, "<clinit>", is_static=True, line=decl.line)
                )
            self.module.add_class(cls)

    # ------------------------------------------------------------------
    # Body pass
    # ------------------------------------------------------------------

    def lower_program(self, program: ast.Program) -> None:
        for decl in program.classes:
            self._lower_class(decl)

    def _lower_class(self, decl: ast.ClassDecl) -> None:
        cls = self.module.lookup_class(decl.name)
        assert cls is not None
        instance_inits = [
            f for f in decl.field_decls() if f.init is not None and not f.is_static
        ]
        static_inits = [
            f for f in decl.field_decls() if f.init is not None and f.is_static
        ]

        for mdecl in self._method_decls_with_synthetics(decl):
            if decl.is_interface and not mdecl.body.statements:
                continue  # abstract interface method: no IR body
            method = cls.methods[mdecl.name]
            body = _MethodLowerer(self, method)
            if mdecl.is_constructor:
                for fdecl in instance_inits:
                    body.lower_field_init(fdecl)
            body.lower_body(mdecl.body)

        if static_inits:
            method = cls.methods["<clinit>"]
            body = _MethodLowerer(self, method)
            for fdecl in static_inits:
                body.lower_static_field_init(fdecl)
            body.finish()

    # ------------------------------------------------------------------
    # Anonymous-class support
    # ------------------------------------------------------------------

    def fresh_anon_name(self, enclosing: str) -> str:
        count = self._anon_counters.get(enclosing, 0) + 1
        self._anon_counters[enclosing] = count
        return f"{enclosing}${count}"


class _MethodLowerer:
    """Lower one method body; spawned recursively for anonymous classes."""

    def __init__(self, lowerer: Lowerer, method: Method) -> None:
        self.lowerer = lowerer
        self.module = lowerer.module
        self.filename = lowerer.filename
        self.method = method
        self.builder = IRBuilder(method)
        self.scope = _Scope()
        self.types: Dict[str, Type] = {}
        self_type = ClassType(method.class_name)
        if not method.is_static:
            self.scope.declare("this", self_type)
            self.types["this"] = self_type
        for param in method.params:
            self.scope.declare(param.name, param.type)
            self.types[param.name] = param.type
        self._sync_lock_stack: List[Local] = []

    # -- diagnostics ---------------------------------------------------

    def _error(self, message: str, line: int) -> LoweringError:
        return LoweringError(
            f"in {self.method.qualified_name}: {message}", line, 0, self.filename
        )

    # -- type helpers ----------------------------------------------------

    def _type_of(self, operand: Operand) -> Type:
        if isinstance(operand, Local):
            return self.types.get(operand.name, ClassType("Object"))
        value = operand.value
        if value is None:
            return parse_type("null")
        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INT
        return STRING

    def _record(self, local: Local, type_: Type) -> Local:
        self.types[local.name] = type_
        return local

    # -- field / method resolution -----------------------------------------

    def _find_field(self, class_name: str, field_name: str) -> Optional[FieldRef]:
        return self.module.resolve_field(class_name, field_name)

    def _outer_chain_to_field(
        self, field_name: str, line: int
    ) -> Optional[Tuple[Local, FieldRef]]:
        """Follow ``$outer`` links until a class declaring ``field_name``."""
        if self.method.is_static:
            return None
        base = Local("this")
        class_name = self.method.class_name
        hops = 0
        while hops < 32:
            ref = self._find_field(class_name, field_name)
            if ref is not None:
                return base, ref
            outer_ref = self._find_field(class_name, "$outer")
            if outer_ref is None:
                return None
            base = self._record(
                self.builder.get_field(base, outer_ref, line=line),
                self._field_type(outer_ref),
            )
            class_name = self._field_type(outer_ref).name
            hops += 1
        return None

    def _field_type(self, ref: FieldRef) -> Type:
        cls = self.module.lookup_class(ref.class_name)
        if cls is not None and ref.field_name in cls.fields:
            return cls.fields[ref.field_name].type
        return ClassType("Object")

    def _outer_chain_to_method(
        self, method_name: str, line: int
    ) -> Optional[Tuple[Local, str]]:
        """Follow ``$outer`` links to a class whose hierarchy has the method."""
        if self.method.is_static:
            return None
        base = Local("this")
        class_name = self.method.class_name
        hops = 0
        while hops < 32:
            if self.module.resolve_method(class_name, method_name) is not None:
                return base, class_name
            outer_ref = self._find_field(class_name, "$outer")
            if outer_ref is None:
                return None
            base = self._record(
                self.builder.get_field(base, outer_ref, line=line),
                self._field_type(outer_ref),
            )
            class_name = self._field_type(outer_ref).name
            hops += 1
        return None

    # -- entry points -----------------------------------------------------

    def lower_field_init(self, fdecl: ast.FieldDecl) -> None:
        value = self.lower_expr(fdecl.init)
        ref = self._find_field(self.method.class_name, fdecl.name)
        assert ref is not None
        self.builder.put_field(Local("this"), ref, value, line=fdecl.line)

    def lower_static_field_init(self, fdecl: ast.FieldDecl) -> None:
        value = self.lower_expr(fdecl.init)
        ref = FieldRef(self.method.class_name, fdecl.name)
        self.builder.put_static(ref, value, line=fdecl.line)

    def lower_body(self, body: ast.Block) -> None:
        if self.method.is_synchronized and not self.method.is_static:
            self.builder.monitor_enter(Local("this"), line=self.method.line)
        self.lower_block(body)
        if self.method.is_synchronized and not self.method.is_static:
            if not self.builder.terminated:
                self.builder.monitor_exit(Local("this"), line=self.method.line)
        self.finish()

    def finish(self) -> None:
        self.builder.finish()

    # -- statements ---------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self.lower_stmt(stmt)
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            for lock in reversed(self._sync_lock_stack):
                self.builder.monitor_exit(lock, line=stmt.line)
            if self.method.is_synchronized and not self.method.is_static:
                self.builder.monitor_exit(Local("this"), line=stmt.line)
            self.builder.ret(value, line=stmt.line)
        elif isinstance(stmt, ast.ThrowStmt):
            self.builder.throw(stmt.exception, line=stmt.line)
        elif isinstance(stmt, ast.SyncStmt):
            self._lower_sync(stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise self._error(f"cannot lower statement {type(stmt).__name__}", stmt.line)

    def _lower_var_decl(self, stmt: ast.VarDecl) -> None:
        declared = parse_type(stmt.type_name)
        self.scope.declare(stmt.name, declared)
        self.types[stmt.name] = declared
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.builder.assign(stmt.name, value, line=stmt.line)
            if isinstance(value, Local) and declared.name == "Object":
                self.types[stmt.name] = self._type_of(value)
        else:
            self.builder.assign(stmt.name, Const(None), line=stmt.line)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self.lower_expr(stmt.cond)
        then_label = self.builder.fresh_label("then")
        else_label = self.builder.fresh_label("else")
        join_label = self.builder.fresh_label("join")
        self.builder.branch(
            cond, then_label, else_label if stmt.else_branch else join_label,
            line=stmt.line,
        )
        self.builder.position_at_new_block(then_label)
        self.lower_stmt(stmt.then_branch)
        self.builder.goto(join_label, line=stmt.line)
        if stmt.else_branch is not None:
            self.builder.position_at_new_block(else_label)
            self.lower_stmt(stmt.else_branch)
            self.builder.goto(join_label, line=stmt.line)
        self.builder.position_at_new_block(join_label)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        head_label = self.builder.fresh_label("loop")
        body_label = self.builder.fresh_label("body")
        exit_label = self.builder.fresh_label("exit")
        self.builder.goto(head_label, line=stmt.line)
        self.builder.position_at_new_block(head_label)
        cond = self.lower_expr(stmt.cond)
        self.builder.branch(cond, body_label, exit_label, line=stmt.line)
        self.builder.position_at_new_block(body_label)
        self.lower_stmt(stmt.body)
        self.builder.goto(head_label, line=stmt.line)
        self.builder.position_at_new_block(exit_label)

    def _lower_sync(self, stmt: ast.SyncStmt) -> None:
        lock = self.lower_expr(stmt.lock)
        if isinstance(lock, Const):
            raise self._error("cannot synchronize on a literal", stmt.line)
        assert isinstance(lock, Local)
        self.builder.monitor_enter(lock, line=stmt.line)
        self._sync_lock_stack.append(lock)
        self.lower_block(stmt.body)
        self._sync_lock_stack.pop()
        self.builder.monitor_exit(lock, line=stmt.line)

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Const(expr.value)
        if isinstance(expr, ast.StrLit):
            return Const(expr.value)
        if isinstance(expr, ast.NullLit):
            return Const(None)
        if isinstance(expr, ast.ThisExpr):
            if self.method.is_static:
                raise self._error("'this' in a static method", expr.line)
            return Local("this")
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._lower_field_access(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value)
        if isinstance(expr, ast.SuperCall):
            return self._lower_super_call(expr, want_value)
        if isinstance(expr, ast.NewExpr):
            return self._lower_new(expr)
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            return self.builder.unary(expr.op, operand, line=expr.line)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(expr)
        raise self._error(f"cannot lower expression {type(expr).__name__}", expr.line)

    def _own_static_field(self, ident: str) -> Optional[FieldRef]:
        """A static field named ``ident`` in the enclosing class hierarchy."""
        for name in [self.method.class_name,
                     *self.module.superclasses(self.method.class_name)]:
            candidate = self.module.lookup_class(name)
            if candidate and ident in candidate.fields \
                    and candidate.fields[ident].is_static:
                return FieldRef(name, ident)
        return None

    def _lower_name(self, expr: ast.Name) -> Operand:
        local_type = self.scope.lookup(expr.ident)
        if local_type is not None:
            return Local(expr.ident)
        # Captured enclosing local inside an anonymous class?
        cap_ref = self._find_field(self.method.class_name, f"$cap_{expr.ident}")
        if cap_ref is not None and not self.method.is_static:
            result = self.builder.get_field(Local("this"), cap_ref, line=expr.line)
            return self._record(result, self._field_type(cap_ref))
        static_ref = self._own_static_field(expr.ident)
        if static_ref is not None:
            result = self.builder.get_static(static_ref, line=expr.line)
            return self._record(result, self._field_type(static_ref))
        chain = self._outer_chain_to_field(expr.ident, expr.line)
        if chain is not None:
            base, ref = chain
            result = self.builder.get_field(base, ref, line=expr.line)
            return self._record(result, self._field_type(ref))
        raise self._error(f"unresolved identifier {expr.ident!r}", expr.line)

    def _class_named(self, expr: ast.Expr) -> Optional[str]:
        """If the expression is a bare Name that denotes a class, return it."""
        if isinstance(expr, ast.Name) and self.scope.lookup(expr.ident) is None:
            if self.module.lookup_class(expr.ident) is not None:
                # A field of the same name (instance or outer) shadows the class.
                if self._find_field(self.method.class_name, expr.ident) is None:
                    return expr.ident
        return None

    def _lower_field_access(self, expr: ast.FieldAccess) -> Operand:
        class_name = self._class_named(expr.target)
        if class_name is not None:
            cls = self.module.lookup_class(class_name)
            assert cls is not None
            for name in [class_name, *self.module.superclasses(class_name)]:
                candidate = self.module.lookup_class(name)
                if candidate and expr.name in candidate.fields:
                    ref = FieldRef(name, expr.name)
                    result = self.builder.get_static(ref, line=expr.line)
                    return self._record(result, self._field_type(ref))
            raise self._error(
                f"class {class_name} has no static field {expr.name!r}", expr.line
            )
        base = self.lower_expr(expr.target)
        if isinstance(base, Const):
            raise self._error("field access on a literal", expr.line)
        assert isinstance(base, Local)
        base_type = self._type_of(base)
        ref = self._find_field(base_type.name, expr.name)
        if ref is None:
            raise self._error(
                f"type {base_type.name} has no field {expr.name!r}", expr.line
            )
        result = self.builder.get_field(base, ref, line=expr.line)
        return self._record(result, self._field_type(ref))

    def _lower_call(self, expr: ast.Call, want_value: bool) -> Operand:
        args = [self.lower_expr(a) for a in expr.args]

        if expr.target is None:
            chain = self._outer_chain_to_method(expr.name, expr.line)
            if chain is None:
                raise self._error(f"unresolved method {expr.name!r}", expr.line)
            base, class_name = chain
            resolved = self.module.resolve_method(class_name, expr.name)
            assert resolved is not None
            if resolved.is_static:
                return self._emit_invoke(
                    "static", None, resolved, args, want_value, expr.line
                )
            return self._emit_invoke(
                "virtual", base, resolved, args, want_value, expr.line,
                declared_class=class_name,
            )

        class_name = self._class_named(expr.target)
        if class_name is not None:
            resolved = self.module.resolve_method(class_name, expr.name)
            if resolved is None or not resolved.is_static:
                raise self._error(
                    f"class {class_name} has no static method {expr.name!r}",
                    expr.line,
                )
            return self._emit_invoke(
                "static", None, resolved, args, want_value, expr.line
            )

        base = self.lower_expr(expr.target)
        if isinstance(base, Const):
            raise self._error("method call on a literal", expr.line)
        assert isinstance(base, Local)
        base_type = self._type_of(base)
        resolved = self.module.resolve_method(base_type.name, expr.name)
        if resolved is None:
            raise self._error(
                f"type {base_type.name} has no method {expr.name!r}", expr.line
            )
        return self._emit_invoke(
            "virtual", base, resolved, args, want_value, expr.line,
            declared_class=base_type.name,
        )

    def _emit_invoke(
        self,
        kind: str,
        base: Optional[Local],
        resolved: Method,
        args: List[Operand],
        want_value: bool,
        line: int,
        declared_class: Optional[str] = None,
    ) -> Operand:
        if len(args) != resolved.arity:
            raise self._error(
                f"{resolved.qualified_name} expects {resolved.arity} argument(s),"
                f" got {len(args)}",
                line,
            )
        ref = MethodRef(declared_class or resolved.class_name, resolved.name,
                        resolved.arity)
        target = None
        if want_value and resolved.return_type != VOID:
            target = self.builder.fresh_temp("ret")
        self.builder.invoke(kind, base, ref, args, target, line)
        if target is not None:
            return self._record(Local(target), resolved.return_type)
        return Const(None)

    def _lower_super_call(self, expr: ast.SuperCall, want_value: bool) -> Operand:
        if self.method.is_static:
            raise self._error("'super' in a static method", expr.line)
        cls = self.module.lookup_class(self.method.class_name)
        if cls is None or not cls.super_name:
            raise self._error("'super' call without a superclass", expr.line)
        args = [self.lower_expr(a) for a in expr.args]
        resolved = self.module.resolve_method(cls.super_name, expr.name)
        if resolved is None:
            raise self._error(
                f"superclass {cls.super_name} has no method {expr.name!r}",
                expr.line,
            )
        ref = MethodRef(resolved.class_name, resolved.name, resolved.arity)
        target = None
        if want_value and resolved.return_type != VOID:
            target = self.builder.fresh_temp("ret")
        self.builder.invoke("special", Local("this"), ref, args, target, expr.line)
        if target is not None:
            return self._record(Local(target), resolved.return_type)
        return Const(None)

    def _lower_new(self, expr: ast.NewExpr) -> Operand:
        if expr.body is not None:
            return self._lower_anonymous(expr)
        cls = self.module.lookup_class(expr.class_name)
        if cls is None:
            raise self._error(f"unknown class {expr.class_name!r}", expr.line)
        if cls.is_interface:
            raise self._error(
                f"cannot instantiate interface {expr.class_name}", expr.line
            )
        obj = self.builder.new(expr.class_name, line=expr.line)
        self._record(obj, ClassType(expr.class_name))
        args = [self.lower_expr(a) for a in expr.args]
        # Constructors are not inherited: look only at the exact class.
        ctor = self.module.lookup_method(expr.class_name, "<init>")
        if ctor is not None:
            if len(args) != ctor.arity:
                raise self._error(
                    f"constructor {expr.class_name} expects {ctor.arity}"
                    f" argument(s), got {len(args)}",
                    expr.line,
                )
            ref = MethodRef(ctor.class_name, "<init>", ctor.arity)
            self.builder.invoke("special", obj, ref, args, None, expr.line)
        elif args:
            raise self._error(
                f"class {expr.class_name} has no constructor taking arguments",
                expr.line,
            )
        return obj

    def _lower_anonymous(self, expr: ast.NewExpr) -> Operand:
        assert expr.body is not None
        enclosing = self.method.class_name
        anon_name = self.lowerer.fresh_anon_name(enclosing)

        base_cls = self.module.lookup_class(expr.class_name)
        if base_cls is None:
            raise self._error(
                f"unknown base type {expr.class_name!r} for anonymous class",
                expr.line,
            )
        if expr.args:
            raise self._error(
                "anonymous classes take no constructor arguments", expr.line
            )

        if base_cls.is_interface:
            anon = ClassDef(anon_name, interfaces=[expr.class_name], line=expr.line)
        else:
            anon = ClassDef(anon_name, super_name=expr.class_name, line=expr.line)

        # Capture analysis: free identifiers that name enclosing locals.
        visible = self.scope.all_names()
        captures: List[Tuple[str, Type]] = []
        for ident in sorted(_free_identifiers(expr.body)):
            if ident in visible and ident != "this":
                captures.append((ident, self.scope.lookup(ident) or STRING))

        if not self.method.is_static:
            anon.add_field(Field("$outer", ClassType(enclosing)))
        for name, type_ in captures:
            anon.add_field(Field(f"$cap_{name}", type_))
        for fdecl in expr.body:
            if isinstance(fdecl, ast.FieldDecl):
                anon.add_field(
                    Field(fdecl.name, parse_type(fdecl.type_name),
                          is_static=fdecl.is_static, line=fdecl.line)
                )
        self.module.add_class(anon)
        self.lowerer.anon_info[anon_name] = (enclosing, captures)

        # Lower the anonymous class's methods (recursively).
        field_inits = [
            m for m in expr.body
            if isinstance(m, ast.FieldDecl) and m.init is not None
        ]
        for member in expr.body:
            if not isinstance(member, ast.MethodDecl):
                continue
            method = Method(
                anon_name,
                member.name,
                params=[
                    Parameter(p.name, parse_type(p.type_name))
                    for p in member.params
                ],
                return_type=parse_type(member.return_type),
                is_static=member.is_static,
                is_synchronized=member.is_synchronized,
                line=member.line,
            )
            anon.add_method(method)
            inner = _MethodLowerer(self.lowerer, method)
            inner.lower_body(member.body)
        if field_inits:
            init_method = Method(anon_name, "$fieldinit", line=expr.line)
            anon.add_method(init_method)
            inner = _MethodLowerer(self.lowerer, init_method)
            for fdecl in field_inits:
                inner.lower_field_init(fdecl)
            inner.finish()

        # Allocation site: wire $outer and captures, then run field inits.
        obj = self.builder.new(anon_name, line=expr.line)
        self._record(obj, ClassType(anon_name))
        if not self.method.is_static:
            self.builder.put_field(
                obj, FieldRef(anon_name, "$outer"), Local("this"), line=expr.line
            )
        for name, _ in captures:
            self.builder.put_field(
                obj, FieldRef(anon_name, f"$cap_{name}"), Local(name), line=expr.line
            )
        if field_inits:
            self.builder.invoke(
                "special", obj, MethodRef(anon_name, "$fieldinit", 0), [], None,
                expr.line,
            )
        return obj

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        return self.builder.binary(expr.op, lhs, rhs, line=expr.line)

    def _lower_short_circuit(self, expr: ast.Binary) -> Operand:
        result = self.builder.fresh_temp("sc")
        rhs_label = self.builder.fresh_label("sc_rhs")
        short_label = self.builder.fresh_label("sc_short")
        join_label = self.builder.fresh_label("sc_join")

        lhs = self.lower_expr(expr.lhs)
        if expr.op == "&&":
            self.builder.branch(lhs, rhs_label, short_label, line=expr.line)
            short_value: Operand = Const(False)
        else:
            self.builder.branch(lhs, short_label, rhs_label, line=expr.line)
            short_value = Const(True)

        self.builder.position_at_new_block(rhs_label)
        rhs = self.lower_expr(expr.rhs)
        self.builder.assign(result, rhs, line=expr.line)
        self.builder.goto(join_label)

        self.builder.position_at_new_block(short_label)
        self.builder.assign(result, short_value, line=expr.line)
        self.builder.goto(join_label)

        self.builder.position_at_new_block(join_label)
        self.types[result] = BOOLEAN
        return Local(result)

    def _lower_assignment(self, expr: ast.Assignment) -> Operand:
        value = self.lower_expr(expr.value)
        target = expr.target

        if isinstance(target, ast.Name):
            if self.scope.lookup(target.ident) is not None:
                self.builder.assign(target.ident, value, line=expr.line)
                if isinstance(value, Local):
                    declared = self.scope.lookup(target.ident)
                    if declared is not None and declared.name == "Object":
                        self.types[target.ident] = self._type_of(value)
                return value
            static_ref = self._own_static_field(target.ident)
            if static_ref is not None:
                self.builder.put_static(static_ref, value, line=expr.line)
                return value
            chain = self._outer_chain_to_field(target.ident, expr.line)
            if chain is not None:
                base, ref = chain
                self.builder.put_field(base, ref, value, line=expr.line)
                return value
            raise self._error(
                f"unresolved assignment target {target.ident!r}", expr.line
            )

        assert isinstance(target, ast.FieldAccess)
        class_name = self._class_named(target.target)
        if class_name is not None:
            for name in [class_name, *self.module.superclasses(class_name)]:
                candidate = self.module.lookup_class(name)
                if candidate and target.name in candidate.fields:
                    self.builder.put_static(
                        FieldRef(name, target.name), value, line=expr.line
                    )
                    return value
            raise self._error(
                f"class {class_name} has no static field {target.name!r}",
                expr.line,
            )
        base = self.lower_expr(target.target)
        if isinstance(base, Const):
            raise self._error("field assignment on a literal", expr.line)
        assert isinstance(base, Local)
        base_type = self._type_of(base)
        ref = self._find_field(base_type.name, target.name)
        if ref is None:
            raise self._error(
                f"type {base_type.name} has no field {target.name!r}", expr.line
            )
        self.builder.put_field(base, ref, value, line=expr.line)
        return value
