"""Generated-corpus driver: analyze a seeded synthetic corpus and score
the pipeline against its ground-truth labels.

The generator (:mod:`repro.corpus.generator`) emits apps whose injected
use/free pairs are known exactly -- class, field, source lines, expected
pair type and expected surviving-vs-filtered status.  This driver fans
the generated apps out over the shared :class:`repro.runner.CorpusRunner`
(worker processes regenerate each app's source from ``(config, index)``,
so only the small generator config crosses the process boundary) and
hands the per-app :class:`~repro.runner.serialize.ResultData` views plus
the labels to :func:`repro.report.score.score_generated`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from .. import obs
from ..core import AnalysisConfig, analyze_module, AnalysisResult
from ..corpus.generator import (
    generate_app,
    generate_corpus,
    generated_app_index,
    GeneratedApp,
    GeneratorConfig,
)
from ..lowering import lower_sources
from ..resilience import checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner
    from ..runner.serialize import ResultData


def analyze_generated_app(
    app_name: str,
    generator: Dict[str, Any],
    config: Optional[AnalysisConfig] = None,
) -> AnalysisResult:
    """Regenerate one app from its ``(config, index)`` coordinates and run
    the full pipeline on it (the generated-corpus analogue of
    :func:`repro.harness.table1.analyze_corpus_app`)."""
    gconfig = GeneratorConfig.from_dict(generator)
    gen = generate_app(gconfig, generated_app_index(app_name))
    obs.add("generator.labels", len(gen.labels))
    checkpoint("lowering")
    with obs.span("lowering") as sp:
        module = lower_sources(gen.source, module_name=gen.name, seal=False)
    return analyze_module(module, None, config, extra_spans=[sp])


def generated_app_data(app_name: str,
                       params: Dict[str, Any]) -> Dict[str, Any]:
    """Worker payload for the ``generated`` task kind."""
    from ..runner.serialize import result_data_to_dict, result_to_data

    result = analyze_generated_app(
        app_name, params["generator"], params.get("config")
    )
    return result_data_to_dict(result_to_data(result))


def run_generated(
    runner: "CorpusRunner",
    gconfig: GeneratorConfig,
    config: Optional[AnalysisConfig] = None,
) -> Tuple[List[GeneratedApp], List[Optional["ResultData"]]]:
    """Generate the corpus and analyze every app through the runner.

    Returns the generated apps (with their labels) and the per-app
    results in the same order; a faulted app (``--keep-going``) yields
    ``None`` in the results list.
    """
    from ..runner.serialize import result_data_from_dict

    apps = generate_corpus(gconfig)
    telemetry = getattr(runner, "telemetry", None)
    if telemetry is not None:
        # a generated-corpus run is the canonical long run: name it on
        # the live /progress endpoint before the fan-out starts
        telemetry.set_phase(f"generated:{len(apps)}")
    payloads, _ = runner.run(
        "generated",
        [app.name for app in apps],
        {"config": config, "generator": gconfig.to_dict()},
    )
    results: List[Optional["ResultData"]] = [
        None if "error" in payload else result_data_from_dict(payload)
        for payload in payloads
    ]
    return apps, results
