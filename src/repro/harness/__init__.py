"""Experiment drivers that regenerate every table and figure of the paper."""

from .bench import (
    BENCH_SCHEMA,
    compare_bench,
    corpus_shape,
    default_bench_path,
    GATED_COUNTER_PREFIXES,
    GATED_COUNTERS,
    has_regressions,
    render_compare,
    run_bench,
    run_generated_bench,
    write_bench,
)
from .trend import (
    append_history,
    check_comparable,
    detect_drift,
    load_history,
    render_trend,
    trend_rows,
)
from .generated import (
    analyze_generated_app,
    generated_app_data,
    run_generated,
)
from .export import (
    CSV_COLUMNS,
    result_analysis_csv,
    save_result_analysis,
    write_result_analysis,
)
from .figure5 import (
    figure5_app_data,
    Figure5Data,
    render_figure5,
    run_figure5,
)
from .render import percent, render_table
from .table1 import (
    analyze_corpus_app,
    build_row,
    fp_totals,
    render_table1,
    run_table1,
    Table1Row,
    total_true_harmful,
)
from .table2 import (
    InjectionOutcome,
    render_table2,
    run_table2,
    summarize_table2,
    table2_app_data,
)
from .table3 import (
    nadroid_only_true_uafs,
    render_table3,
    run_table3,
    summarize_table3,
    table3_app_data,
    Table3Row,
)
from .timing import render_timing, run_timing, TimingData

__all__ = [
    "analyze_corpus_app", "analyze_generated_app", "append_history",
    "BENCH_SCHEMA",
    "build_row", "check_comparable", "compare_bench", "corpus_shape",
    "detect_drift", "generated_app_data", "load_history", "render_trend",
    "run_generated", "run_generated_bench", "trend_rows",
    "CSV_COLUMNS", "GATED_COUNTER_PREFIXES", "GATED_COUNTERS",
    "has_regressions", "render_compare",
    "default_bench_path", "run_bench", "write_bench", "figure5_app_data",
    "Figure5Data", "fp_totals", "result_analysis_csv",
    "save_result_analysis", "write_result_analysis",
    "InjectionOutcome", "nadroid_only_true_uafs", "percent",
    "render_figure5", "render_table", "render_table1", "render_table2",
    "render_table3", "render_timing", "run_figure5", "run_table1",
    "run_table2", "run_table3", "run_timing", "summarize_table2",
    "summarize_table3", "table2_app_data", "table3_app_data", "Table1Row",
    "Table3Row", "TimingData", "total_true_harmful",
]
