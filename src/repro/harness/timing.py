"""Section 8.8 driver: analysis execution-time breakdown.

The paper reports modeling at 1.19%, filtering at 3.08% and static
detection dominating at 95.73% of the pipeline's wall-clock time.  The
shape to preserve: detection is the overwhelmingly dominant stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..corpus import all_apps, AppSpec
from .render import render_table
from .table1 import analyze_corpus_app

STAGES = ("modeling", "detection", "filtering")


@dataclass
class TimingData:
    per_app: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def totals(self) -> Dict[str, float]:
        totals = {stage: 0.0 for stage in STAGES}
        for timings in self.per_app.values():
            for stage in STAGES:
                totals[stage] += timings.get(stage, 0.0)
        return totals

    def fractions(self) -> Dict[str, float]:
        totals = self.totals()
        overall = sum(totals.values()) or 1.0
        return {stage: totals[stage] / overall for stage in STAGES}

    @property
    def dominant_stage(self) -> str:
        return max(self.totals(), key=self.totals().get)


def run_timing(apps: Optional[List[AppSpec]] = None) -> TimingData:
    data = TimingData()
    for spec in (apps if apps is not None else all_apps()):
        result = analyze_corpus_app(spec)
        data.per_app[spec.name] = dict(result.timings)
    return data


def render_timing(data: TimingData) -> str:
    totals = data.totals()
    fractions = data.fractions()
    rows = [
        (stage, f"{totals[stage]:.3f}s", f"{100 * fractions[stage]:.2f}%")
        for stage in STAGES
    ]
    table = render_table(["Stage", "Total", "Share"], rows)
    return (
        f"{table}\n\n"
        f"Dominant stage: {data.dominant_stage} "
        f"(paper: detection at 95.73%, modeling 1.19%, filtering 3.08%)"
    )
