"""Section 8.8 driver: analysis execution-time breakdown.

The paper reports modeling at 1.19%, filtering at 3.08% and static
detection dominating at 95.73% of the pipeline's wall-clock time.  The
shape to preserve: detection is the overwhelmingly dominant stage.

Beyond the paper, the driver also accounts for the *driver's* own
wall-clock (which the per-stage numbers cannot see: process fan-out,
cache lookups, aggregation) so a ``--jobs N`` run can report its
effective speedup over the summed per-stage analysis time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core import AnalysisConfig
from ..corpus import all_apps, AppSpec
from .render import render_table
from .table1 import analyze_corpus_app

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner

#: every timed pipeline stage, in execution order
STAGES = ("lowering", "modeling", "detection", "filtering")
#: the paper's section 8.8 breakdown covers the *analysis* stages only
#: (lowering is source compilation, which nAdroid inherits from Soot and
#: the paper does not count); fractions stay comparable to its numbers
ANALYSIS_STAGES = ("modeling", "detection", "filtering")


@dataclass
class TimingData:
    per_app: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: end-to-end driver wall-clock, including fan-out/cache overhead
    wall_seconds: float = 0.0
    #: how many apps were actually analyzed vs served from the cache
    analyzed: int = 0
    cached: int = 0
    jobs: int = 1

    def totals(self) -> Dict[str, float]:
        totals = {stage: 0.0 for stage in STAGES}
        for timings in self.per_app.values():
            for stage in STAGES:
                totals[stage] += timings.get(stage, 0.0)
        return totals

    def fractions(self) -> Dict[str, float]:
        totals = self.totals()
        overall = sum(totals[s] for s in ANALYSIS_STAGES) or 1.0
        return {stage: totals[stage] / overall for stage in ANALYSIS_STAGES}

    @property
    def analysis_seconds(self) -> float:
        """Summed per-stage analysis time across all apps."""
        return sum(self.totals().values())

    @property
    def speedup(self) -> float:
        """Summed analysis time over driver wall-clock (>1 when the
        fan-out or the cache pays for its overhead)."""
        return self.analysis_seconds / self.wall_seconds \
            if self.wall_seconds else 0.0

    @property
    def dominant_stage(self) -> str:
        totals = self.totals()
        return max(ANALYSIS_STAGES, key=totals.get)


def run_timing(apps: Optional[List[AppSpec]] = None,
               config: Optional[AnalysisConfig] = None,
               runner: Optional["CorpusRunner"] = None) -> TimingData:
    specs = apps if apps is not None else all_apps()
    data = TimingData()
    start = time.perf_counter()
    if runner is None:
        for spec in specs:
            result = analyze_corpus_app(spec, config)
            data.per_app[spec.name] = dict(result.timings)
    else:
        payloads, stats = runner.run(
            "timing", [spec.name for spec in specs], {"config": config}
        )
        for spec, payload in zip(specs, payloads):
            if "error" in payload:  # faulted app under --keep-going
                continue
            data.per_app[spec.name] = dict(payload["timings"])
        data.analyzed = stats.analyzed
        data.cached = stats.cached
        data.jobs = stats.jobs
    data.wall_seconds = time.perf_counter() - start
    if runner is None:
        data.analyzed = len(data.per_app)
    return data


def render_timing(data: TimingData) -> str:
    totals = data.totals()
    fractions = data.fractions()
    rows = [
        (stage, f"{totals[stage]:.3f}s",
         f"{100 * fractions[stage]:.2f}%" if stage in fractions else "-")
        for stage in STAGES
    ]
    table = render_table(["Stage", "Total", "Share"], rows)
    return (
        f"{table}\n\n"
        f"Dominant stage: {data.dominant_stage} "
        f"(paper: detection at 95.73%, modeling 1.19%, filtering 3.08%)\n"
        f"Driver wall-clock: {data.wall_seconds:.3f}s for "
        f"{data.analysis_seconds:.3f}s of analysis "
        f"({data.speedup:.2f}x; {data.analyzed} analyzed, "
        f"{data.cached} cached, jobs={data.jobs})"
    )
