"""Table 2 driver: false-negative study with injected UAF violations.

28 artificial ground-truth UAFs are planted into the 8 DroidRacer apps
(see :mod:`repro.corpus.injector`).  The driver reruns the full pipeline
on each injected variant and classifies every injection as detected,
missed by detection (the unmodeled-framework-path cases), or pruned by an
unsound filter (the may-``finish`` CHB cases).  Paper outcome: 28 total,
2 missed, 3 unsoundly pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core import analyze_module, AnalysisConfig, AnalysisResult
from ..corpus.injector import (
    all_injections,
    DETECTED,
    INJECTED_APPS,
    injected_module,
    Injection,
    injections_for,
    MISSED,
    PRUNED_UNSOUND,
)
from .render import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner


@dataclass
class InjectionOutcome:
    injection: Injection
    detected: bool
    surviving: bool
    pruned_sound: bool
    pair_type: str = "-"

    @property
    def classification(self) -> str:
        if not self.detected:
            return MISSED
        if self.surviving:
            return DETECTED
        return PRUNED_UNSOUND

    @property
    def matches_paper(self) -> bool:
        return self.classification == self.injection.expectation


def _locate(result: AnalysisResult, injection: Injection):
    return [
        w for w in result.warnings
        if w.fieldref.field_name == injection.field
        and injection.use_method_hint in w.use_method
        and injection.free_method_hint in w.free_method
    ]


def _injection_by_id(injection_id: str) -> Injection:
    for injection in all_injections():
        if injection.injection_id == injection_id:
            return injection
    raise KeyError(injection_id)


def table2_app_data(app_name: str,
                    config: Optional[AnalysisConfig] = None) -> Dict:
    """Classify one app's injections (serializable outcome records)."""
    from .. import obs
    from ..resilience import checkpoint

    checkpoint("lowering")
    with obs.span("lowering") as sp:
        module = injected_module(app_name)
    result = analyze_module(module, config=config, extra_spans=[sp])
    outcomes = []
    for injection in injections_for(app_name):
        candidates = _locate(result, injection)
        detected = bool(candidates)
        outcomes.append({
            "injection_id": injection.injection_id,
            "detected": detected,
            "surviving": any(w.survives_all for w in candidates),
            "pruned_sound": detected and not any(
                w.survives_sound for w in candidates
            ),
            "pair_type": candidates[0].pair_type() if candidates else "-",
        })
    return {"outcomes": outcomes}


def _outcome_from_dict(record: Dict) -> InjectionOutcome:
    return InjectionOutcome(
        injection=_injection_by_id(record["injection_id"]),
        detected=record["detected"],
        surviving=record["surviving"],
        pruned_sound=record["pruned_sound"],
        pair_type=record["pair_type"],
    )


def run_table2(config: Optional[AnalysisConfig] = None,
               runner: Optional["CorpusRunner"] = None
               ) -> List[InjectionOutcome]:
    if runner is None:
        payloads = [table2_app_data(name, config) for name in INJECTED_APPS]
    else:
        payloads, _ = runner.run(
            "table2", list(INJECTED_APPS), {"config": config}
        )
    return [
        _outcome_from_dict(record)
        for payload in payloads
        if "error" not in payload  # faulted app under --keep-going
        for record in payload["outcomes"]
    ]


def summarize_table2(outcomes: List[InjectionOutcome]) -> Dict[str, int]:
    return {
        "total": len(outcomes),
        "detected": sum(1 for o in outcomes if o.classification == DETECTED),
        "missed": sum(1 for o in outcomes if o.classification == MISSED),
        "pruned_unsound": sum(
            1 for o in outcomes if o.classification == PRUNED_UNSOUND
        ),
        "matches_paper": sum(1 for o in outcomes if o.matches_paper),
    }


def render_table2(outcomes: List[InjectionOutcome]) -> str:
    rows = [
        (
            o.injection.app_name,
            o.injection.injection_id,
            o.injection.field,
            o.pair_type,
            o.classification,
            "yes" if o.matches_paper else "NO",
        )
        for o in outcomes
    ]
    table = render_table(
        ["APP", "Injection", "Field", "Type", "Outcome", "As paper"], rows
    )
    summary = summarize_table2(outcomes)
    return (
        f"{table}\n\n"
        f"Total {summary['total']}: {summary['detected']} detected, "
        f"{summary['missed']} missed by detection, "
        f"{summary['pruned_unsound']} pruned by unsound filters "
        f"(paper: 28 / 2 missed / 3 pruned)"
    )
