"""``repro bench``: the perf-trajectory benchmark driver.

Runs the corpus through the cached parallel runner and emits a
``BENCH_<date>.json`` whose schema is documented in
``docs/observability.md``:

* ``schema`` / ``date`` / ``jobs`` -- provenance,
* ``apps.<name>.timings`` -- per-stage seconds (lowering, modeling,
  detection, filtering, total),
* ``apps.<name>.counters`` -- the deterministic analysis metrics
  (points-to passes and fact counts, Datalog facts, detector funnel,
  per-filter drop counts); identical across ``--jobs`` settings,
* ``apps.<name>.spans`` -- the serialized trace tree,
* ``totals`` -- timings and counters summed over all apps.

Only durations may differ between two runs over the same corpus; the
counters are pinned by ``tests/obs/test_obs.py``.
"""

from __future__ import annotations

import datetime
from typing import Any, Dict, List, Optional

from ..corpus import all_apps, AppSpec
from ..obs import merge_snapshots, write_json
from ..runner import CorpusRunner

BENCH_SCHEMA = 1


def default_bench_path(date: Optional[datetime.date] = None) -> str:
    date = date or datetime.date.today()
    return f"BENCH_{date.isoformat()}.json"


def run_bench(runner: CorpusRunner,
              apps: Optional[List[AppSpec]] = None,
              config=None) -> Dict[str, Any]:
    """Analyze every app and assemble the benchmark payload."""
    specs = apps if apps is not None else all_apps()
    payloads, stats = runner.run(
        "timing", [spec.name for spec in specs], {"config": config}
    )
    metrics = runner.last_metrics
    per_app: Dict[str, Any] = {}
    for spec, payload in zip(specs, payloads):
        if "error" in payload:  # faulted app under --keep-going
            continue
        snapshot = metrics.apps.get(spec.name) if metrics else None
        per_app[spec.name] = {
            "timings": dict(payload["timings"]),
            "counters": dict(snapshot.counters) if snapshot else {},
            "gauges": dict(snapshot.gauges) if snapshot else {},
            "spans": list(snapshot.spans) if snapshot else [],
        }

    total_timings: Dict[str, float] = {}
    for entry in per_app.values():
        for stage, seconds in entry["timings"].items():
            total_timings[stage] = total_timings.get(stage, 0.0) + seconds
    merged = merge_snapshots(metrics.apps.values()) if metrics \
        else merge_snapshots(())

    return {
        "schema": BENCH_SCHEMA,
        "date": datetime.date.today().isoformat(),
        "jobs": runner.jobs,
        "run": stats.to_snapshot().to_dict(),
        "apps": per_app,
        "totals": {
            "timings": total_timings,
            "counters": merged.counters,
        },
    }


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Write the payload canonically (sorted keys, so diffs are clean)."""
    write_json(path, payload)
