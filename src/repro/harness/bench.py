"""``repro bench``: the perf-trajectory benchmark driver.

Runs the corpus through the cached parallel runner and emits a
``BENCH_<date>.json`` whose schema is documented in
``docs/observability.md``:

* ``schema`` / ``date`` / ``jobs`` -- provenance,
* ``apps.<name>.timings`` -- per-stage seconds (lowering, modeling,
  detection, filtering, total),
* ``apps.<name>.counters`` -- the deterministic analysis metrics
  (points-to passes and fact counts, Datalog facts, detector funnel,
  per-filter drop counts); identical across ``--jobs`` settings,
* ``apps.<name>.spans`` -- the serialized trace tree,
* ``totals`` -- timings and counters summed over all apps.

Only durations may differ between two runs over the same corpus; the
counters are pinned by ``tests/obs/test_obs.py``.

``bench --compare OLD.json`` is the perf regression gate
(``docs/performance.md``): :func:`compare_bench` diffs a fresh payload
against a committed baseline, failing on *work-counter* regressions
(pass counts, derived facts, worklist processings -- machine-independent
quantities) and on per-app wall-time regressions beyond a tolerance
(machine-dependent, so the tolerance is configurable and padded with an
absolute slack for sub-second apps).
"""

from __future__ import annotations

import datetime
import hashlib
import json
from typing import Any, Dict, List, Optional

from ..corpus import all_apps, AppSpec
from ..obs import merge_snapshots, write_json
from ..runner import CorpusRunner

#: stays 1 across additive fields (``corpus`` shape metadata is
#: additive: old baselines without it remain valid compare targets)
BENCH_SCHEMA = 1

#: counters that measure *work done* -- deterministic, machine-independent,
#: and expected never to grow for the same input.  ``bench --compare``
#: fails when any of these increases over the baseline.
GATED_COUNTERS = (
    "datalog.passes",
    "datalog.derived_facts",
    "datalog.total_facts",
    "datalog.index.builds",
    "datalog.index.evictions",
    "pointsto.passes",
    "pointsto.worklist.popped",
    "pointsto.worklist.pushed",
)

#: counter-name prefixes gated the same way: every ``hotspot.*`` count
#: (per-rule derived facts, per-pair worklist pops) is deterministic
#: work attribution, so a growth present in both payloads is a real
#: regression in that unit.  Prefix-matched counters missing on one
#: side (older baseline) simply do not gate.
GATED_COUNTER_PREFIXES = ("hotspot.",)

#: absolute wall-time slack (seconds) added on top of the relative
#: tolerance: corpus apps analyze in fractions of a second, where
#: scheduler noise alone exceeds any sane percentage.
TIME_SLACK_S = 0.25


def default_bench_path(date: Optional[datetime.date] = None) -> str:
    date = date or datetime.date.today()
    return f"BENCH_{date.isoformat()}.json"


def corpus_shape(kind: str, names: List[str],
                 generator: Optional[Dict[str, Any]] = None,
                 seed: Optional[int] = None) -> Dict[str, Any]:
    """The corpus-shape stamp carried in every bench payload.

    ``digest`` content-addresses what was benchmarked (the sorted app
    names plus, for generated corpora, the full generator config), so
    ``bench trend`` can refuse to chart runs over different corpora.
    """
    basis: Dict[str, Any] = {"names": sorted(set(names))}
    if generator is not None:
        basis["generator"] = generator
    digest = hashlib.sha256(
        json.dumps(basis, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    shape: Dict[str, Any] = {
        "kind": kind,
        "apps": len(set(names)),
        "digest": digest,
    }
    if seed is not None:
        shape["seed"] = seed
    return shape


def _announce_phase(runner: CorpusRunner, phase: str) -> None:
    """Name the bench phase on the live telemetry endpoint, when one is
    attached (``--serve-telemetry``); a no-op otherwise."""
    telemetry = getattr(runner, "telemetry", None)
    if telemetry is not None:
        telemetry.set_phase(phase)


def run_bench(runner: CorpusRunner,
              apps: Optional[List[AppSpec]] = None,
              config=None) -> Dict[str, Any]:
    """Analyze every app and assemble the benchmark payload."""
    specs = apps if apps is not None else all_apps()
    names = [spec.name for spec in specs]
    _announce_phase(runner, f"bench:registry:{len(names)}")
    payloads, stats = runner.run("timing", names, {"config": config})
    return _bench_payload(runner, names, payloads, stats,
                          corpus=corpus_shape("registry", names))


def run_generated_bench(runner: CorpusRunner, gconfig,
                        config=None) -> Dict[str, Any]:
    """The ``bench --generated N`` stress mode: same payload schema as
    :func:`run_bench`, over a seeded generated corpus (see
    :mod:`repro.corpus.generator`) instead of the 27 registry apps."""
    from ..corpus.generator import generated_app_name

    names = [generated_app_name(gconfig.seed, index)
             for index in range(gconfig.count)]
    _announce_phase(runner, f"bench:generated:{len(names)}")
    payloads, stats = runner.run(
        "gen-timing", names,
        {"config": config, "generator": gconfig.to_dict()},
    )
    return _bench_payload(
        runner, names, payloads, stats,
        corpus=corpus_shape("generated", names,
                            generator=gconfig.to_dict(), seed=gconfig.seed),
    )


def _bench_payload(runner: CorpusRunner, names: List[str],
                   payloads: List[Dict[str, Any]],
                   stats,
                   corpus: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    metrics = runner.last_metrics
    per_app: Dict[str, Any] = {}
    for name, payload in zip(names, payloads):
        if "error" in payload:  # faulted app under --keep-going
            continue
        snapshot = metrics.apps.get(name) if metrics else None
        per_app[name] = {
            "timings": dict(payload["timings"]),
            "counters": dict(snapshot.counters) if snapshot else {},
            "gauges": dict(snapshot.gauges) if snapshot else {},
            "spans": list(snapshot.spans) if snapshot else [],
        }

    total_timings: Dict[str, float] = {}
    for entry in per_app.values():
        for stage, seconds in entry["timings"].items():
            total_timings[stage] = total_timings.get(stage, 0.0) + seconds
    merged = merge_snapshots(metrics.apps.values()) if metrics \
        else merge_snapshots(())

    payload = {
        "schema": BENCH_SCHEMA,
        "date": datetime.date.today().isoformat(),
        "jobs": runner.jobs,
        "run": stats.to_snapshot().to_dict(),
        "apps": per_app,
        "totals": {
            "timings": total_timings,
            "counters": merged.counters,
        },
    }
    if corpus is not None:
        payload["corpus"] = corpus
    return payload


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Write the payload canonically (sorted keys, so diffs are clean)."""
    write_json(path, payload)


# -- bench --compare: the perf regression gate --------------------------------


def _gated_counter_names(old_counters: Dict[str, Any],
                         new_counters: Dict[str, Any]) -> List[str]:
    """The gated counter set for one app: the fixed
    :data:`GATED_COUNTERS` plus every :data:`GATED_COUNTER_PREFIXES`
    match present in *both* payloads, in deterministic order."""
    names = list(GATED_COUNTERS)
    prefixed = {
        name for name in old_counters
        if name.startswith(GATED_COUNTER_PREFIXES) and name in new_counters
    }
    names.extend(sorted(prefixed - set(GATED_COUNTERS)))
    return names


def compare_bench(
    old: Dict[str, Any],
    new: Dict[str, Any],
    time_tolerance: float = 0.25,
    time_slack: float = TIME_SLACK_S,
) -> Dict[str, Any]:
    """Diff two bench payloads; returns a comparison with regressions.

    * **Counter regressions** (hard failures): any :data:`GATED_COUNTERS`
      entry present in both payloads for the same app whose new value
      exceeds the old one.
    * **Time regressions**: per-app ``total`` wall time beyond
      ``old * (1 + time_tolerance) + time_slack``.  Time is
      machine-dependent; callers gating in CI against a baseline from
      another machine should widen ``time_tolerance``.

    Apps present on only one side are reported but never gate.
    """
    old_apps = old.get("apps", {})
    new_apps = new.get("apps", {})
    shared = sorted(set(old_apps) & set(new_apps))
    regressions: List[Dict[str, Any]] = []
    apps: Dict[str, Any] = {}
    for name in shared:
        old_entry, new_entry = old_apps[name], new_apps[name]
        old_s = float(old_entry.get("timings", {}).get("total", 0.0))
        new_s = float(new_entry.get("timings", {}).get("total", 0.0))
        counters: Dict[str, Any] = {}
        old_counters = old_entry.get("counters", {})
        new_counters = new_entry.get("counters", {})
        for counter in _gated_counter_names(old_counters, new_counters):
            old_v = old_counters.get(counter)
            new_v = new_counters.get(counter)
            if old_v is None or new_v is None:
                continue  # not comparable (engine generations differ)
            counters[counter] = {"old": old_v, "new": new_v}
            if new_v > old_v:
                regressions.append({
                    "app": name, "kind": "counter", "name": counter,
                    "old": old_v, "new": new_v,
                })
        time_limit = old_s * (1.0 + time_tolerance) + time_slack
        time_regressed = new_s > time_limit
        if time_regressed:
            regressions.append({
                "app": name, "kind": "time", "name": "total",
                "old": old_s, "new": new_s,
            })
        apps[name] = {
            "old_s": old_s,
            "new_s": new_s,
            "delta_s": new_s - old_s,
            "delta_pct": ((new_s - old_s) / old_s * 100.0) if old_s else 0.0,
            "counters": counters,
            "time_regressed": time_regressed,
        }
    return {
        "old_date": old.get("date"),
        "new_date": new.get("date"),
        "time_tolerance": time_tolerance,
        "time_slack": time_slack,
        "apps": apps,
        "only_old": sorted(set(old_apps) - set(new_apps)),
        "only_new": sorted(set(new_apps) - set(old_apps)),
        "regressions": regressions,
    }


def has_regressions(comparison: Dict[str, Any]) -> bool:
    return bool(comparison["regressions"])


def render_compare(comparison: Dict[str, Any]) -> str:
    """The per-app wall-time delta table plus counter verdict lines."""
    lines: List[str] = []
    lines.append(
        f"bench compare: baseline {comparison['old_date']} "
        f"-> candidate {comparison['new_date']} "
        f"(time tolerance {comparison['time_tolerance'] * 100:.0f}% "
        f"+ {comparison['time_slack']:g}s)"
    )
    header = (f"{'app':<16} {'old s':>8} {'new s':>8} {'delta':>8} "
              f"{'popped':>12} {'dl passes':>10}")
    lines.append(header)
    lines.append("-" * len(header))

    def _counter_cell(entry: Dict[str, Any], name: str) -> str:
        pair = entry["counters"].get(name)
        if pair is None:
            return "-"
        if pair["old"] == pair["new"]:
            return str(pair["new"])
        return f"{pair['old']}>{pair['new']}"

    for name in sorted(comparison["apps"]):
        entry = comparison["apps"][name]
        flag = " !" if entry["time_regressed"] else ""
        lines.append(
            f"{name:<16} {entry['old_s']:>8.3f} {entry['new_s']:>8.3f} "
            f"{entry['delta_pct']:>+7.1f}% "
            f"{_counter_cell(entry, 'pointsto.worklist.popped'):>12} "
            f"{_counter_cell(entry, 'datalog.passes'):>10}{flag}"
        )
    for name in comparison["only_old"]:
        lines.append(f"{name:<16} (only in baseline)")
    for name in comparison["only_new"]:
        lines.append(f"{name:<16} (only in candidate)")
    if comparison["regressions"]:
        lines.append("")
        for reg in comparison["regressions"]:
            if reg["kind"] == "counter":
                lines.append(
                    f"REGRESSION {reg['app']}: {reg['name']} "
                    f"{reg['old']} -> {reg['new']}"
                )
            else:
                lines.append(
                    f"REGRESSION {reg['app']}: wall time "
                    f"{reg['old']:.3f}s -> {reg['new']:.3f}s"
                )
        lines.append(f"{len(comparison['regressions'])} regression(s)")
    else:
        lines.append("")
        lines.append("no regressions")
    return "\n".join(lines)
