"""Table 1 driver: the full nAdroid evaluation over all 27 apps.

For each corpus application the driver reports, like the paper's Table 1:
the EC/PC/T model sizes, potential UAF warnings, survivors of the sound
and unsound filters, the origin-category split of the survivors, the
number of dynamically-confirmed true harmful UAFs, and the false-positive
category breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from .. import obs
from ..core import AnalysisConfig, analyze_module, AnalysisResult
from ..corpus import all_apps, AppSpec, FP_CATEGORIES
from ..race.warnings import PAIR_TYPES
from ..resilience import checkpoint
from ..runtime import Simulator, validate_warning
from .render import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner
    from ..runner.serialize import ResultData


@dataclass
class Table1Row:
    app: AppSpec
    #: the full in-process result on the serial path, or its serializable
    #: :class:`repro.runner.ResultData` view when produced by the runner
    result: Union[AnalysisResult, "ResultData"]
    counts: Dict[str, int]
    pair_types: Dict[str, int]
    true_harmful: int = 0
    confirmed_fields: List[str] = field(default_factory=list)
    fp_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.app.name


def analyze_corpus_app(spec: AppSpec,
                       config: Optional[AnalysisConfig] = None) -> AnalysisResult:
    checkpoint("lowering")
    with obs.span("lowering") as sp:
        module = spec.compile()
    return analyze_module(
        module, spec.manifest_for(module), config, extra_spans=[sp]
    )


def build_row(spec: AppSpec, validate: bool = True,
              random_attempts: int = 40,
              config: Optional[AnalysisConfig] = None) -> Table1Row:
    result = analyze_corpus_app(spec, config)
    row = Table1Row(
        app=spec,
        result=result,
        counts=result.counts(),
        pair_types=result.by_pair_type(),
    )

    if validate:
        program = result.program

        def make_sim():
            return Simulator(program.module, program.manifest)

        confirmed_keys = set()
        for warning in result.remaining():
            verdict = validate_warning(
                make_sim, warning, random_attempts=random_attempts,
                systematic_branches=15, max_decisions=800,
            )
            if verdict.confirmed:
                confirmed_keys.add(warning.key)
                row.confirmed_fields.append(warning.fieldref.field_name)
        row.true_harmful = len(confirmed_keys)
        # FP breakdown: surviving-but-unconfirmed warnings, categorized by
        # the corpus ground-truth labels.
        breakdown = {category: 0 for category in FP_CATEGORIES}
        for warning in result.remaining():
            if warning.key in confirmed_keys:
                continue
            category = spec.fp_fields.get(warning.fieldref.field_name)
            if category is not None:
                breakdown[category] += 1
        row.fp_breakdown = breakdown
    return row


def run_table1(validate: bool = True, apps: Optional[List[AppSpec]] = None,
               random_attempts: int = 40,
               config: Optional[AnalysisConfig] = None,
               runner: Optional["CorpusRunner"] = None) -> List[Table1Row]:
    """Build every row (slow with validation; ~1 minute serially).

    Without a ``runner`` rows are built serially in-process and carry full
    :class:`AnalysisResult` objects.  With a :class:`repro.runner
    .CorpusRunner` the per-app analyses fan out over worker processes
    (and/or come from the result cache) and rows carry serializable
    :class:`repro.runner.ResultData` views; rendered output is identical
    either way.
    """
    specs = apps if apps is not None else all_apps()
    if runner is None:
        return [
            build_row(spec, validate=validate,
                      random_attempts=random_attempts, config=config)
            for spec in specs
        ]
    from ..runner.serialize import row_from_dict

    payloads, _ = runner.run(
        "table1",
        [spec.name for spec in specs],
        {"validate": validate, "random_attempts": random_attempts,
         "config": config},
    )
    # Faulted apps come back as {"error": ...} envelopes under
    # --keep-going; the table simply has no row for them (the faults
    # themselves surface through runner.last_faults and the report).
    return [row_from_dict(payload) for payload in payloads
            if "error" not in payload]


def render_table1(rows: List[Table1Row]) -> str:
    headers = [
        "Group", "APP", "EC", "PC", "T",
        "Potential", "Sound", "Unsound",
        *PAIR_TYPES,
        "True", "FPs",
    ]
    body = []
    for row in rows:
        fp_total = sum(row.fp_breakdown.values())
        body.append([
            row.app.group, row.name,
            row.counts["EC"], row.counts["PC"], row.counts["T"],
            row.counts["potential"], row.counts["after_sound"],
            row.counts["after_unsound"],
            *[row.pair_types.get(t, 0) for t in PAIR_TYPES],
            row.true_harmful, fp_total,
        ])
    return render_table(headers, body)


def total_true_harmful(rows: List[Table1Row]) -> int:
    return sum(row.true_harmful for row in rows)


def fp_totals(rows: List[Table1Row]) -> Dict[str, int]:
    totals = {category: 0 for category in FP_CATEGORIES}
    for row in rows:
        for category, count in row.fp_breakdown.items():
            totals[category] += count
    return totals
