"""``repro bench trend``: the perf trajectory over a history of runs.

``bench --compare`` answers "did this change regress against one
baseline?"; this module answers "has the corpus been getting slower
across the last N runs?".  ``bench --history DIR`` appends every bench
payload to a history directory (one ``BENCH_<date>.json`` per run,
collision-suffixed so several runs a day coexist) and ``bench trend
DIR`` charts it:

* one row per run -- date, total wall seconds, and the corpus-wide
  totals of a few gated work counters;
* a **comparability gate** -- runs are charted only when they benchmark
  the same corpus.  Every payload's app-name digest must match, and
  when two payloads both carry explicit ``corpus`` shape metadata
  (see :func:`repro.harness.bench.corpus_shape`) their digests must
  match too; otherwise trend refuses with a one-line error naming the
  offending files;
* a **drift gate** -- monotone growth across the trailing window
  (``--window``, default 5 runs) fails the build: any gated counter
  total that only ever grows, or wall time that only ever grows *and*
  ends more than ``--time-tolerance`` above the window's start.  A
  single faster run in the window resets the alarm, so ordinary
  machine noise does not trip it.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .bench import BENCH_SCHEMA, GATED_COUNTERS

#: counters whose corpus-wide totals appear as trend table columns
TREND_COUNTERS = (
    "pointsto.worklist.popped",
    "datalog.passes",
    "datalog.total_facts",
)

#: relative wall-time growth across the window tolerated before
#: monotone growth counts as drift
DEFAULT_TIME_TOLERANCE = 0.25

#: trailing runs inspected by the drift gate
DEFAULT_WINDOW = 5


def app_digest(payload: Dict[str, Any]) -> str:
    """Content digest of *which apps* a payload benchmarked.

    Computed from the payload's own app names, so payloads written
    before ``corpus`` shape metadata existed still participate in the
    comparability gate.
    """
    names = sorted(payload.get("apps", {}))
    return hashlib.sha256(
        json.dumps(names).encode("utf-8")
    ).hexdigest()[:16]


def append_history(payload: Dict[str, Any], directory: str) -> str:
    """Write ``payload`` into the history directory; returns the path.

    Files are named ``BENCH_<date>.json``; a second run on the same day
    gets a ``-2``/``-3``/... suffix instead of overwriting history.
    """
    from ..obs import write_json

    os.makedirs(directory, exist_ok=True)
    date = payload.get("date") or datetime.date.today().isoformat()
    base = f"BENCH_{date}"
    path = os.path.join(directory, f"{base}.json")
    suffix = 2
    while os.path.exists(path):
        path = os.path.join(directory, f"{base}-{suffix}.json")
        suffix += 1
    write_json(path, payload)
    return path


def load_history(directory: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Parse every ``BENCH_*.json`` in the directory, oldest first.

    Returns ``(filename, payload)`` pairs ordered by payload date then
    filename (so same-day runs keep their append order).  Raises
    ``ValueError`` on unreadable files or foreign schemas -- a history
    directory is a curated input, not a best-effort scan.
    """
    if not os.path.isdir(directory):
        # a missing directory is the most common first-use stumble;
        # surface it as one clean line (exit 2 at the CLI), not an
        # OSError repr or a traceback
        raise ValueError(
            f"bench trend: no such history directory {directory} "
            f"(create one with `bench --history {directory}`)"
        )
    try:
        entries = sorted(os.listdir(directory))
    except OSError as exc:
        raise ValueError(f"bench trend: cannot read {directory}: {exc}")
    history: List[Tuple[str, Dict[str, Any]]] = []
    for filename in entries:
        if not (filename.startswith("BENCH_") and filename.endswith(".json")):
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ValueError(f"bench trend: cannot parse {filename}: {exc}")
        if not isinstance(payload, dict) \
                or payload.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"bench trend: {filename} is not a schema-{BENCH_SCHEMA} "
                f"bench payload"
            )
        history.append((filename, payload))
    # Same-day runs keep append order: the unsuffixed BENCH_<date>.json
    # is shorter than its -2/-3/... siblings, so length-then-name sorts
    # base first and the numeric suffixes in sequence.
    history.sort(key=lambda item: (
        str(item[1].get("date", "")), len(item[0]), item[0]
    ))
    return history


def check_comparable(
    history: List[Tuple[str, Dict[str, Any]]]
) -> Optional[str]:
    """One-line error when two runs benchmark different corpora."""
    if len(history) < 2:
        return None
    first_name, first = history[0]
    first_digest = app_digest(first)
    first_meta = first.get("corpus")
    for name, payload in history[1:]:
        if app_digest(payload) != first_digest:
            return (
                f"bench trend: {first_name} and {name} benchmark "
                f"different corpora (app sets differ); prune the history "
                f"directory or keep per-corpus histories"
            )
        meta = payload.get("corpus")
        if first_meta and meta \
                and meta.get("digest") != first_meta.get("digest"):
            return (
                f"bench trend: {first_name} and {name} benchmark "
                f"different corpora (corpus digest "
                f"{first_meta.get('digest')} vs {meta.get('digest')}); "
                f"prune the history directory or keep per-corpus histories"
            )
    return None


def _wall_seconds(payload: Dict[str, Any]) -> float:
    return float(
        payload.get("totals", {}).get("timings", {}).get("total", 0.0)
    )


def _counter_total(payload: Dict[str, Any], counter: str) -> Optional[int]:
    value = payload.get("totals", {}).get("counters", {}).get(counter)
    return int(value) if value is not None else None


def trend_rows(
    history: List[Tuple[str, Dict[str, Any]]],
    counters: Tuple[str, ...] = TREND_COUNTERS,
) -> List[Dict[str, Any]]:
    """One dict per run: file, date, wall seconds, counter totals."""
    rows = []
    for filename, payload in history:
        rows.append({
            "file": filename,
            "date": str(payload.get("date", "?")),
            "wall_s": _wall_seconds(payload),
            "counters": {
                counter: _counter_total(payload, counter)
                for counter in counters
            },
        })
    return rows


def _monotone_nondecreasing(values: List[float]) -> bool:
    return all(b >= a for a, b in zip(values, values[1:]))


def detect_drift(
    history: List[Tuple[str, Dict[str, Any]]],
    window: int = DEFAULT_WINDOW,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> List[Dict[str, Any]]:
    """Monotone-growth drift over the trailing ``window`` runs.

    * a gated counter total drifts when it never decreases inside the
      window and ends above its start (work only ever grew);
    * wall time drifts under the same monotonicity condition *plus* a
      relative-growth threshold, since wall time is machine noise at
      small deltas.

    Needs at least two runs in the window; returns a list of drift
    records (empty = healthy).
    """
    tail = history[-max(2, window):]
    if len(tail) < 2:
        return []
    drifts: List[Dict[str, Any]] = []
    for counter in GATED_COUNTERS:
        values = [_counter_total(payload, counter) for _, payload in tail]
        if any(value is None for value in values):
            continue  # counter not recorded across the whole window
        if _monotone_nondecreasing(values) and values[-1] > values[0]:
            drifts.append({
                "kind": "counter", "name": counter,
                "first": values[0], "last": values[-1],
                "runs": len(values),
            })
    walls = [_wall_seconds(payload) for _, payload in tail]
    if _monotone_nondecreasing(walls) and walls[0] > 0.0 \
            and (walls[-1] - walls[0]) / walls[0] > time_tolerance:
        drifts.append({
            "kind": "time", "name": "totals.timings.total",
            "first": walls[0], "last": walls[-1],
            "runs": len(walls),
        })
    return drifts


def render_trend(
    history: List[Tuple[str, Dict[str, Any]]],
    drifts: Optional[List[Dict[str, Any]]] = None,
    counters: Tuple[str, ...] = TREND_COUNTERS,
) -> str:
    """The per-run trend table plus the drift verdict."""
    if not history:
        return "bench trend: no BENCH_*.json runs found"
    rows = trend_rows(history, counters)
    short = {counter: counter.rsplit(".", 1)[-1] for counter in counters}
    header = f"{'date':<12} {'wall s':>9} " + " ".join(
        f"{short[counter]:>12}" for counter in counters
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            f"{row['counters'][counter]:>12}"
            if row["counters"][counter] is not None else f"{'-':>12}"
            for counter in counters
        )
        lines.append(f"{row['date']:<12} {row['wall_s']:>9.3f} {cells}")
    lines.append("")
    if drifts:
        for drift in drifts:
            if drift["kind"] == "counter":
                lines.append(
                    f"DRIFT {drift['name']}: {drift['first']} -> "
                    f"{drift['last']} over {drift['runs']} run(s), "
                    f"never decreasing"
                )
            else:
                lines.append(
                    f"DRIFT wall time: {drift['first']:.3f}s -> "
                    f"{drift['last']:.3f}s over {drift['runs']} run(s), "
                    f"never decreasing"
                )
        lines.append(f"{len(drifts)} drift(s)")
    else:
        lines.append(f"no drift across the last {len(rows)} run(s)")
    return "\n".join(lines)
