"""Plain-text table rendering for the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Column-aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = [fmt(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def percent(numerator: int, denominator: int) -> str:
    if denominator == 0:
        return "-"
    return f"{100.0 * numerator / denominator:.0f}%"
