"""Figure 5 driver: sound/unsound filter effectiveness over the test group.

Paper reference points (percent of warnings pruned when each filter is
applied individually over the 20 test applications):

* Figure 5(a), over all potential warnings: MHB 21%, IG 66%, IA 13%;
  combined sound filters remove 88%.
* Figure 5(b), over the survivors of the sound filters: mayHB 13%
  (PHB dominating), MA 26%, UR 29%, TT 15%; combined unsound filters
  remove 70% of the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core import AnalysisConfig
from ..corpus import AppSpec, test_apps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner
from ..filters.base import FilterContext
from ..filters.pipeline import FilterPipeline
from ..filters.sound import SOUND_FILTERS
from ..filters.unsound import MAYHB_FILTER_NAMES, UNSOUND_FILTERS
from .render import percent, render_table
from .table1 import analyze_corpus_app


@dataclass
class Figure5Data:
    """Aggregated individual-filter effectiveness."""

    potential: int = 0
    after_sound: int = 0
    after_unsound: int = 0
    sound_individual: Dict[str, int] = field(default_factory=dict)
    unsound_individual: Dict[str, int] = field(default_factory=dict)
    mayhb_combined: int = 0

    def sound_fraction(self, name: str) -> float:
        return (self.sound_individual.get(name, 0) / self.potential
                if self.potential else 0.0)

    def unsound_fraction(self, name: str) -> float:
        return (self.unsound_individual.get(name, 0) / self.after_sound
                if self.after_sound else 0.0)

    @property
    def sound_combined_fraction(self) -> float:
        return (1 - self.after_sound / self.potential) if self.potential else 0.0

    @property
    def unsound_combined_fraction(self) -> float:
        return (1 - self.after_unsound / self.after_sound) \
            if self.after_sound else 0.0

    @property
    def mayhb_fraction(self) -> float:
        return self.mayhb_combined / self.after_sound if self.after_sound else 0.0


def figure5_app_data(spec: AppSpec,
                     config: Optional[AnalysisConfig] = None) -> Dict:
    """One app's filter-effectiveness contribution (serializable)."""
    result = analyze_corpus_app(spec, config)
    report = result.report
    # combined mayHB bar (RHB + CHB + PHB together)
    ctx = FilterContext(result.program, result.pointsto, result.lockset)
    pipeline = FilterPipeline(ctx)
    mayhb = [f for f in UNSOUND_FILTERS if f.name in MAYHB_FILTER_NAMES]
    survivors = [w for w in result.warnings if w.survives_sound]
    return {
        "potential": report.potential,
        "after_sound": report.after_sound,
        "after_unsound": report.after_unsound,
        "sound_individual": dict(report.sound_individual),
        "unsound_individual": dict(report.unsound_individual),
        "mayhb_combined": pipeline.count_pruned_group(
            survivors, mayhb, require_sound_survivor=True
        ),
    }


def run_figure5(apps: Optional[List[AppSpec]] = None,
                config: Optional[AnalysisConfig] = None,
                runner: Optional["CorpusRunner"] = None) -> Figure5Data:
    """Aggregate individual filter effectiveness over the test group."""
    specs = apps if apps is not None else test_apps()
    if runner is None:
        payloads = [figure5_app_data(spec, config) for spec in specs]
    else:
        payloads, _ = runner.run(
            "figure5", [spec.name for spec in specs], {"config": config}
        )
    data = Figure5Data(
        sound_individual={f.name: 0 for f in SOUND_FILTERS},
        unsound_individual={f.name: 0 for f in UNSOUND_FILTERS},
    )
    for payload in payloads:
        if "error" in payload:  # faulted app under --keep-going: no data
            continue
        data.potential += payload["potential"]
        data.after_sound += payload["after_sound"]
        data.after_unsound += payload["after_unsound"]
        for name, count in payload["sound_individual"].items():
            data.sound_individual[name] += count
        for name, count in payload["unsound_individual"].items():
            data.unsound_individual[name] += count
        data.mayhb_combined += payload["mayhb_combined"]
    return data


def render_figure5(data: Figure5Data) -> str:
    lines = ["Figure 5(a): sound filters (fraction of potential pruned)"]
    rows = [
        (name, data.sound_individual[name],
         percent(data.sound_individual[name], data.potential))
        for name in ("MHB", "IG", "IA")
    ]
    rows.append(("All (combined)", data.potential - data.after_sound,
                 percent(data.potential - data.after_sound, data.potential)))
    lines.append(render_table(["Filter", "Pruned", "Fraction"], rows))

    lines.append("")
    lines.append("Figure 5(b): unsound filters (fraction of sound survivors)")
    rows_b = [("mayHB (RHB+CHB+PHB)", data.mayhb_combined,
               percent(data.mayhb_combined, data.after_sound))]
    for name in ("MA", "UR", "TT"):
        rows_b.append(
            (name, data.unsound_individual[name],
             percent(data.unsound_individual[name], data.after_sound))
        )
    rows_b.append(
        ("All (combined)", data.after_sound - data.after_unsound,
         percent(data.after_sound - data.after_unsound, data.after_sound))
    )
    lines.append(render_table(["Filter", "Pruned", "Fraction"], rows_b))
    return "\n".join(lines)
