"""CSV export, mirroring the paper artifact's ``ResultAnalysis.csv``.

The CGO'18 artifact's scripts emit one CSV with the Table 1 / Figure 5
data; this module reproduces that output format for the corpus drivers.
"""

from __future__ import annotations

import csv
import io
from typing import List, TextIO

from ..race.warnings import PAIR_TYPES
from .table1 import Table1Row

CSV_COLUMNS = [
    "group", "app", "EC", "PC", "T",
    "potential_uafs", "after_sound_filters", "after_unsound_filters",
    *[f"type_{t}" for t in PAIR_TYPES],
    "true_harmful",
    "fp_path_insensitivity", "fp_points_to", "fp_not_reachable",
    "fp_missing_hb",
    "modeling_seconds", "detection_seconds", "filtering_seconds",
]


def write_result_analysis(rows: List[Table1Row], out: TextIO) -> None:
    """Write the ResultAnalysis.csv equivalent to a text stream."""
    writer = csv.writer(out)
    writer.writerow(CSV_COLUMNS)
    for row in rows:
        timings = row.result.timings
        writer.writerow([
            row.app.group,
            row.name,
            row.counts["EC"],
            row.counts["PC"],
            row.counts["T"],
            row.counts["potential"],
            row.counts["after_sound"],
            row.counts["after_unsound"],
            *[row.pair_types.get(t, 0) for t in PAIR_TYPES],
            row.true_harmful,
            row.fp_breakdown.get("path-insensitivity", 0),
            row.fp_breakdown.get("points-to", 0),
            row.fp_breakdown.get("not-reachable", 0),
            row.fp_breakdown.get("missing-hb", 0),
            f"{timings.get('modeling', 0.0):.6f}",
            f"{timings.get('detection', 0.0):.6f}",
            f"{timings.get('filtering', 0.0):.6f}",
        ])


def result_analysis_csv(rows: List[Table1Row]) -> str:
    """The CSV as a string."""
    buffer = io.StringIO()
    write_result_analysis(rows, buffer)
    return buffer.getvalue()


def save_result_analysis(rows: List[Table1Row], path: str) -> str:
    with open(path, "w", newline="") as handle:
        write_result_analysis(rows, handle)
    return path
