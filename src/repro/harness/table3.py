"""Table 3 driver: comparison against the DEvA baseline (paper 8.7).

Methodology follows the paper: run DEvA on the train applications and take
every warning it marks harmful; then check (a) whether nAdroid detects the
same use/free pair -- judged against nAdroid's report with only the sound
IG/IA filters applied, matching DEvA's own definition of harmful -- and
(b) whether nAdroid's full filter chain prunes it.

Paper outcome: nAdroid detects 12 of DEvA's 13 harmful warnings (the
exception is the Browser Fragment case the prototype cannot model) and
filters 11 of the 12 as false, agreeing with only one.  Conversely DEvA
misses every cross-class and cross-thread true UAF nAdroid reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core import AnalysisConfig
from ..corpus import AppSpec, train_apps
from ..deva import DevaWarning, run_deva
from .render import render_table
from .table1 import analyze_corpus_app

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner import CorpusRunner


@dataclass
class Table3Row:
    app: str
    deva_warning: DevaWarning
    nadroid_detected: bool
    nadroid_filtered: bool
    filtered_by: str = ""

    @property
    def verdict(self) -> str:
        if not self.nadroid_detected:
            return "Not detected"
        if self.nadroid_filtered:
            return "Detected & Filtered"
        return "Detected & Reported"


def table3_app_data(spec: AppSpec,
                    config: Optional[AnalysisConfig] = None) -> Dict:
    """One app's DEvA-vs-nAdroid comparison data (serializable).

    ``rows`` carries every harmful DEvA warning with nAdroid's verdict;
    ``deva_missed`` counts the true UAFs nAdroid reports on this app that
    DEvA's harmful set misses (the reverse direction of Table 3).
    """
    result = analyze_corpus_app(spec, config)
    deva_warnings = run_deva(result.program.module)
    nadroid_by_key = {w.key: w for w in result.warnings}
    rows = []
    for dw in deva_warnings:
        if not dw.harmful:
            continue
        warning = nadroid_by_key.get(dw.key)
        detected = warning is not None
        filtered = detected and not warning.survives_all
        filtered_by = ""
        if detected and filtered:
            filtered_by = ",".join(sorted(warning.pruning_filters()))
        rows.append({
            "deva": {
                "field_class": dw.field_class,
                "field_name": dw.field_name,
                "use_method": dw.use_method,
                "free_method": dw.free_method,
                "use_uid": dw.use_uid,
                "free_uid": dw.free_uid,
                "harmful": dw.harmful,
            },
            "detected": detected,
            "filtered": filtered,
            "filtered_by": filtered_by,
        })
    deva_keys = {dw.key for dw in deva_warnings if dw.harmful}
    deva_missed = sum(
        1 for w in result.remaining()
        if w.fieldref.field_name in spec.true_uaf_fields
        and w.key not in deva_keys
    )
    return {"rows": rows, "deva_missed": deva_missed}


def _rows_from_data(spec: AppSpec, payload: Dict) -> List[Table3Row]:
    return [
        Table3Row(
            app=spec.name,
            deva_warning=DevaWarning(**record["deva"]),
            nadroid_detected=record["detected"],
            nadroid_filtered=record["filtered"],
            filtered_by=record["filtered_by"],
        )
        for record in payload["rows"]
    ]


def _train_data(config: Optional[AnalysisConfig] = None,
                runner: Optional["CorpusRunner"] = None):
    specs = train_apps()
    if runner is None:
        payloads = [table3_app_data(spec, config) for spec in specs]
    else:
        payloads, _ = runner.run(
            "table3", [spec.name for spec in specs], {"config": config}
        )
    # Drop faulted apps ({"error": ...} under --keep-going) so training
    # proceeds on the apps that did analyze.
    return [(spec, payload) for spec, payload in zip(specs, payloads)
            if "error" not in payload]


def run_table3(config: Optional[AnalysisConfig] = None,
               runner: Optional["CorpusRunner"] = None) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for spec, payload in _train_data(config, runner):
        rows.extend(_rows_from_data(spec, payload))
    return rows


def summarize_table3(rows: List[Table3Row]) -> Dict[str, int]:
    return {
        "deva_harmful": len(rows),
        "nadroid_detected": sum(1 for r in rows if r.nadroid_detected),
        "nadroid_filtered": sum(1 for r in rows if r.nadroid_filtered),
        "agreed_harmful": sum(
            1 for r in rows if r.nadroid_detected and not r.nadroid_filtered
        ),
        "not_detected": sum(1 for r in rows if not r.nadroid_detected),
    }


def nadroid_only_true_uafs(
        config: Optional[AnalysisConfig] = None,
        runner: Optional["CorpusRunner"] = None) -> Dict[str, int]:
    """True UAFs nAdroid reports that DEvA's harmful set misses entirely
    (the false-negative direction of the comparison)."""
    missed_by_deva: Dict[str, int] = {}
    for spec, payload in _train_data(config, runner):
        if spec.true_uaf_fields and payload["deva_missed"]:
            missed_by_deva[spec.name] = payload["deva_missed"]
    return missed_by_deva


def render_table3(rows: List[Table3Row],
                  config: Optional[AnalysisConfig] = None,
                  runner: Optional["CorpusRunner"] = None) -> str:
    body = [
        (
            r.app,
            r.deva_warning.field_name,
            r.deva_warning.use_method,
            r.deva_warning.free_method,
            r.verdict + (f" ({r.filtered_by})" if r.filtered_by else ""),
        )
        for r in rows
    ]
    table = render_table(
        ["APP", "Field", "Use Callback", "Free Callback", "nAdroid"], body
    )
    s = summarize_table3(rows)
    deva_misses = nadroid_only_true_uafs(config, runner)
    return (
        f"{table}\n\n"
        f"DEvA harmful: {s['deva_harmful']}; nAdroid detects "
        f"{s['nadroid_detected']}, filters {s['nadroid_filtered']}, agrees on "
        f"{s['agreed_harmful']}, cannot model {s['not_detected']} "
        f"(paper: 13 / 12 / 11 / 1 / 1)\n"
        f"True UAFs nAdroid reports that DEvA misses: "
        f"{sum(deva_misses.values())} across {sorted(deva_misses)}"
    )
