"""Stub model of the Android framework class library.

The corpus applications extend and call into a faithful-in-shape subset of
the Android API.  Each framework class is materialized as an IR
:class:`~repro.ir.ClassDef` whose methods have empty bodies; their real
semantics live in

* :mod:`repro.android.api` -- which calls register callbacks, post events,
  spawn threads or cancel pending work (consumed by the threadifier and
  the filters), and
* :mod:`repro.runtime.intrinsics` -- executable semantics for the dynamic
  validator.

The set is the transitive closure of what the 27 corpus apps and the
paper's examples (Figures 1, 3 and 4) need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import (
    ClassDef,
    Field,
    IRBuilder,
    Method,
    Module,
    Parameter,
    parse_type,
)

# (name, params as "Type name", return type, is_static)
_MethodSpec = Tuple[str, Sequence[str], str, bool]


def _m(name: str, params: Sequence[str] = (), ret: str = "void",
       static: bool = False) -> _MethodSpec:
    return (name, tuple(params), ret, static)


#: class name -> (super, interfaces, fields, methods)
FRAMEWORK_SPEC: Dict[str, dict] = {
    "Object": dict(methods=[_m("equals", ["Object other"], "boolean"),
                            _m("hashCode", [], "int"),
                            _m("toString", [], "String")]),
    # -- core app components -------------------------------------------------
    "Context": dict(super="Object", methods=[
        _m("bindService", ["Intent intent", "ServiceConnection conn", "int flags"],
           "boolean"),
        _m("unbindService", ["ServiceConnection conn"]),
        _m("registerReceiver", ["BroadcastReceiver receiver", "IntentFilter filter"]),
        _m("unregisterReceiver", ["BroadcastReceiver receiver"]),
        _m("startService", ["Intent intent"], "ComponentName"),
        _m("stopService", ["Intent intent"], "boolean"),
        _m("startActivity", ["Intent intent"]),
        _m("sendBroadcast", ["Intent intent"]),
        _m("sendOrderedBroadcast", ["Intent intent",
                                    "BroadcastReceiver resultReceiver"]),
        _m("getSystemService", ["String name"], "Object"),
        _m("getApplicationContext", [], "Context"),
    ]),
    "Activity": dict(super="Context", methods=[
        _m("onCreate", ["Bundle savedInstanceState"]),
        _m("onStart"), _m("onRestart"), _m("onResume"), _m("onPause"),
        _m("onStop"), _m("onDestroy"),
        _m("onActivityResult", ["int requestCode", "int resultCode", "Intent data"]),
        _m("onRetainNonConfigurationInstance", [], "Object"),
        _m("onSaveInstanceState", ["Bundle outState"]),
        _m("onRestoreInstanceState", ["Bundle savedInstanceState"]),
        _m("onNewIntent", ["Intent intent"]),
        _m("onLowMemory"),
        _m("onConfigurationChanged", ["Object newConfig"]),
        _m("onCreateContextMenu",
           ["ContextMenu menu", "View v", "ContextMenuInfo menuInfo"]),
        _m("onContextItemSelected", ["MenuItem item"], "boolean"),
        _m("onCreateOptionsMenu", ["Menu menu"], "boolean"),
        _m("onOptionsItemSelected", ["MenuItem item"], "boolean"),
        _m("onKeyDown", ["int keyCode", "KeyEvent event"], "boolean"),
        _m("onBackPressed"),
        _m("setContentView", ["int layout"]),
        _m("findViewById", ["int id"], "View"),
        _m("finish"),
        _m("isFinishing", [], "boolean"),
        _m("runOnUiThread", ["Runnable action"]),
        _m("getIntent", [], "Intent"),
        _m("setResult", ["int resultCode"]),
        _m("setTitle", ["String title"]),
        _m("invalidateOptionsMenu"),
        _m("getFragmentManager", [], "FragmentManager"),
    ]),
    "Service": dict(super="Context", methods=[
        _m("onCreate"), _m("onDestroy"),
        _m("onBind", ["Intent intent"], "IBinder"),
        _m("onUnbind", ["Intent intent"], "boolean"),
        _m("onRebind", ["Intent intent"]),
        _m("onStartCommand", ["Intent intent", "int flags", "int startId"], "int"),
        _m("onTaskRemoved", ["Intent rootIntent"]),
        _m("onTimeout", ["int startId"]),
        _m("startForeground", ["int id", "Notification notification"]),
        _m("stopForeground", ["boolean removeNotification"]),
        _m("onLowMemory"),
        _m("stopSelf"),
    ]),
    "BroadcastReceiver": dict(super="Object", methods=[
        _m("onReceive", ["Context context", "Intent intent"]),
    ]),
    "Application": dict(super="Context", methods=[
        _m("onCreate"), _m("onTerminate"), _m("onLowMemory"),
    ]),
    "Fragment": dict(super="Object", methods=[
        # Fragment callbacks are modeled by the threadifier only when the
        # fragment reaches the screen through a FragmentTransaction
        # ``add``/``replace``; fragments wired up any other way stay
        # invisible -- reproducing the paper's stated implementation
        # limitation (section 8.1, Table 3 Browser row).
        _m("onAttach", ["Activity activity"]),
        _m("onCreate", ["Bundle savedInstanceState"]),
        _m("onStart"), _m("onResume"), _m("onPause"), _m("onStop"),
        _m("onDestroy"), _m("onDetach"),
        _m("getActivity", [], "Activity"),
    ]),
    "FragmentManager": dict(super="Object", methods=[
        _m("beginTransaction", [], "FragmentTransaction"),
    ]),
    "FragmentTransaction": dict(super="Object", methods=[
        _m("add", ["int containerId", "Fragment fragment"], "FragmentTransaction"),
        _m("replace", ["int containerId", "Fragment fragment"],
           "FragmentTransaction"),
        _m("remove", ["Fragment fragment"], "FragmentTransaction"),
        _m("commit", [], "int"),
    ]),
    # -- event plumbing --------------------------------------------------------
    "Runnable": dict(interface=True, methods=[_m("run")]),
    "Thread": dict(super="Object", interfaces=["Runnable"], fields=["Runnable $task"],
                   methods=[
        _m("<init>", ["Runnable task"]),
        _m("run"), _m("start"), _m("join"), _m("interrupt"),
        _m("isAlive", [], "boolean"),
        _m("sleep", ["int millis"], "void", True),
        _m("currentThread", [], "Thread", True),
    ]),
    "Handler": dict(super="Object", methods=[
        _m("post", ["Runnable r"], "boolean"),
        _m("postDelayed", ["Runnable r", "int delayMillis"], "boolean"),
        _m("sendMessage", ["Message msg"], "boolean"),
        _m("sendEmptyMessage", ["int what"], "boolean"),
        _m("sendMessageDelayed", ["Message msg", "int delayMillis"], "boolean"),
        _m("handleMessage", ["Message msg"]),
        _m("removeCallbacks", ["Runnable r"]),
        _m("removeCallbacksAndMessages", ["Object token"]),
        _m("removeMessages", ["int what"]),
        _m("obtainMessage", ["int what"], "Message"),
        _m("getLooper", [], "Looper"),
    ]),
    "Looper": dict(super="Object", methods=[
        _m("getMainLooper", [], "Looper", True),
        _m("myLooper", [], "Looper", True),
        _m("quit"),
    ]),
    "Message": dict(super="Object", fields=["int what", "Object obj"], methods=[
        _m("obtain", [], "Message", True),
    ]),
    "AsyncTask": dict(super="Object", methods=[
        _m("execute", [], "AsyncTask"),
        _m("cancel", ["boolean mayInterrupt"], "boolean"),
        _m("isCancelled", [], "boolean"),
        _m("publishProgress"),
        _m("onPreExecute"),
        _m("doInBackground"),
        _m("onProgressUpdate"),
        _m("onPostExecute"),
        _m("onCancelled"),
    ]),
    "ExecutorService": dict(super="Object", methods=[
        _m("execute", ["Runnable command"]),
        _m("submit", ["Runnable task"], "Object"),
        _m("shutdown"),
    ]),
    "Executors": dict(super="Object", methods=[
        _m("newSingleThreadExecutor", [], "ExecutorService", True),
        _m("newFixedThreadPool", ["int nThreads"], "ExecutorService", True),
        _m("newCachedThreadPool", [], "ExecutorService", True),
    ]),
    "Timer": dict(super="Object", methods=[
        _m("schedule", ["TimerTask task", "int delay"]),
        _m("cancel"),
    ]),
    "TimerTask": dict(super="Object", interfaces=["Runnable"], methods=[
        _m("run"), _m("cancel", [], "boolean"),
    ]),
    # -- UI ----------------------------------------------------------------------
    "View": dict(super="Object", methods=[
        _m("setOnClickListener", ["OnClickListener l"]),
        _m("setOnLongClickListener", ["OnLongClickListener l"]),
        _m("setOnTouchListener", ["OnTouchListener l"]),
        _m("post", ["Runnable action"], "boolean"),
        _m("postDelayed", ["Runnable action", "int delayMillis"], "boolean"),
        _m("removeCallbacks", ["Runnable action"], "boolean"),
        _m("setVisibility", ["int visibility"]),
        _m("setEnabled", ["boolean enabled"]),
        _m("isEnabled", [], "boolean"),
        _m("findViewById", ["int id"], "View"),
        _m("invalidate"),
        _m("getContext", [], "Context"),
    ]),
    "TextView": dict(super="View", methods=[
        _m("setText", ["String text"]),
        _m("getText", [], "String"),
    ]),
    "Button": dict(super="TextView", methods=[]),
    "EditText": dict(super="TextView", methods=[]),
    "ListView": dict(super="View", methods=[
        _m("setAdapter", ["Adapter adapter"]),
        _m("setOnItemClickListener", ["OnItemClickListener l"]),
    ]),
    "WebView": dict(super="View", methods=[
        _m("loadUrl", ["String url"]),
        _m("stopLoading"),
        _m("destroy"),
    ]),
    "Adapter": dict(super="Object", methods=[
        _m("notifyDataSetChanged"),
        _m("getCount", [], "int"),
        _m("changeCursor", ["Cursor cursor"]),
    ]),
    "OnClickListener": dict(interface=True, methods=[_m("onClick", ["View v"])]),
    "OnLongClickListener": dict(interface=True, methods=[
        _m("onLongClick", ["View v"], "boolean"),
    ]),
    "OnTouchListener": dict(interface=True, methods=[
        _m("onTouch", ["View v", "MotionEvent event"], "boolean"),
    ]),
    "OnItemClickListener": dict(interface=True, methods=[
        _m("onItemClick", ["ListView parent", "View view", "int position"]),
    ]),
    "Menu": dict(super="Object", methods=[_m("add", ["String title"], "MenuItem")]),
    "ContextMenu": dict(super="Menu", methods=[
        _m("setHeaderTitle", ["String title"]),
    ]),
    "ContextMenuInfo": dict(super="Object", methods=[]),
    "MenuItem": dict(super="Object", methods=[
        _m("getItemId", [], "int"),
        _m("setEnabled", ["boolean enabled"], "MenuItem"),
    ]),
    "MotionEvent": dict(super="Object", methods=[_m("getAction", [], "int")]),
    "KeyEvent": dict(super="Object", methods=[_m("getKeyCode", [], "int")]),
    "Dialog": dict(super="Object", methods=[
        _m("show"), _m("dismiss"), _m("cancel"),
        _m("setTitle", ["String title"]),
        _m("isShowing", [], "boolean"),
    ]),
    "ProgressDialog": dict(super="Dialog", methods=[
        _m("setMessage", ["String message"]),
        _m("setProgress", ["int value"]),
    ]),
    "Toast": dict(super="Object", methods=[
        _m("makeText", ["Context context", "String text", "int duration"],
           "Toast", True),
        _m("show"),
    ]),
    # -- system services and data ------------------------------------------------
    "Intent": dict(super="Object", methods=[
        _m("<init>", ["String action"]),
        _m("putExtra", ["String name", "String value"], "Intent"),
        _m("getStringExtra", ["String name"], "String"),
        _m("getAction", [], "String"),
        _m("setAction", ["String action"], "Intent"),
    ]),
    "IntentFilter": dict(super="Object", methods=[
        _m("<init>", ["String action"]),
        _m("addAction", ["String action"]),
    ]),
    "Bundle": dict(super="Object", methods=[
        _m("putString", ["String key", "String value"]),
        _m("getString", ["String key"], "String"),
        _m("containsKey", ["String key"], "boolean"),
    ]),
    "ComponentName": dict(super="Object", methods=[
        _m("getClassName", [], "String"),
    ]),
    "IBinder": dict(interface=True, methods=[_m("isBinderAlive", [], "boolean")]),
    "Binder": dict(super="Object", interfaces=["IBinder"], methods=[]),
    "ServiceConnection": dict(interface=True, methods=[
        _m("onServiceConnected", ["ComponentName name", "IBinder service"]),
        _m("onServiceDisconnected", ["ComponentName name"]),
    ]),
    "LocationManager": dict(super="Object", methods=[
        _m("requestLocationUpdates",
           ["String provider", "int minTime", "int minDistance",
            "LocationListener listener"]),
        _m("removeUpdates", ["LocationListener listener"]),
        _m("getLastKnownLocation", ["String provider"], "Location"),
    ]),
    "LocationListener": dict(interface=True, methods=[
        _m("onLocationChanged", ["Location location"]),
        _m("onStatusChanged", ["String provider", "int status"]),
        _m("onProviderEnabled", ["String provider"]),
        _m("onProviderDisabled", ["String provider"]),
    ]),
    "Location": dict(super="Object", methods=[
        _m("getProvider", [], "String"),
        _m("getTime", [], "long"),
    ]),
    "SensorManager": dict(super="Object", methods=[
        _m("registerListener",
           ["SensorEventListener listener", "Sensor sensor", "int rate"], "boolean"),
        _m("unregisterListener", ["SensorEventListener listener"]),
        _m("getDefaultSensor", ["int type"], "Sensor"),
    ]),
    "Sensor": dict(super="Object", methods=[]),
    "SensorEventListener": dict(interface=True, methods=[
        _m("onSensorChanged", ["SensorEvent event"]),
        _m("onAccuracyChanged", ["Sensor sensor", "int accuracy"]),
    ]),
    "SensorEvent": dict(super="Object", methods=[]),
    "MediaPlayer": dict(super="Object", methods=[
        _m("setDataSource", ["String path"]),
        _m("prepare"), _m("start"), _m("pause"), _m("stop"),
        _m("release"), _m("reset"),
        _m("isPlaying", [], "boolean"),
        _m("seekTo", ["int msec"]),
        _m("setOnCompletionListener", ["OnCompletionListener listener"]),
    ]),
    "OnCompletionListener": dict(interface=True, methods=[
        _m("onCompletion", ["MediaPlayer mp"]),
    ]),
    "Camera": dict(super="Object", methods=[
        _m("open", [], "Camera", True),
        _m("release"), _m("startPreview"), _m("stopPreview"),
        _m("takePicture"),
    ]),
    "SQLiteDatabase": dict(super="Object", methods=[
        _m("execSQL", ["String sql"]),
        _m("query", ["String table"], "Cursor"),
        _m("insert", ["String table", "String values"], "long"),
        _m("delete", ["String table", "String where"], "int"),
        _m("close"),
        _m("isOpen", [], "boolean"),
        _m("beginTransaction"), _m("endTransaction"),
    ]),
    "SQLiteOpenHelper": dict(super="Object", methods=[
        _m("getWritableDatabase", [], "SQLiteDatabase"),
        _m("getReadableDatabase", [], "SQLiteDatabase"),
        _m("close"),
    ]),
    "Cursor": dict(super="Object", methods=[
        _m("moveToFirst", [], "boolean"),
        _m("moveToNext", [], "boolean"),
        _m("getString", ["int column"], "String"),
        _m("getInt", ["int column"], "int"),
        _m("getCount", [], "int"),
        _m("close"),
        _m("isClosed", [], "boolean"),
        _m("requery", [], "boolean"),
    ]),
    "SharedPreferences": dict(super="Object", methods=[
        _m("getString", ["String key", "String def"], "String"),
        _m("getBoolean", ["String key", "boolean def"], "boolean"),
        _m("edit", [], "SharedPreferencesEditor"),
        _m("registerOnSharedPreferenceChangeListener",
           ["OnSharedPreferenceChangeListener listener"]),
        _m("unregisterOnSharedPreferenceChangeListener",
           ["OnSharedPreferenceChangeListener listener"]),
    ]),
    "SharedPreferencesEditor": dict(super="Object", methods=[
        _m("putString", ["String key", "String value"], "SharedPreferencesEditor"),
        _m("commit", [], "boolean"),
        _m("apply"),
    ]),
    "OnSharedPreferenceChangeListener": dict(interface=True, methods=[
        _m("onSharedPreferenceChanged", ["SharedPreferences prefs", "String key"]),
    ]),
    # ContentObserver is intentionally NOT modeled by the threadifier or
    # the API table: it reproduces the paper's "unanalyzed code" false-
    # negative source (section 8.6, the IBinder-through-the-framework case
    # in Mms) -- the runtime delivers onChange, the static analysis cannot
    # see it.
    "ContentResolver": dict(super="Object", methods=[
        _m("registerContentObserver", ["String uri", "ContentObserver observer"]),
        _m("unregisterContentObserver", ["ContentObserver observer"]),
        _m("query", ["String uri"], "Cursor"),
    ]),
    "ContentObserver": dict(super="Object", methods=[
        _m("onChange", ["boolean selfChange"]),
    ]),
    "PowerManager": dict(super="Object", methods=[
        _m("newWakeLock", ["int flags", "String tag"], "WakeLock"),
    ]),
    "WakeLock": dict(super="Object", methods=[
        _m("acquire"), _m("release"),
        _m("isHeld", [], "boolean"),
    ]),
    "NotificationManager": dict(super="Object", methods=[
        _m("notify", ["int id", "Notification notification"]),
        _m("cancel", ["int id"]),
    ]),
    "Notification": dict(super="Object", methods=[]),
    "Log": dict(super="Object", methods=[
        _m("d", ["String tag", "String msg"], "int", True),
        _m("i", ["String tag", "String msg"], "int", True),
        _m("w", ["String tag", "String msg"], "int", True),
        _m("e", ["String tag", "String msg"], "int", True),
    ]),
    "System": dict(super="Object", methods=[
        _m("currentTimeMillis", [], "long", True),
        _m("gc", [], "void", True),
    ]),
    "StringUtils": dict(super="Object", methods=[
        _m("isEmpty", ["String s"], "boolean", True),
        _m("equals", ["String a", "String b"], "boolean", True),
        _m("valueOf", ["int value"], "String", True),
    ]),
}


#: Names of all framework classes (used by the verifier and the threadifier
#: to distinguish application code from library code).
FRAMEWORK_CLASS_NAMES: Set[str] = set(FRAMEWORK_SPEC)


#: Concrete stand-in used when a framework method returns an interface type.
_INTERFACE_DEFAULTS = {"IBinder": "Binder"}


def concrete_return_class(type_name: str) -> Optional[str]:
    """The framework class a stub should allocate for its return value.

    Framework methods that hand the application environment objects
    (``findViewById``, ``Executors.newFixedThreadPool``, ``getWritable-
    Database``, ...) must return *something* for the points-to analysis to
    dispatch later calls on; the stub allocates a fresh instance of the
    declared (or a default concrete) class.
    """
    name = _INTERFACE_DEFAULTS.get(type_name, type_name)
    spec = FRAMEWORK_SPEC.get(name)
    if spec is None or spec.get("interface", False):
        return None
    return name


def build_framework_classes() -> List[ClassDef]:
    """Materialize the framework spec as IR class definitions.

    Non-void reference-returning methods get ``return new T()`` bodies so
    environment-provided objects exist in the heap abstraction; everything
    else gets an empty body.
    """
    classes: List[ClassDef] = []
    for name, spec in FRAMEWORK_SPEC.items():
        cls = ClassDef(
            name,
            super_name=spec.get("super"),
            interfaces=list(spec.get("interfaces", [])),
            is_interface=spec.get("interface", False),
        )
        for field_spec in spec.get("fields", []):
            type_name, field_name = field_spec.rsplit(" ", 1)
            cls.add_field(Field(field_name, parse_type(type_name)))
        for mname, params, ret, static in spec.get("methods", []):
            method = Method(
                name,
                mname,
                params=[
                    Parameter(p.rsplit(" ", 1)[1], parse_type(p.rsplit(" ", 1)[0]))
                    for p in params
                ],
                return_type=parse_type(ret),
                is_static=static,
            )
            if not cls.is_interface:
                builder = IRBuilder(method)
                ret_type = method.return_type
                if ret_type.is_reference():
                    ret_class = concrete_return_class(ret_type.name)
                    if ret_class is not None:
                        obj = builder.new(ret_class)
                        builder.ret(obj)
                builder.finish()
            cls.add_method(method)
        classes.append(cls)
    return classes


def install_framework(module: Module) -> Module:
    """Add the framework stubs to a module (before lowering app sources)."""
    for cls in build_framework_classes():
        module.add_class(cls)
    return module


def is_framework_class(name: str) -> bool:
    return name in FRAMEWORK_CLASS_NAMES
