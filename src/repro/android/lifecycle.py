"""The Activity lifecycle automaton and the sound MHB relation tables.

The lifecycle automaton (paper section 2.1 / 6.1.1) drives two consumers:

* the **MHB-Lifecycle filter**: statically sound must-happens-before edges
  (``onCreate`` precedes everything; everything precedes ``onDestroy``;
  *no* MHB among onResume/onPause/... because of back edges), and
* the **runtime scheduler**, which only fires lifecycle callbacks along
  legal automaton paths when exploring schedules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

#: Legal lifecycle transitions of an Activity instance, including the back
#: edges (onPause -> onResume, onStop -> onRestart -> onStart) that make
#: most pairwise orders statically circular.
ACTIVITY_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "<launch>": ("onCreate",),
    "onCreate": ("onStart",),
    "onStart": ("onResume",),
    "onRestart": ("onStart",),
    "onResume": ("onPause",),
    "onPause": ("onResume", "onStop"),
    "onStop": ("onRestart", "onDestroy"),
    "onDestroy": (),
}

#: States in which UI and system callbacks may fire (activity is at least
#: started).  Used by the runtime scheduler.
ACTIVE_STATES: FrozenSet[str] = frozenset({"onStart", "onResume", "onPause"})

#: Service lifecycle including the foreground-service callbacks:
#: ``onTaskRemoved`` (the user swiped the task away) and ``onTimeout``
#: (the short-service time limit expired) both fire after the service has
#: been started and before ``onDestroy`` -- but in no fixed order relative
#: to each other, which is exactly the ordering gap the generator's
#: foreground-service patterns exercise.
SERVICE_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "<launch>": ("onCreate",),
    "onCreate": ("onStartCommand", "onBind"),
    "onStartCommand": ("onStartCommand", "onTaskRemoved", "onTimeout",
                       "onDestroy"),
    "onTaskRemoved": ("onDestroy",),
    "onTimeout": ("onDestroy",),
    "onBind": ("onUnbind",),
    "onUnbind": ("onRebind", "onDestroy"),
    "onRebind": ("onUnbind",),
    "onDestroy": (),
}

#: Fragment transaction lifecycle (FragmentTransaction.add/replace ...
#: commit): attach/create run once up front, destroy/detach once at the
#: end, and the started/resumed states cycle -- mirroring the Activity
#: automaton one level down.  Consumed by the MHB-Fragment filter via
#: :data:`FRAGMENT_MHB`.
FRAGMENT_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "<launch>": ("onAttach",),
    "onAttach": ("onCreate",),
    "onCreate": ("onStart",),
    "onStart": ("onResume",),
    "onResume": ("onPause",),
    "onPause": ("onResume", "onStop"),
    "onStop": ("onStart", "onDestroy"),
    "onDestroy": ("onDetach",),
    "onDetach": (),
}


def _reachable(transitions: Dict[str, Tuple[str, ...]], start: str) -> Set[str]:
    seen: Set[str] = set()
    work: List[str] = [start]
    while work:
        state = work.pop()
        for succ in transitions.get(state, ()):
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen


def _in_cycle(transitions: Dict[str, Tuple[str, ...]], state: str) -> bool:
    return state in _reachable(transitions, state)


def sound_mhb_pairs(transitions: Dict[str, Tuple[str, ...]]) -> Set[Tuple[str, str]]:
    """Statically sound must-happens-before pairs ``(a, b)`` (a before b).

    ``a`` MHB ``b`` holds iff ``b`` is reachable from ``a`` but ``a`` is not
    reachable from ``b`` *and neither participates in a cycle through the
    other* -- i.e. the relation survives every back edge.  For the Activity
    automaton this yields exactly the paper's claim: ``onCreate`` precedes
    everything, everything precedes ``onDestroy``, and no MHB exists among
    the resumable states.
    """
    states = [s for s in transitions if s != "<launch>"]
    reach = {s: _reachable(transitions, s) for s in states}
    pairs: Set[Tuple[str, str]] = set()
    for a in states:
        for b in states:
            if a == b:
                continue
            if b in reach[a] and a not in reach[b]:
                # a cannot re-run after b has run: a must not be reachable
                # from any state on a cycle containing b... the reach check
                # above already encodes this for our DAG-with-back-edges
                # automata because re-running `a` would require b -> a.
                pairs.add((a, b))
    return pairs


#: Sound MHB pairs among Activity lifecycle callbacks.
ACTIVITY_MHB: FrozenSet[Tuple[str, str]] = frozenset(
    sound_mhb_pairs(ACTIVITY_TRANSITIONS)
)

#: Sound MHB pairs among Service lifecycle callbacks.
SERVICE_MHB: FrozenSet[Tuple[str, str]] = frozenset(
    sound_mhb_pairs(SERVICE_TRANSITIONS)
)

#: Sound MHB pairs among Fragment lifecycle callbacks (MHB-Fragment).
FRAGMENT_MHB: FrozenSet[Tuple[str, str]] = frozenset(
    sound_mhb_pairs(FRAGMENT_TRANSITIONS)
)


def activity_mhb(first: str, second: str, ui_callbacks: FrozenSet[str]) -> bool:
    """Does ``first`` must-happen-before ``second`` for one Activity?

    Extends the automaton pairs with the paper's rule for non-lifecycle
    callbacks: every UI/system callback happens after ``onCreate`` and
    before ``onDestroy``.
    """
    if (first, second) in ACTIVITY_MHB:
        return True
    if first == "onCreate" and second in ui_callbacks:
        return True
    if second == "onDestroy" and first in ui_callbacks:
        return True
    return False


#: AsyncTask MHB edges (section 6.1.1, MHB-AsyncTask).
ASYNCTASK_MHB: FrozenSet[Tuple[str, str]] = frozenset({
    ("onPreExecute", "doInBackground"),
    ("onPreExecute", "onProgressUpdate"),
    ("onPreExecute", "onPostExecute"),
    ("doInBackground", "onPostExecute"),
    ("onProgressUpdate", "onPostExecute"),
})

#: Service-connection MHB (section 6.1.1, MHB-Service).
SERVICE_CONNECTION_MHB: FrozenSet[Tuple[str, str]] = frozenset({
    ("onServiceConnected", "onServiceDisconnected"),
})

#: Ordered-broadcast MHB: every dynamically registered receiver handles an
#: ordered broadcast *before* the result receiver passed to
#: ``sendOrderedBroadcast`` runs (Android delivers the result receiver
#: last).  Encoded as a category-level contract: a registered receiver's
#: ``onReceive`` must-happen-before a result receiver's ``onReceive``.
ORDERED_BROADCAST_MHB: FrozenSet[Tuple[str, str]] = frozenset({
    ("onReceive", "onReceive"),
})
