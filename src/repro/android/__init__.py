"""Android framework model: stub classes, API semantics, callback catalog,
lifecycle automaton and manifest handling."""

from .api import API_TABLE, ApiKind, ApiSpec, CANCEL_KINDS, POSTING_KINDS, lookup_api
from .callbacks import (
    ACTIVITY_ENTRY_CALLBACKS,
    ACTIVITY_LIFECYCLE,
    APPLICATION_LIFECYCLE,
    CallbackCategory,
    categorize_entry_callback,
    FRAGMENT_LIFECYCLE,
    PC_CATEGORY_BY_CALLBACK,
    SERVICE_LIFECYCLE,
    SYSTEM_CALLBACKS,
    UI_CALLBACKS,
)
from .framework import (
    build_framework_classes,
    FRAMEWORK_CLASS_NAMES,
    FRAMEWORK_SPEC,
    install_framework,
    is_framework_class,
)
from .lifecycle import (
    ACTIVE_STATES,
    ACTIVITY_MHB,
    activity_mhb,
    ACTIVITY_TRANSITIONS,
    ASYNCTASK_MHB,
    FRAGMENT_MHB,
    FRAGMENT_TRANSITIONS,
    ORDERED_BROADCAST_MHB,
    SERVICE_CONNECTION_MHB,
    SERVICE_MHB,
    SERVICE_TRANSITIONS,
    sound_mhb_pairs,
)
from .manifest import (
    ComponentDecl,
    component_kind_of,
    infer_manifest,
    Manifest,
)

__all__ = [
    "ACTIVE_STATES", "ACTIVITY_ENTRY_CALLBACKS", "ACTIVITY_LIFECYCLE",
    "ACTIVITY_MHB", "activity_mhb", "ACTIVITY_TRANSITIONS", "API_TABLE",
    "ApiKind", "ApiSpec", "APPLICATION_LIFECYCLE", "ASYNCTASK_MHB",
    "build_framework_classes", "CallbackCategory", "CANCEL_KINDS",
    "categorize_entry_callback", "component_kind_of", "ComponentDecl",
    "FRAGMENT_LIFECYCLE", "FRAGMENT_MHB", "FRAGMENT_TRANSITIONS",
    "FRAMEWORK_CLASS_NAMES", "FRAMEWORK_SPEC", "infer_manifest",
    "install_framework", "is_framework_class", "lookup_api", "Manifest",
    "ORDERED_BROADCAST_MHB",
    "PC_CATEGORY_BY_CALLBACK", "POSTING_KINDS", "SERVICE_CONNECTION_MHB",
    "SERVICE_LIFECYCLE", "SERVICE_MHB", "SERVICE_TRANSITIONS",
    "sound_mhb_pairs", "SYSTEM_CALLBACKS", "UI_CALLBACKS",
]
