"""Application manifest model.

The manifest names the app's components and whether each is reachable
through an (explicit or implicit) intent.  Unreachable components matter
for the evaluation: warnings whose use or free lives in an unreachable
component are one of the paper's false-positive categories ("Not
Reachable", section 8.5).

A manifest can be given explicitly by a corpus app or inferred from the
class table (every subclass of Activity / Service / BroadcastReceiver /
Application is a reachable component).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..ir import Module
from .framework import is_framework_class

COMPONENT_KINDS = ("activity", "service", "receiver", "application")

_SUPER_TO_KIND = {
    "Activity": "activity",
    "Service": "service",
    "BroadcastReceiver": "receiver",
    "Application": "application",
}


@dataclass
class ComponentDecl:
    """One declared component."""

    name: str
    kind: str
    reachable: bool = True
    main: bool = False

    def __post_init__(self) -> None:
        if self.kind not in COMPONENT_KINDS:
            raise ValueError(f"unknown component kind {self.kind!r}")


@dataclass
class Manifest:
    """All components of one application."""

    package: str = "app"
    components: Dict[str, ComponentDecl] = field(default_factory=dict)

    def add(self, decl: ComponentDecl) -> ComponentDecl:
        self.components[decl.name] = decl
        return decl

    def component(self, class_name: str) -> Optional[ComponentDecl]:
        return self.components.get(class_name)

    def is_reachable(self, class_name: str) -> bool:
        decl = self.components.get(class_name)
        return decl.reachable if decl is not None else True

    def iter_kind(self, kind: str) -> Iterator[ComponentDecl]:
        return (c for c in self.components.values() if c.kind == kind)

    def activities(self) -> Iterator[ComponentDecl]:
        return self.iter_kind("activity")

    def services(self) -> Iterator[ComponentDecl]:
        return self.iter_kind("service")

    def receivers(self) -> Iterator[ComponentDecl]:
        return self.iter_kind("receiver")


def component_kind_of(module: Module, class_name: str) -> Optional[str]:
    """Which component kind (if any) a class is, via its supertype chain."""
    for sup in module.supertypes(class_name):
        if sup in _SUPER_TO_KIND:
            return _SUPER_TO_KIND[sup]
    return _SUPER_TO_KIND.get(class_name)


def infer_manifest(module: Module, package: str = "app") -> Manifest:
    """Build a manifest by scanning the class table for component classes.

    All inferred components are reachable; corpus apps that want an
    unreachable component (to exercise the Not-Reachable FP category)
    supply an explicit manifest instead.
    """
    manifest = Manifest(package=package)
    first_activity = True
    for name in module.classes:
        if is_framework_class(name):
            continue
        kind = component_kind_of(module, name)
        if kind is not None:
            manifest.add(
                ComponentDecl(name, kind, reachable=True,
                              main=(kind == "activity" and first_activity))
            )
            if kind == "activity":
                first_activity = False
    return manifest
