"""Semantic table of concurrency-relevant Android APIs.

The threadifier, the filters and the dynamic interpreter all need to know
what a framework call *means*: does it post a callback, spawn a thread,
register a listener, or cancel pending work?  This module is the single
source of truth, mirroring the roles of FlowDroid's listener-callback list
and nAdroid's modified dummy-main generator (paper sections 4 and 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Optional, Tuple

from ..ir import Module


class ApiKind(Enum):
    """What a framework call does, from the concurrency model's viewpoint."""

    POST_RUNNABLE = auto()       #: enqueue arg Runnable.run on the caller's looper
    SEND_MESSAGE = auto()        #: enqueue receiver Handler.handleMessage
    SPAWN_THREAD = auto()        #: start a native thread
    ASYNCTASK_EXECUTE = auto()   #: start an AsyncTask (doInBackground + PCs)
    ASYNCTASK_PUBLISH = auto()   #: publishProgress -> onProgressUpdate PC
    BIND_SERVICE = auto()        #: register onServiceConnected/Disconnected PCs
    REGISTER_RECEIVER = auto()   #: register onReceive PC
    REGISTER_FRAGMENT = auto()   #: FragmentTransaction.add/replace -> fragment PCs
    SEND_ORDERED_BROADCAST = auto()  #: post result receiver's onReceive PC
    REGISTER_LISTENER = auto()   #: register UI/system entry callbacks
    CANCEL_FINISH = auto()       #: Activity.finish -- no further UI callbacks
    CANCEL_UNBIND = auto()       #: unbindService
    CANCEL_UNREGISTER = auto()   #: unregisterReceiver / removeUpdates / …
    CANCEL_REMOVE_POSTS = auto() #: Handler.removeCallbacks*/removeMessages
    CANCEL_ASYNCTASK = auto()    #: AsyncTask.cancel


@dataclass(frozen=True)
class ApiSpec:
    """One concurrency-relevant framework method.

    ``callback_arg`` is the argument index carrying the callback object
    (``None`` means the receiver itself, e.g. ``Thread.start``);
    ``callbacks`` names the methods that the framework will subsequently
    invoke on that object.
    """

    kind: ApiKind
    callback_arg: Optional[int] = None
    callbacks: Tuple[str, ...] = ()


#: (declaring class, method name) -> spec.  Lookups walk the supertype chain
#: so calls through subclasses (e.g. a user Activity) resolve here.
API_TABLE: Dict[Tuple[str, str], ApiSpec] = {
    # -- posting to a looper ---------------------------------------------------
    ("Handler", "post"): ApiSpec(ApiKind.POST_RUNNABLE, 0, ("run",)),
    ("Handler", "postDelayed"): ApiSpec(ApiKind.POST_RUNNABLE, 0, ("run",)),
    ("View", "post"): ApiSpec(ApiKind.POST_RUNNABLE, 0, ("run",)),
    ("View", "postDelayed"): ApiSpec(ApiKind.POST_RUNNABLE, 0, ("run",)),
    ("Activity", "runOnUiThread"): ApiSpec(ApiKind.POST_RUNNABLE, 0, ("run",)),
    ("Handler", "sendMessage"): ApiSpec(ApiKind.SEND_MESSAGE, None, ("handleMessage",)),
    ("Handler", "sendMessageDelayed"): ApiSpec(
        ApiKind.SEND_MESSAGE, None, ("handleMessage",)),
    ("Handler", "sendEmptyMessage"): ApiSpec(
        ApiKind.SEND_MESSAGE, None, ("handleMessage",)),
    # -- threads ---------------------------------------------------------------
    ("Thread", "start"): ApiSpec(ApiKind.SPAWN_THREAD, None, ("run",)),
    ("ExecutorService", "execute"): ApiSpec(ApiKind.SPAWN_THREAD, 0, ("run",)),
    ("ExecutorService", "submit"): ApiSpec(ApiKind.SPAWN_THREAD, 0, ("run",)),
    ("Timer", "schedule"): ApiSpec(ApiKind.SPAWN_THREAD, 0, ("run",)),
    # -- AsyncTask ----------------------------------------------------------------
    ("AsyncTask", "execute"): ApiSpec(
        ApiKind.ASYNCTASK_EXECUTE, None,
        ("onPreExecute", "doInBackground", "onProgressUpdate", "onPostExecute"),
    ),
    ("AsyncTask", "publishProgress"): ApiSpec(
        ApiKind.ASYNCTASK_PUBLISH, None, ("onProgressUpdate",)),
    # -- services and receivers ------------------------------------------------------
    ("Context", "bindService"): ApiSpec(
        ApiKind.BIND_SERVICE, 1, ("onServiceConnected", "onServiceDisconnected")),
    ("Context", "registerReceiver"): ApiSpec(
        ApiKind.REGISTER_RECEIVER, 0, ("onReceive",)),
    ("Context", "sendOrderedBroadcast"): ApiSpec(
        ApiKind.SEND_ORDERED_BROADCAST, 1, ("onReceive",)),
    # -- fragments (transaction commit drives the fragment lifecycle) ------------------
    ("FragmentTransaction", "add"): ApiSpec(
        ApiKind.REGISTER_FRAGMENT, 1,
        ("onAttach", "onCreate", "onStart", "onResume",
         "onPause", "onStop", "onDestroy", "onDetach"),
    ),
    ("FragmentTransaction", "replace"): ApiSpec(
        ApiKind.REGISTER_FRAGMENT, 1,
        ("onAttach", "onCreate", "onStart", "onResume",
         "onPause", "onStop", "onDestroy", "onDetach"),
    ),
    # -- imperative listener registration (entry callbacks, Fig. 3(b)) -----------------
    ("View", "setOnClickListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onClick",)),
    ("View", "setOnLongClickListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onLongClick",)),
    ("View", "setOnTouchListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onTouch",)),
    ("ListView", "setOnItemClickListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onItemClick",)),
    ("LocationManager", "requestLocationUpdates"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 3,
        ("onLocationChanged", "onStatusChanged",
         "onProviderEnabled", "onProviderDisabled"),
    ),
    ("SensorManager", "registerListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onSensorChanged", "onAccuracyChanged")),
    ("MediaPlayer", "setOnCompletionListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onCompletion",)),
    ("SharedPreferences", "registerOnSharedPreferenceChangeListener"): ApiSpec(
        ApiKind.REGISTER_LISTENER, 0, ("onSharedPreferenceChanged",)),
    # -- cancellation (Cancel-Happens-Before sources, section 6.2.1) -------------------
    ("Activity", "finish"): ApiSpec(ApiKind.CANCEL_FINISH),
    ("Context", "unbindService"): ApiSpec(ApiKind.CANCEL_UNBIND, 0),
    ("Context", "unregisterReceiver"): ApiSpec(ApiKind.CANCEL_UNREGISTER, 0),
    ("LocationManager", "removeUpdates"): ApiSpec(ApiKind.CANCEL_UNREGISTER, 0),
    ("SensorManager", "unregisterListener"): ApiSpec(ApiKind.CANCEL_UNREGISTER, 0),
    ("SharedPreferences", "unregisterOnSharedPreferenceChangeListener"): ApiSpec(
        ApiKind.CANCEL_UNREGISTER, 0),
    ("Handler", "removeCallbacks"): ApiSpec(ApiKind.CANCEL_REMOVE_POSTS, 0),
    ("Handler", "removeCallbacksAndMessages"): ApiSpec(ApiKind.CANCEL_REMOVE_POSTS),
    ("Handler", "removeMessages"): ApiSpec(ApiKind.CANCEL_REMOVE_POSTS),
    ("View", "removeCallbacks"): ApiSpec(ApiKind.CANCEL_REMOVE_POSTS, 0),
    ("AsyncTask", "cancel"): ApiSpec(ApiKind.CANCEL_ASYNCTASK),
    ("Timer", "cancel"): ApiSpec(ApiKind.CANCEL_REMOVE_POSTS),
}

CANCEL_KINDS = {
    ApiKind.CANCEL_FINISH,
    ApiKind.CANCEL_UNBIND,
    ApiKind.CANCEL_UNREGISTER,
    ApiKind.CANCEL_REMOVE_POSTS,
    ApiKind.CANCEL_ASYNCTASK,
}

POSTING_KINDS = {
    ApiKind.POST_RUNNABLE,
    ApiKind.SEND_MESSAGE,
    ApiKind.ASYNCTASK_PUBLISH,
}


def lookup_api(
    module: Module, class_name: str, method_name: str
) -> Optional[ApiSpec]:
    """Resolve a call site ``class_name.method_name`` against the API table.

    The declared class of a call site is usually an application subclass
    (``MyActivity.runOnUiThread``); the lookup walks the supertype chain of
    the module's class table until a table entry matches.
    """
    for name in [class_name, *sorted(module.supertypes(class_name))]:
        spec = API_TABLE.get((name, method_name))
        if spec is not None:
            return spec
    return None
