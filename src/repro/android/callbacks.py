"""Catalog of Android entry-callback names and categories.

This is the analogue of the FlowDroid listener-callback list the paper uses
to identify entry points (section 8.1).  A method of an application class
is an *entry callback* (EC) when it overrides one of these framework
callbacks; posted callbacks (PCs) are discovered from registration calls
via :mod:`repro.android.api`.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Dict, FrozenSet


class CallbackCategory(Enum):
    """Reporting categories used by section 7 of the paper."""

    LIFECYCLE = auto()       #: Activity/Service/Application lifecycle (EC)
    UI = auto()              #: user-interaction callbacks (EC)
    SYSTEM = auto()          #: sensor / system event callbacks (EC)
    POSTED_RUNNABLE = auto() #: Runnable.run posted to a looper (PC)
    HANDLER_MESSAGE = auto() #: Handler.handleMessage (PC)
    SERVICE_CONN = auto()    #: onServiceConnected/Disconnected (PC)
    RECEIVER = auto()        #: onReceive from registerReceiver (PC)
    ASYNC_PRE = auto()       #: AsyncTask.onPreExecute (PC)
    ASYNC_PROGRESS = auto()  #: AsyncTask.onProgressUpdate (PC)
    ASYNC_POST = auto()      #: AsyncTask.onPostExecute (PC)
    FRAGMENT = auto()        #: Fragment lifecycle via a committed transaction (PC)
    RECEIVER_RESULT = auto() #: result receiver of sendOrderedBroadcast (PC)

    def is_entry(self) -> bool:
        return self in (
            CallbackCategory.LIFECYCLE,
            CallbackCategory.UI,
            CallbackCategory.SYSTEM,
        )


ACTIVITY_LIFECYCLE: FrozenSet[str] = frozenset({
    "onCreate", "onStart", "onRestart", "onResume",
    "onPause", "onStop", "onDestroy",
})

SERVICE_LIFECYCLE: FrozenSet[str] = frozenset({
    "onCreate", "onStartCommand", "onBind", "onUnbind", "onRebind",
    "onTaskRemoved", "onTimeout", "onDestroy",
})

#: Fragment lifecycle callbacks delivered after a committed transaction.
FRAGMENT_LIFECYCLE: FrozenSet[str] = frozenset({
    "onAttach", "onCreate", "onStart", "onResume",
    "onPause", "onStop", "onDestroy", "onDetach",
})

APPLICATION_LIFECYCLE: FrozenSet[str] = frozenset({
    "onCreate", "onTerminate", "onLowMemory",
})

#: UI-interaction entry callbacks declared on Activity (menu/key handling)
#: or registered through setOn*Listener APIs.
UI_CALLBACKS: FrozenSet[str] = frozenset({
    "onClick", "onLongClick", "onTouch", "onItemClick",
    "onCreateContextMenu", "onContextItemSelected",
    "onCreateOptionsMenu", "onOptionsItemSelected",
    "onKeyDown", "onBackPressed", "onMenuItemClick",
})

#: System/sensor entry callbacks.
SYSTEM_CALLBACKS: FrozenSet[str] = frozenset({
    "onLocationChanged", "onStatusChanged",
    "onProviderEnabled", "onProviderDisabled",
    "onSensorChanged", "onAccuracyChanged",
    "onActivityResult", "onRetainNonConfigurationInstance",
    "onSaveInstanceState", "onRestoreInstanceState",
    "onNewIntent", "onConfigurationChanged", "onLowMemory",
    "onCompletion", "onSharedPreferenceChanged",
})

#: Activity methods that are entry callbacks when overridden by an app class.
ACTIVITY_ENTRY_CALLBACKS: FrozenSet[str] = (
    ACTIVITY_LIFECYCLE
    | UI_CALLBACKS
    | SYSTEM_CALLBACKS
)

#: Categorize a PC by the API that posts it.
PC_CATEGORY_BY_CALLBACK: Dict[str, CallbackCategory] = {
    "run": CallbackCategory.POSTED_RUNNABLE,
    "handleMessage": CallbackCategory.HANDLER_MESSAGE,
    "onServiceConnected": CallbackCategory.SERVICE_CONN,
    "onServiceDisconnected": CallbackCategory.SERVICE_CONN,
    "onReceive": CallbackCategory.RECEIVER,
    "onPreExecute": CallbackCategory.ASYNC_PRE,
    "onProgressUpdate": CallbackCategory.ASYNC_PROGRESS,
    "onPostExecute": CallbackCategory.ASYNC_POST,
}


def categorize_entry_callback(method_name: str, component_kind: str) -> CallbackCategory:
    """Category of an entry callback given its name and owning component kind."""
    if component_kind == "activity" and method_name in ACTIVITY_LIFECYCLE:
        return CallbackCategory.LIFECYCLE
    if component_kind == "service" and method_name in SERVICE_LIFECYCLE:
        return CallbackCategory.LIFECYCLE
    if component_kind == "application" and method_name in APPLICATION_LIFECYCLE:
        return CallbackCategory.LIFECYCLE
    if method_name in UI_CALLBACKS:
        return CallbackCategory.UI
    return CallbackCategory.SYSTEM
