"""The nAdroid pipeline (paper Figure 2).

``analyze_app`` runs the full chain on MiniDroid sources or a pre-lowered
module:

    lowering (MiniDroid -> IR)
      -> modeling (threadification, section 4)
      -> potential ordering-violation detection (section 5)
      -> filtering (section 6)
      -> programmer-facing report (section 7)

Every stage runs inside a :mod:`repro.obs` span; ``AnalysisResult.timings``
is the backward-compatible flat view of those spans for the section 8.8
benchmark, and the funnel counters (candidate pairs -> potential ->
after_sound -> remaining) land on whatever recorder the caller installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from . import obs
from .analysis.lockset import LocksetAnalysis
from .analysis.pointsto import PointsToResult, run_pointsto
from .android.manifest import Manifest
from .filters.base import FilterContext, FilterOptions
from .filters.pipeline import FilterPipeline, FilterReport
from .filters.sound import SOUND_FILTERS
from .filters.unsound import UNSOUND_FILTERS
from .ir import Module
from .lowering import lower_sources
from .obs import Span
from .resilience import checkpoint
from .race.detector import detect_uaf_warnings, DetectorOptions
from .race.warnings import PAIR_TYPES, UafWarning
from .threadify.transform import threadify, ThreadifiedProgram


@dataclass
class AnalysisConfig:
    """End-to-end configuration; defaults follow the paper."""

    k: int = 2
    detector: DetectorOptions = field(default_factory=DetectorOptions)
    filters: FilterOptions = field(default_factory=FilterOptions)
    collect_individual_filter_stats: bool = True


@dataclass
class AnalysisResult:
    """Everything the pipeline produced, plus its stage trace."""

    program: ThreadifiedProgram
    pointsto: PointsToResult
    lockset: LocksetAnalysis
    warnings: List[UafWarning]
    report: FilterReport
    #: top-level stage spans in execution order (lowering is present when
    #: the caller compiled from source; nested detail hangs off each span)
    spans: List[Span] = field(default_factory=list)

    @property
    def timings(self) -> Dict[str, float]:
        """Per-stage seconds, derived from the spans.

        The pre-observability interface: flat ``{stage: seconds}`` plus a
        ``"total"`` summing every stage (including lowering when timed).
        """
        out = {span.name: span.duration for span in self.spans}
        out["total"] = sum(span.duration for span in self.spans)
        return out

    # -- Table 1 style accessors ----------------------------------------------

    @property
    def potential(self) -> List[UafWarning]:
        return self.warnings

    def after_sound(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_sound]

    def remaining(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_all]

    def by_pair_type(self) -> Dict[str, int]:
        """Distribution of *remaining* warnings over origin categories."""
        counts = {t: 0 for t in PAIR_TYPES}
        for warning in self.remaining():
            counts[warning.pair_type()] += 1
        return counts

    def counts(self) -> Dict[str, int]:
        forest_counts = self.program.forest.counts()
        return {
            **forest_counts,
            "potential": self.report.potential,
            "after_sound": self.report.after_sound,
            "after_unsound": self.report.after_unsound,
        }

    def describe_remaining(self, limit: Optional[int] = None) -> str:
        lines: List[str] = []
        for warning in self.remaining()[:limit]:
            lines.append(warning.describe(self.program.forest))
        return "\n\n".join(lines)


def analyze_module(
    module: Module,
    manifest: Optional[Manifest] = None,
    config: Optional[AnalysisConfig] = None,
    extra_spans: Optional[Sequence[Span]] = None,
) -> AnalysisResult:
    """Run the pipeline on an *unsealed* lowered module.

    ``extra_spans`` lets callers that did timed work *before* this point
    (source lowering, mainly) prepend their spans, so ``timings["total"]``
    covers the real end-to-end wall-clock.
    """
    config = config or AnalysisConfig()
    spans: List[Span] = list(extra_spans or ())

    checkpoint("modeling")
    with obs.span("modeling") as sp:
        program = threadify(module, manifest)
    spans.append(sp)

    checkpoint("detection")
    with obs.span("detection") as sp:
        with obs.span("pointsto", k=config.k):
            pointsto = run_pointsto(program.module, k=config.k)
        with obs.span("lockset"):
            lockset = LocksetAnalysis(program.module, pointsto)
        with obs.span("detect", engine=config.detector.engine):
            warnings = detect_uaf_warnings(
                program, pointsto, config.detector, lockset
            )
    spans.append(sp)

    checkpoint("filtering")
    with obs.span("filtering") as sp:
        ctx = FilterContext(program, pointsto, lockset, config.filters)
        unsound = () if config.filters.sound_only else UNSOUND_FILTERS
        pipeline = FilterPipeline(ctx, SOUND_FILTERS, unsound)
        report = pipeline.apply(
            warnings, with_individual_stats=config.collect_individual_filter_stats
        )
    spans.append(sp)

    obs.add("funnel.potential", report.potential)
    obs.add("funnel.after_sound", report.after_sound)
    obs.add("funnel.remaining", report.after_unsound)

    return AnalysisResult(
        program=program,
        pointsto=pointsto,
        lockset=lockset,
        warnings=warnings,
        report=report,
        spans=spans,
    )


def analyze_app(
    sources: Union[str, Iterable[Tuple[str, str]]],
    manifest: Optional[Manifest] = None,
    config: Optional[AnalysisConfig] = None,
    module_name: str = "app",
) -> AnalysisResult:
    """Compile MiniDroid sources and run the full nAdroid pipeline."""
    checkpoint("lowering")
    with obs.span("lowering") as sp:
        module = lower_sources(sources, module_name=module_name, seal=False)
    return analyze_module(module, manifest, config, extra_spans=[sp])
