"""The nAdroid pipeline (paper Figure 2).

``analyze_app`` runs the full chain on MiniDroid sources or a pre-lowered
module:

    modeling (threadification, section 4)
      -> potential ordering-violation detection (section 5)
      -> filtering (section 6)
      -> programmer-facing report (section 7)

and records per-stage wall-clock timings for the section 8.8 benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .analysis.lockset import LocksetAnalysis
from .analysis.pointsto import PointsToResult, run_pointsto
from .android.manifest import Manifest
from .filters.base import FilterContext, FilterOptions
from .filters.pipeline import FilterPipeline, FilterReport
from .filters.sound import SOUND_FILTERS
from .filters.unsound import UNSOUND_FILTERS
from .ir import Module
from .lowering import lower_sources
from .race.detector import detect_uaf_warnings, DetectorOptions
from .race.warnings import PAIR_TYPES, UafWarning
from .threadify.transform import threadify, ThreadifiedProgram


@dataclass
class AnalysisConfig:
    """End-to-end configuration; defaults follow the paper."""

    k: int = 2
    detector: DetectorOptions = field(default_factory=DetectorOptions)
    filters: FilterOptions = field(default_factory=FilterOptions)
    collect_individual_filter_stats: bool = True


@dataclass
class AnalysisResult:
    """Everything the pipeline produced, plus stage timings (seconds)."""

    program: ThreadifiedProgram
    pointsto: PointsToResult
    lockset: LocksetAnalysis
    warnings: List[UafWarning]
    report: FilterReport
    timings: Dict[str, float]

    # -- Table 1 style accessors ----------------------------------------------

    @property
    def potential(self) -> List[UafWarning]:
        return self.warnings

    def after_sound(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_sound]

    def remaining(self) -> List[UafWarning]:
        return [w for w in self.warnings if w.survives_all]

    def by_pair_type(self) -> Dict[str, int]:
        """Distribution of *remaining* warnings over origin categories."""
        counts = {t: 0 for t in PAIR_TYPES}
        for warning in self.remaining():
            counts[warning.pair_type()] += 1
        return counts

    def counts(self) -> Dict[str, int]:
        forest_counts = self.program.forest.counts()
        return {
            **forest_counts,
            "potential": self.report.potential,
            "after_sound": self.report.after_sound,
            "after_unsound": self.report.after_unsound,
        }

    def describe_remaining(self, limit: Optional[int] = None) -> str:
        lines: List[str] = []
        for warning in self.remaining()[:limit]:
            lines.append(warning.describe(self.program.forest))
        return "\n\n".join(lines)


def analyze_module(
    module: Module,
    manifest: Optional[Manifest] = None,
    config: Optional[AnalysisConfig] = None,
) -> AnalysisResult:
    """Run the pipeline on an *unsealed* lowered module."""
    config = config or AnalysisConfig()
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    program = threadify(module, manifest)
    timings["modeling"] = time.perf_counter() - start

    start = time.perf_counter()
    pointsto = run_pointsto(program.module, k=config.k)
    lockset = LocksetAnalysis(program.module, pointsto)
    warnings = detect_uaf_warnings(
        program, pointsto, config.detector, lockset
    )
    timings["detection"] = time.perf_counter() - start

    start = time.perf_counter()
    ctx = FilterContext(program, pointsto, lockset, config.filters)
    unsound = () if config.filters.sound_only else UNSOUND_FILTERS
    pipeline = FilterPipeline(ctx, SOUND_FILTERS, unsound)
    report = pipeline.apply(
        warnings, with_individual_stats=config.collect_individual_filter_stats
    )
    timings["filtering"] = time.perf_counter() - start
    timings["total"] = sum(timings.values())

    return AnalysisResult(
        program=program,
        pointsto=pointsto,
        lockset=lockset,
        warnings=warnings,
        report=report,
        timings=timings,
    )


def analyze_app(
    sources: Union[str, Iterable[Tuple[str, str]]],
    manifest: Optional[Manifest] = None,
    config: Optional[AnalysisConfig] = None,
    module_name: str = "app",
) -> AnalysisResult:
    """Compile MiniDroid sources and run the full nAdroid pipeline."""
    module = lower_sources(sources, module_name=module_name, seal=False)
    return analyze_module(module, manifest, config)
