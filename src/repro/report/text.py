"""Human-facing explanation rendering (the section-7 programmer aid).

``repro explain`` prints, for every warning, the callback/thread lineage
of both sides of each occurrence (root-first, as a nested tree) and the
per-occurrence decision trail: the aliasing witness that made the pair a
candidate, and -- for pruned/downgraded siblings -- the filter that fired
together with its witness (the HB edge, the common lock, the allocation
site, ...).  Everything here goes to stdout and is plain ASCII.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..race.warnings import Occurrence, UafWarning
from .model import AppReport, warning_id, warning_lines


def render_lineage(lineage: List[Dict[str, Any]], indent: str = "") -> str:
    """One poster->postee chain as a nested tree, dummy main at the root."""
    lines: List[str] = []
    for depth, entry in enumerate(lineage):
        label = entry.get("entry", "?")
        notes = []
        category = entry.get("category")
        if category:
            notes.append(category)
        if entry.get("looper") is None and label != "main":
            notes.append("native")
        post_site = entry.get("post_site")
        if post_site is not None:
            notes.append(f"posted at uid {post_site}")
        suffix = f"  [{', '.join(notes)}]" if notes else ""
        prefix = indent if depth == 0 else f"{indent}{'  ' * (depth - 1)}`-> "
        lines.append(f"{prefix}{label}{suffix}")
    return "\n".join(lines)


def render_occurrence(occ: Occurrence, index: int) -> str:
    """One occurrence's lineage pair plus its filter decision."""
    verdict = occ.verdict
    if occ.pruned_by:
        verdict = f"pruned by {occ.pruned_by}"
    elif occ.downgraded_by:
        verdict = f"downgraded by {occ.downgraded_by}"
    lines = [f"  occurrence {index} [{occ.pair_type}] -- {verdict}"]
    if occ.use_lineage:
        lines.append("    use  thread lineage:")
        lines.append(render_lineage(occ.use_lineage, indent="      "))
    if occ.free_lineage:
        lines.append("    free thread lineage:")
        lines.append(render_lineage(occ.free_lineage, indent="      "))
    if occ.alias is not None:
        lines.append(f"    alias witness : {occ.alias.detail}")
    if occ.witness is not None:
        lines.append(f"    filter witness: {occ.witness.detail}")
    return "\n".join(lines)


def render_explanation(warning: UafWarning,
                       app_name: Optional[str] = None) -> str:
    """The full explanation of one warning, every occurrence included."""
    field = f"{warning.fieldref.class_name}.{warning.fieldref.field_name}"
    lines_at = warning_lines(warning)
    header = (f"potential UAF on {field}  [{warning.pair_type()}]  "
              f"status: {warning.status}")
    lines = [header]
    if app_name is not None:
        lines.append(f"  id  : {warning_id(app_name, warning)}")
    lines.append(f"  use : {warning.use_method} (line {lines_at['use']})")
    lines.append(f"  free: {warning.free_method} (line {lines_at['free']})")
    for index, occ in enumerate(warning.occurrences, start=1):
        lines.append(render_occurrence(occ, index))
    return "\n".join(lines)


def render_app_explanations(app: AppReport,
                            statuses: Optional[List[str]] = None) -> str:
    """Every warning of one app (optionally restricted by status).

    A faulted app renders its fault record in place of warnings; a
    degraded filter is announced up front so a reviewer knows some
    prunes may be missing below.
    """
    chunks: List[str] = []
    if app.fault is not None:
        return (f"analysis of {app.name} FAILED "
                f"[{app.fault.get('kind', 'fault')}, stage "
                f"{app.fault.get('stage', '?')}]: "
                f"{app.fault.get('message', '')}")
    for entry in app.degraded:
        soundness = "sound" if entry.get("sound") else "unsound"
        chunks.append(
            f"NOTE: {soundness} filter '{entry.get('filter')}' crashed and "
            f"was skipped ({entry.get('message', '')}); warnings it would "
            f"have pruned survive below"
        )
    for warning in app.warnings:
        if statuses is not None and warning.status not in statuses:
            continue
        chunks.append(render_explanation(warning, app_name=app.name))
    return "\n\n".join(chunks)
