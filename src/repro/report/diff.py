"""Run-diff: compare two report JSONs and gate on regressions.

``repro diff OLD NEW`` classifies every warning-id present in either
report:

* **new** -- in NEW only.  A new *remaining* warning is a regression.
* **fixed** -- in OLD only.
* **changed** -- in both with a different status.  A change *to*
  ``remaining`` (a filter stopped firing) is a regression; a change away
  from it is an improvement.

plus the per-app :mod:`repro.obs` counter deltas (NEW minus OLD, summed
over apps; zero deltas are omitted, so identical reports diff to an empty
delta map).  ``--fail-on-new`` turns regressions into a non-zero exit
code -- the CI gate against ``benchmarks/golden_report.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class WarningDelta:
    """One warning's change between two reports."""

    warning_id: str
    old_status: str   #: "" when the warning is new
    new_status: str   #: "" when the warning is fixed (gone)

    @property
    def is_regression(self) -> bool:
        """New-remaining, or changed-to-remaining."""
        return self.new_status == "remaining" and self.old_status != "remaining"


@dataclass
class ReportDiff:
    """Everything that changed between OLD and NEW."""

    new: List[WarningDelta] = field(default_factory=list)
    fixed: List[WarningDelta] = field(default_factory=list)
    changed: List[WarningDelta] = field(default_factory=list)
    #: summed obs counter deltas (NEW - OLD), non-zero entries only
    metric_deltas: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not (self.new or self.fixed or self.changed
                    or self.metric_deltas)

    def regressions(self) -> List[WarningDelta]:
        return [d for d in (*self.new, *self.changed) if d.is_regression]


def _statuses(report: Dict[str, Any]) -> Dict[str, str]:
    """``warning_id -> status`` from a report's dict form."""
    out: Dict[str, str] = {}
    for app in report.get("apps", {}).values():
        for warning in app.get("warnings", ()):
            out[warning["id"]] = warning["status"]
    return out


def _metric_totals(report: Dict[str, Any]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for app in report.get("apps", {}).values():
        for name, value in app.get("metrics", {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def diff_reports(old: Dict[str, Any], new: Dict[str, Any]) -> ReportDiff:
    """Compare two reports in their dict (JSON) form."""
    old_statuses = _statuses(old)
    new_statuses = _statuses(new)
    diff = ReportDiff()
    for wid in sorted(old_statuses.keys() | new_statuses.keys()):
        old_status = old_statuses.get(wid, "")
        new_status = new_statuses.get(wid, "")
        if not old_status:
            diff.new.append(WarningDelta(wid, "", new_status))
        elif not new_status:
            diff.fixed.append(WarningDelta(wid, old_status, ""))
        elif old_status != new_status:
            diff.changed.append(WarningDelta(wid, old_status, new_status))

    old_metrics = _metric_totals(old)
    new_metrics = _metric_totals(new)
    for name in sorted(old_metrics.keys() | new_metrics.keys()):
        delta = new_metrics.get(name, 0) - old_metrics.get(name, 0)
        if delta:
            diff.metric_deltas[name] = delta
    return diff


def _describe(deltas: List[WarningDelta]) -> List[str]:
    lines = []
    for delta in deltas:
        if not delta.old_status:
            change = f"new ({delta.new_status})"
        elif not delta.new_status:
            change = f"fixed (was {delta.old_status})"
        else:
            change = f"{delta.old_status} -> {delta.new_status}"
        marker = " [REGRESSION]" if delta.is_regression else ""
        lines.append(f"  {delta.warning_id}: {change}{marker}")
    return lines


def render_diff(diff: ReportDiff) -> str:
    if diff.clean:
        return "reports are identical (0 warning changes, 0 metric deltas)"
    lines: List[str] = [
        f"{len(diff.new)} new, {len(diff.fixed)} fixed, "
        f"{len(diff.changed)} changed-classification; "
        f"{len(diff.regressions())} regression(s)"
    ]
    if diff.new:
        lines.append("new warnings:")
        lines.extend(_describe(diff.new))
    if diff.fixed:
        lines.append("fixed warnings:")
        lines.extend(_describe(diff.fixed))
    if diff.changed:
        lines.append("changed classification:")
        lines.extend(_describe(diff.changed))
    if diff.metric_deltas:
        # Hotspot attribution counters are numerous (one per rule /
        # stratum / context pair) and usually change together, e.g.
        # when one side predates the hotspot namespace entirely; a
        # single summary line keeps the diff readable.  They still
        # participate in `clean`, just not line-by-line.
        plain = {name: value for name, value in diff.metric_deltas.items()
                 if not name.startswith("hotspot.")}
        hotspot_count = len(diff.metric_deltas) - len(plain)
        lines.append("metric deltas (new - old):")
        lines.extend(
            f"  {name}: {value:+d}"
            for name, value in sorted(plain.items())
        )
        if hotspot_count:
            lines.append(
                f"  (+{hotspot_count} hotspot.* attribution counter "
                f"delta(s) not listed)"
            )
    else:
        lines.append("metric deltas: none")
    return "\n".join(lines)


def exit_code(diff: ReportDiff, fail_on_new: bool) -> int:
    """0 = acceptable, 1 = regressions present (only with the gate on)."""
    if fail_on_new and diff.regressions():
        return 1
    return 0
