"""Report objects: the per-run explanation bundle (paper section 7).

An :class:`AnalysisReport` is the machine-checkable form of everything the
pipeline decided about one run -- one :class:`AppReport` per analyzed
application, each carrying its full warning list *with provenance*: the
poster->postee lineage of every occurrence, the points-to witness that
made the pair a candidate, and the filter witness that pruned or
downgraded it.  The exporters build on this:

* :mod:`repro.report.text`  -- the human ``repro explain`` rendering,
* :mod:`repro.report.json`  -- deterministic JSON (the diffable artifact),
* :mod:`repro.report.sarif` -- SARIF 2.1.0 for code-scanning UIs,
* :mod:`repro.report.diff`  -- the run-to-run regression gate.

Warning identity (:func:`warning_id`) is content-based -- field, methods
and source lines, never instruction uids -- so two runs over edited-but-
equivalent sources still line up in a diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .. import __version__
from ..race.warnings import UafWarning

#: bump when the report JSON layout changes incompatibly
REPORT_SCHEMA = 1

#: warning statuses, in decreasing severity
STATUSES = ("remaining", "downgraded", "pruned")


def warning_lines(warning: UafWarning) -> Dict[str, int]:
    """Source lines of the use and the free (from the first occurrence)."""
    if not warning.occurrences:
        return {"use": 0, "free": 0}
    occ = warning.occurrences[0]
    return {"use": occ.use.line, "free": occ.free.line}


def warning_id(app_name: str, warning: UafWarning) -> str:
    """Stable content-based identity used to match warnings across runs."""
    lines = warning_lines(warning)
    return "::".join([
        app_name,
        f"{warning.fieldref.class_name}.{warning.fieldref.field_name}",
        f"{warning.use_method}:{lines['use']}",
        f"{warning.free_method}:{lines['free']}",
    ])


@dataclass
class AppReport:
    """Everything one application's analysis decided, with provenance."""

    name: str
    #: EC/PC/T model sizes plus the potential/after_sound/after_unsound
    #: funnel, exactly as Table 1 counts them
    counts: Dict[str, int]
    #: every potential warning, each occurrence carrying its lineage,
    #: alias witness and (when pruned/downgraded) filter witness
    warnings: List[UafWarning] = field(default_factory=list)
    #: artifact URI for SARIF locations (source path or ``<app>.mjava``)
    source: Optional[str] = None
    #: deterministic analysis counters (witness volume, filter funnel...);
    #: gauges and spans are excluded so reports stay byte-reproducible
    metrics: Dict[str, int] = field(default_factory=dict)
    #: the structured fault record when this app's analysis failed
    #: (``{kind, app, stage, message, traceback_digest}``); a faulted app
    #: has no warnings -- the fault *is* its report
    fault: Optional[Dict[str, Union[str, int]]] = None
    #: filters that crashed and were skipped during this app's analysis
    #: (``{"filter", "sound", "message"}`` each); a non-empty list with a
    #: sound filter means the warning set may over-approximate less than
    #: the paper's configuration guarantees
    degraded: List[Dict[str, Union[str, bool]]] = field(default_factory=list)

    def by_status(self) -> Dict[str, List[UafWarning]]:
        out: Dict[str, List[UafWarning]] = {s: [] for s in STATUSES}
        for warning in self.warnings:
            out[warning.status].append(warning)
        return out


@dataclass
class AnalysisReport:
    """One run's reports for every analyzed app, keyed by app name."""

    apps: Dict[str, AppReport] = field(default_factory=dict)
    schema: int = REPORT_SCHEMA
    version: str = __version__
    #: pointers to sibling run artifacts written alongside this report
    #: (``{"trace": <chrome trace path>, "events": <jsonl path>}``);
    #: additive -- serialized only when non-empty, so reports from runs
    #: without ``--trace-out``/``--events-out`` stay byte-identical
    artifacts: Dict[str, str] = field(default_factory=dict)

    def warning_statuses(self) -> Dict[str, str]:
        """``warning_id -> status`` over the whole run (the diff's view)."""
        out: Dict[str, str] = {}
        for name, app in self.apps.items():
            for warning in app.warnings:
                out[warning_id(name, warning)] = warning.status
        return out


def _deterministic_counters(metrics) -> Dict[str, int]:
    """Counters of one metrics snapshot (mapping or snapshot object)."""
    if metrics is None:
        return {}
    counters = getattr(metrics, "counters", metrics)
    return {name: int(value) for name, value in sorted(counters.items())}


def build_app_report(
    name: str,
    result,
    source: Optional[str] = None,
    metrics=None,
) -> AppReport:
    """Project an analysis outcome onto its report.

    ``result`` is either a full in-process
    :class:`repro.core.AnalysisResult` or the runner's serializable
    :class:`repro.runner.serialize.ResultData` -- both expose ``counts()``
    and ``warnings``.  ``metrics`` is an optional
    :class:`repro.obs.MetricsSnapshot` (or plain counter mapping); only
    its deterministic counters are kept.
    """
    from ..runner.serialize import warning_sort_key

    degraded = list(getattr(result.report, "degraded", ()) or ())
    return AppReport(
        name=name,
        counts=dict(result.counts()),
        warnings=sorted(result.warnings, key=warning_sort_key),
        source=source if source is not None else f"{name}.mjava",
        metrics=_deterministic_counters(metrics),
        degraded=degraded,
    )


def fault_app_report(fault: Dict[str, Union[str, int]]) -> AppReport:
    """The report of an app whose analysis *failed*.

    Carries the structured fault record instead of warnings, so the
    run's report still has one entry per input app and the failure is
    diffable/exportable like any other outcome.
    """
    name = str(fault.get("app", ""))
    return AppReport(
        name=name,
        counts={},
        warnings=[],
        source=f"{name}.mjava",
        metrics={},
        fault=dict(fault),
    )


def build_report(
    apps: Union[Dict[str, AppReport], List[AppReport]],
) -> AnalysisReport:
    """Assemble per-app reports into one run report (name-sorted)."""
    if isinstance(apps, dict):
        items = list(apps.values())
    else:
        items = list(apps)
    return AnalysisReport(
        apps={report.name: report for report in
              sorted(items, key=lambda r: r.name)}
    )
