"""Ground-truth scoring: generated-corpus labels vs pipeline warnings.

The corpus generator records, for every injected use-after-free pattern,
exactly which warning the pipeline should produce (class, field, use and
free source lines) and what should happen to it (``surviving`` vs
``filtered``).  This module grades a run against those labels:

* **recall** -- the fraction of injected labels the detector produced a
  matching warning for (at *any* status: a label killed by a filter
  still counts as detected, it was just classified),
* **status accuracy** -- the fraction whose surviving-vs-filtered
  outcome matches the expectation,
* **precision** -- the fraction of *surviving* warnings that correspond
  to a label expected to survive (clean apps and filtered-expected
  labels put false survivors in the denominator),
* **clean violations** -- clean apps (no injection) with any surviving
  warning; always expected to be empty.

A warning matches a label when the field matches and *some* occurrence
hits the label's exact use/free line pair.  Matching is line-based on
purpose: it is robust to uid/node renumbering across pipeline changes,
and the generator guarantees one injection per (class, field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..corpus.generator import (
    EXPECT_SURVIVING,
    GeneratedApp,
    GroundTruthLabel,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner.serialize import ResultData

SCORE_SCHEMA = 1

#: observed label outcomes
OBSERVED_MISSED = "missed"          # no matching warning at all
OBSERVED_SURVIVING = "surviving"    # a matching warning survived all filters
OBSERVED_FILTERED = "filtered"      # matched, but every match was killed


@dataclass
class ScoredLabel:
    """One ground-truth label and what the pipeline actually did."""

    label: GroundTruthLabel
    observed: str                    #: one of the OBSERVED_* constants
    observed_pair_types: List[str] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return self.observed != OBSERVED_MISSED

    @property
    def status_ok(self) -> bool:
        return self.observed == self.label.expected

    @property
    def pair_type_ok(self) -> bool:
        """Pair-type agreement, judged only for detected labels."""
        return self.label.pair_type in self.observed_pair_types

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label.to_dict(),
            "app": self.label.app,
            "observed": self.observed,
            "observed_pair_types": list(self.observed_pair_types),
            "detected": self.detected,
            "status_ok": self.status_ok,
            "pair_type_ok": self.pair_type_ok,
        }


@dataclass
class ScoreReport:
    """The graded outcome of one generated-corpus run."""

    labels: List[ScoredLabel] = field(default_factory=list)
    #: surviving warnings with no surviving-expected label behind them,
    #: as ``{"app": ..., "field": ..., "use_line": ..., "free_line": ...}``
    false_survivors: List[Dict[str, Any]] = field(default_factory=list)
    #: clean apps that produced surviving warnings (expected: none)
    clean_violations: List[str] = field(default_factory=list)
    #: apps whose analysis faulted and could not be scored
    unscored_apps: List[str] = field(default_factory=list)
    apps_total: int = 0
    apps_clean: int = 0

    @property
    def total(self) -> int:
        return len(self.labels)

    @property
    def detected(self) -> int:
        return sum(1 for s in self.labels if s.detected)

    @property
    def status_correct(self) -> int:
        return sum(1 for s in self.labels if s.status_ok)

    @property
    def recall(self) -> float:
        return self.detected / self.total if self.total else 1.0

    @property
    def status_accuracy(self) -> float:
        return self.status_correct / self.total if self.total else 1.0

    @property
    def precision(self) -> float:
        true_survivors = sum(
            1 for s in self.labels
            if s.observed == OBSERVED_SURVIVING
            and s.label.expected == EXPECT_SURVIVING
        )
        denominator = true_survivors + len(self.false_survivors)
        return true_survivors / denominator if denominator else 1.0

    def by_pattern(self) -> Dict[str, Dict[str, int]]:
        """Per-pattern breakdown: labels / detected / status-correct."""
        out: Dict[str, Dict[str, int]] = {}
        for scored in self.labels:
            entry = out.setdefault(
                scored.label.pattern,
                {"labels": 0, "detected": 0, "status_ok": 0},
            )
            entry["labels"] += 1
            entry["detected"] += int(scored.detected)
            entry["status_ok"] += int(scored.status_ok)
        return {pattern: out[pattern] for pattern in sorted(out)}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCORE_SCHEMA,
            "apps": {
                "total": self.apps_total,
                "clean": self.apps_clean,
                "unscored": list(self.unscored_apps),
            },
            "totals": {
                "labels": self.total,
                "detected": self.detected,
                "status_correct": self.status_correct,
                "recall": self.recall,
                "status_accuracy": self.status_accuracy,
                "precision": self.precision,
            },
            "by_pattern": self.by_pattern(),
            "labels": [s.to_dict() for s in self.labels],
            "false_survivors": list(self.false_survivors),
            "clean_violations": list(self.clean_violations),
        }


def _match_label(label: GroundTruthLabel, result: "ResultData"):
    """All warnings whose field and some occurrence hit the label's lines."""
    matched = []
    for warning in result.warnings:
        if (warning.fieldref.class_name, warning.fieldref.field_name) != \
                (label.class_name, label.field_name):
            continue
        if any(occ.use.line == label.use_line
               and occ.free.line == label.free_line
               for occ in warning.occurrences):
            matched.append(warning)
    return matched


def score_generated(
    apps: List[GeneratedApp],
    results: List[Optional["ResultData"]],
) -> ScoreReport:
    """Grade the per-app results (input order) against the apps' labels."""
    report = ScoreReport(
        apps_total=len(apps),
        apps_clean=sum(1 for app in apps if app.clean),
    )
    for app, result in zip(apps, results):
        if result is None:  # faulted under --keep-going
            report.unscored_apps.append(app.name)
            continue
        remaining = result.remaining()
        if app.clean and remaining:
            report.clean_violations.append(app.name)
        matched_surviving = set()
        for label in app.labels:
            matched = _match_label(label, result)
            if not matched:
                report.labels.append(
                    ScoredLabel(label=label, observed=OBSERVED_MISSED)
                )
                continue
            surviving = [w for w in matched if w.status == "remaining"]
            observed = OBSERVED_SURVIVING if surviving else OBSERVED_FILTERED
            report.labels.append(ScoredLabel(
                label=label,
                observed=observed,
                observed_pair_types=sorted({w.pair_type() for w in matched}),
            ))
            for warning in surviving:
                matched_surviving.add(id(warning))
                if label.expected != EXPECT_SURVIVING:
                    # the label matched, but it should have been filtered:
                    # this survivor is a false positive too
                    report.false_survivors.append({
                        "app": app.name,
                        "field": f"{label.class_name}.{label.field_name}",
                        "use_line": label.use_line,
                        "free_line": label.free_line,
                        "reason": "expected-filtered",
                    })
        for warning in remaining:
            if id(warning) in matched_surviving:
                continue
            occ = warning.occurrences[0]
            report.false_survivors.append({
                "app": app.name,
                "field": (f"{warning.fieldref.class_name}."
                          f"{warning.fieldref.field_name}"),
                "use_line": occ.use.line,
                "free_line": occ.free.line,
                "reason": "unlabeled",
            })
    return report


def render_score(report: ScoreReport) -> str:
    """Deterministic text summary (the ``corpus score`` stdout)."""
    lines: List[str] = []
    lines.append(
        f"generated corpus: {report.apps_total} apps "
        f"({report.apps_clean} clean), {report.total} injected labels"
    )
    lines.append(
        f"recall          : {report.detected}/{report.total} "
        f"({report.recall * 100:.1f}%)"
    )
    lines.append(
        f"status accuracy : {report.status_correct}/{report.total} "
        f"({report.status_accuracy * 100:.1f}%)"
    )
    lines.append(f"precision       : {report.precision * 100:.1f}%")
    lines.append("")
    header = f"{'pattern':<28} {'labels':>6} {'found':>6} {'status':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for pattern, entry in report.by_pattern().items():
        lines.append(
            f"{pattern:<28} {entry['labels']:>6} {entry['detected']:>6} "
            f"{entry['status_ok']:>6}"
        )
    problems: List[str] = []
    for scored in report.labels:
        if scored.observed == OBSERVED_MISSED:
            problems.append(f"MISSED {scored.label.label_id} "
                            f"({scored.label.pattern})")
        elif not scored.status_ok:
            problems.append(
                f"WRONG-STATUS {scored.label.label_id} "
                f"({scored.label.pattern}): expected "
                f"{scored.label.expected}, observed {scored.observed}"
            )
        elif not scored.pair_type_ok:
            problems.append(
                f"WRONG-PAIR-TYPE {scored.label.label_id} "
                f"({scored.label.pattern}): expected "
                f"{scored.label.pair_type}, observed "
                f"{','.join(scored.observed_pair_types) or '?'}"
            )
    for survivor in report.false_survivors:
        problems.append(
            f"FALSE-SURVIVOR {survivor['app']}::{survivor['field']}"
            f"::{survivor['use_line']}::{survivor['free_line']} "
            f"({survivor['reason']})"
        )
    for name in report.clean_violations:
        problems.append(f"CLEAN-VIOLATION {name}: surviving warnings in a "
                        "clean app")
    for name in report.unscored_apps:
        problems.append(f"UNSCORED {name}: analysis faulted")
    if problems:
        lines.append("")
        lines.extend(problems)
    return "\n".join(lines)
