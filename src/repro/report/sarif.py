"""SARIF 2.1.0 export of an :class:`AnalysisReport`.

One run object per report; one reporting rule per warning origin category
(the paper's EC-EC ... T-T pair types of section 7), so code-scanning UIs
can group and gate by category.  Surviving warnings are ``warning``-level
results; downgraded ones ship as ``note``-level results (the section-6.2
ranking interpretation: reviewable, not deleted).  Pruned warnings stay
out of SARIF -- their witnesses live in the JSON report and ``explain``.

Each result carries:

* ``locations`` -- the use site (artifact = the app source, region = the
  IR source line),
* ``relatedLocations`` -- the free site plus the callback lineage of both
  threads, root-first, so the ordering-violation scenario is readable in
  a viewer without re-running the analysis.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..race.warnings import PAIR_TYPES, UafWarning
from .model import AnalysisReport, AppReport, warning_id, warning_lines

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_RULE_DESCRIPTIONS = {
    "EC-EC": "use/free pair between two entry callbacks",
    "EC-PC": "use/free pair between an entry and a posted callback",
    "PC-PC": "use/free pair between two posted callbacks",
    "C-RT": "use/free pair between a callback and a thread it reaches",
    "C-NT": "use/free pair between a callback and an unrelated thread",
    "T-T": "use/free pair between two native threads",
}


def rule_id(pair_type: str) -> str:
    return f"uaf-{pair_type}"


def _rules() -> List[Dict[str, Any]]:
    return [
        {
            "id": rule_id(pair_type),
            "name": f"UseAfterFree{pair_type.replace('-', '')}",
            "shortDescription": {
                "text": f"Potential use-after-free ordering violation "
                        f"({_RULE_DESCRIPTIONS[pair_type]})",
            },
            "defaultConfiguration": {"level": "warning"},
        }
        for pair_type in PAIR_TYPES
    ]


def _location(uri: str, line: int, message: str) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": {"startLine": max(1, int(line))},
        },
    }
    if message:
        location["message"] = {"text": message}
    return location


def _lineage_messages(side: str, lineage) -> List[str]:
    return [
        f"{side} lineage[{depth}]: {entry.get('entry', '?')}"
        for depth, entry in enumerate(lineage)
    ]


def _result(app: AppReport, warning: UafWarning) -> Dict[str, Any]:
    uri = app.source or f"{app.name}.mjava"
    lines = warning_lines(warning)
    field = f"{warning.fieldref.class_name}.{warning.fieldref.field_name}"
    shown = warning.surviving_occurrences() or warning.occurrences
    related: List[Dict[str, Any]] = [
        _location(uri, lines["free"],
                  f"the free: {warning.free_method} stores null into "
                  f"{field}"),
    ]
    if shown:
        occ = shown[0]
        for message in _lineage_messages("use", occ.use_lineage):
            related.append(_location(uri, lines["use"], message))
        for message in _lineage_messages("free", occ.free_lineage):
            related.append(_location(uri, lines["free"], message))
    pair_type = warning.pair_type()
    rules_index = PAIR_TYPES.index(pair_type)
    return {
        "ruleId": rule_id(pair_type),
        "ruleIndex": rules_index,
        "level": "warning" if warning.status == "remaining" else "note",
        "message": {
            "text": (f"Potential use-after-free on {field}: "
                     f"{warning.use_method} (line {lines['use']}) may run "
                     f"after {warning.free_method} (line {lines['free']}) "
                     f"frees it [{pair_type}, {warning.status}]"),
        },
        "locations": [
            _location(uri, lines["use"],
                      f"the use: {warning.use_method} dereferences "
                      f"{field}"),
        ],
        "relatedLocations": related,
        "partialFingerprints": {
            "nadroidWarningId": warning_id(app.name, warning),
        },
    }


def _notifications(report: AnalysisReport) -> List[Dict[str, Any]]:
    """Tool-execution notifications for faulted apps and degraded filters.

    SARIF separates *results* (findings about the code) from
    *notifications* (conditions of the analysis itself); an app whose
    analysis failed, or a filter that crashed and was skipped, is the
    latter.  Levels: an app fault is an ``error``; a crashed *sound*
    filter is a ``warning`` (the paper's precision bar no longer holds);
    a crashed unsound filter is a ``note`` (only ranking was lost).
    """
    notifications: List[Dict[str, Any]] = []
    for name, app in sorted(report.apps.items()):
        if app.fault is not None:
            fault = app.fault
            notifications.append({
                "level": "error",
                "descriptor": {"id": f"fault/{fault.get('kind', 'fault')}"},
                "message": {
                    "text": (f"analysis of app '{name}' failed at stage "
                             f"'{fault.get('stage', '?')}': "
                             f"{fault.get('message', '')}"),
                },
                "properties": {"fault": dict(fault)},
            })
        for entry in app.degraded:
            notifications.append({
                "level": "warning" if entry.get("sound") else "note",
                "descriptor": {"id": "fault/filter"},
                "message": {
                    "text": (f"app '{name}': filter '{entry.get('filter')}' "
                             f"crashed and was skipped "
                             f"({entry.get('message', '')}); warnings it "
                             f"would have pruned survive"),
                },
                "properties": {"degraded": dict(entry)},
            })
    return notifications


def report_to_sarif(report: AnalysisReport) -> Dict[str, Any]:
    results: List[Dict[str, Any]] = []
    for _, app in sorted(report.apps.items()):
        for warning in app.warnings:
            if warning.status == "pruned":
                continue
            results.append(_result(app, warning))
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "nadroid-repro",
                "version": report.version,
                "informationUri":
                    "https://doi.org/10.1145/3168829",
                "rules": _rules(),
            },
        },
        "results": results,
    }
    # The invocation object appears only when there is something to say,
    # keeping fault-free SARIF byte-identical to earlier releases.
    notifications = _notifications(report)
    if notifications:
        run["invocations"] = [{
            "executionSuccessful": not any(
                app.fault is not None for app in report.apps.values()
            ),
            "toolExecutionNotifications": notifications,
        }]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def write_sarif(report: AnalysisReport, path) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report_to_sarif(report), handle, sort_keys=True, indent=2)
        handle.write("\n")
