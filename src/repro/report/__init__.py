"""repro.report -- explainable warnings (paper section 7).

The provenance captured across the pipeline (filter witnesses, callback
lineage, points-to witnesses) assembled into per-run artifacts:

* :class:`AnalysisReport` / :class:`AppReport` -- the report model,
* :func:`render_explanation` -- the human ``repro explain`` view,
* :func:`report_to_dict` / :func:`write_report` -- deterministic JSON,
* :func:`report_to_sarif` / :func:`write_sarif` -- SARIF 2.1.0,
* :func:`diff_reports` -- the run-diff regression gate.

See ``docs/reporting.md`` for the schemas and witness vocabulary.
"""

from .model import (
    AnalysisReport,
    AppReport,
    build_app_report,
    build_report,
    fault_app_report,
    REPORT_SCHEMA,
    STATUSES,
    warning_id,
    warning_lines,
)
from .json import (
    load_report,
    report_from_dict,
    report_to_dict,
    report_to_json,
    write_report,
)
from .text import (
    render_app_explanations,
    render_explanation,
    render_lineage,
    render_occurrence,
)
from .sarif import report_to_sarif, SARIF_VERSION, write_sarif
from .diff import diff_reports, exit_code, render_diff, ReportDiff, WarningDelta
from .score import (
    render_score,
    SCORE_SCHEMA,
    score_generated,
    ScoredLabel,
    ScoreReport,
)

__all__ = [
    "AnalysisReport",
    "AppReport",
    "build_app_report",
    "build_report",
    "diff_reports",
    "exit_code",
    "fault_app_report",
    "load_report",
    "render_app_explanations",
    "render_diff",
    "render_explanation",
    "render_lineage",
    "render_occurrence",
    "render_score",
    "REPORT_SCHEMA",
    "SCORE_SCHEMA",
    "score_generated",
    "ScoredLabel",
    "ScoreReport",
    "report_from_dict",
    "report_to_dict",
    "report_to_json",
    "report_to_sarif",
    "ReportDiff",
    "SARIF_VERSION",
    "STATUSES",
    "warning_id",
    "warning_lines",
    "WarningDelta",
    "write_report",
    "write_sarif",
]
