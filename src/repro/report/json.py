"""Deterministic JSON form of an :class:`AnalysisReport`.

The report file is a *diffable artifact*: keys are sorted at every level,
warnings are ordered by the runner's content-based sort key, and only
deterministic quantities are included (counters, never wall-clock), so
two runs of the same sources produce byte-identical files regardless of
``--jobs``, cache temperature or host speed.  ``tests/report`` pins this.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..runner.serialize import warning_from_dict, warning_to_dict
from .model import (
    AnalysisReport,
    AppReport,
    build_report,
    REPORT_SCHEMA,
    warning_id,
    warning_lines,
)


def _warning_to_dict(app_name: str, warning) -> Dict[str, Any]:
    payload = warning_to_dict(warning)
    payload["id"] = warning_id(app_name, warning)
    payload["status"] = warning.status
    payload["pair_type"] = warning.pair_type()
    payload["lines"] = warning_lines(warning)
    return payload


def _app_to_dict(name: str, app: AppReport) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "counts": dict(app.counts),
        "source": app.source,
        "metrics": dict(app.metrics),
        "warnings": [_warning_to_dict(name, w) for w in app.warnings],
    }
    # Fault-tolerance keys appear only on runs that needed them, so
    # fault-free reports stay byte-identical to earlier releases.
    if app.fault is not None:
        out["fault"] = dict(app.fault)
    if app.degraded:
        out["degraded"] = [dict(entry) for entry in app.degraded]
    return out


def report_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "schema": report.schema,
        "version": report.version,
        "apps": {
            name: _app_to_dict(name, app)
            for name, app in sorted(report.apps.items())
        },
    }
    # Artifact pointers appear only when the run wrote sibling files
    # (--trace-out / --events-out), keeping plain reports byte-identical.
    if report.artifacts:
        out["artifacts"] = {
            key: report.artifacts[key] for key in sorted(report.artifacts)
        }
    return out


def report_from_dict(payload: Dict[str, Any]) -> AnalysisReport:
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report schema {payload.get('schema')!r} "
            f"(expected {REPORT_SCHEMA})"
        )
    report = build_report([
        AppReport(
            name=name,
            counts=dict(app["counts"]),
            warnings=[warning_from_dict(w) for w in app["warnings"]],
            source=app.get("source"),
            metrics=dict(app.get("metrics", {})),
            fault=dict(app["fault"]) if app.get("fault") else None,
            degraded=[dict(e) for e in app.get("degraded", ())],
        )
        for name, app in payload.get("apps", {}).items()
    ])
    report.version = payload.get("version", report.version)
    report.artifacts = dict(payload.get("artifacts", {}))
    return report


def report_to_json(report: AnalysisReport) -> str:
    """Canonical text: sorted keys, two-space indent, trailing newline."""
    return json.dumps(report_to_dict(report), sort_keys=True, indent=2) + "\n"


def write_report(report: AnalysisReport, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report_to_json(report))


def load_report(path) -> Dict[str, Any]:
    """Read a report file back as its dict form (the diff's input)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
