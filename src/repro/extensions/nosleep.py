"""No-sleep (energy-bug) detection -- the paper's section 9 extension.

Section 9: "nAdroid can be applied to other concurrency bugs such as
no-sleep bugs [Pathak et al.] and energy bugs where racy API calls lead to
ordering violations."  This module instantiates that idea over the same
substrate: instead of getfield/putfield-null pairs, the events are calls
to *resource acquire/release* API pairs (WakeLock.acquire/release,
Camera.open/release, MediaPlayer.start/release), and the ordering
contract is "every acquire is eventually followed by a matching release".

Two severities are reported:

* ``LEAKED`` -- a callback acquires the resource and some path reaches its
  exit still holding it, and **no other modeled thread** ever releases an
  aliased resource: the device can never sleep again (the classic
  no-sleep bug).
* ``RACY_RELEASE`` -- a leak path exists but some *other* callback does
  release the aliased resource: whether the device sleeps depends on the
  event order -- a racy API-call ordering violation.  The severity is
  downgraded to pruned when a must-happens-before relation guarantees the
  releasing callback runs after the acquiring one (e.g. release in
  ``onDestroy``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.pointsto import HeapObject, PointsToResult
from ..android.callbacks import SYSTEM_CALLBACKS, UI_CALLBACKS
from ..android.lifecycle import activity_mhb
from ..analysis.dataflow import run_forward
from ..ir import Instruction, Invoke, Method, Module
from ..threadify.model import ThreadNode
from ..threadify.transform import ThreadifiedProgram

#: (declaring class, acquire method, release method)
RESOURCE_CONTRACTS: Tuple[Tuple[str, str, str], ...] = (
    ("WakeLock", "acquire", "release"),
    ("Camera", "startPreview", "stopPreview"),
    ("MediaPlayer", "start", "release"),
)

LEAKED = "leaked"
RACY_RELEASE = "racy-release"


@dataclass(frozen=True)
class ResourceEvent:
    """One acquire or release call site, attributed to a thread node."""

    node_id: int
    method_qname: str
    uid: int
    contract: Tuple[str, str, str]
    kind: str                     #: "acquire" or "release"
    objects: FrozenSet[HeapObject]


@dataclass
class NoSleepWarning:
    """One acquire site that may never be followed by its release."""

    acquire: ResourceEvent
    severity: str
    releases: List[ResourceEvent]

    def describe(self, program: ThreadifiedProgram) -> str:
        node = program.forest.node(self.acquire.node_id)
        contract = self.acquire.contract
        lines = [
            f"no-sleep risk ({self.severity}) on {contract[0]}."
            f"{contract[1]} in {self.acquire.method_qname}",
            f"  acquiring thread: {node.describe()}",
        ]
        for release in self.releases[:3]:
            rnode = program.forest.node(release.node_id)
            lines.append(f"  possible release : {rnode.describe()}")
        return "\n".join(lines)


def _contract_for(module: Module, class_name: str,
                  method_name: str) -> Optional[Tuple[Tuple[str, str, str], str]]:
    names = {class_name, *module.supertypes(class_name)}
    for contract in RESOURCE_CONTRACTS:
        cls, acq, rel = contract
        if cls in names:
            if method_name == acq:
                return contract, "acquire"
            if method_name == rel:
                return contract, "release"
    return None


def collect_resource_events(
    program: ThreadifiedProgram, pointsto: PointsToResult
) -> List[ResourceEvent]:
    """All acquire/release call sites, per owning thread node."""
    module = program.module
    method_nodes: Dict[str, List[int]] = {}
    for node_id, region in program.regions.items():
        for qname in region:
            method_nodes.setdefault(qname, []).append(node_id)

    events: List[ResourceEvent] = []
    for method in module.methods():
        if not program.is_app_class(method.class_name):
            continue
        nodes = method_nodes.get(method.qualified_name)
        if not nodes:
            continue
        for instr in method.instructions():
            if not isinstance(instr, Invoke) or instr.base is None:
                continue
            hit = _contract_for(
                module, instr.methodref.class_name, instr.methodref.method_name
            )
            if hit is None:
                continue
            contract, kind = hit
            objs = frozenset(
                pointsto.pts(method.qualified_name, instr.base.name)
            )
            for node_id in nodes:
                events.append(
                    ResourceEvent(
                        node_id=node_id,
                        method_qname=method.qualified_name,
                        uid=instr.uid,
                        contract=contract,
                        kind=kind,
                        objects=objs,
                    )
                )
    return events


def _leaks_on_some_path(method: Method, acquire_uid: int,
                        module: Module) -> bool:
    """May-analysis: does some path from the acquire reach the method exit
    without a matching release on the same contract?"""
    contract_cls = None
    for instr in method.instructions():
        if instr.uid == acquire_uid and isinstance(instr, Invoke):
            hit = _contract_for(module, instr.methodref.class_name,
                                instr.methodref.method_name)
            if hit:
                contract_cls = hit[0]
    if contract_cls is None:
        return False
    _cls, _acq, release_name = contract_cls

    def transfer(instr: Instruction, state: frozenset) -> frozenset:
        if instr.uid == acquire_uid:
            return state | {"held"}
        if isinstance(instr, Invoke) \
                and instr.methodref.method_name == release_name:
            return frozenset()
        return state

    # may-analysis: union at joins -- "held on some path"
    states = run_forward(method, frozenset(), transfer, lambda a, b: a | b)
    from ..ir import Return

    for instr in method.instructions():
        if isinstance(instr, Return):
            out = transfer(instr, states.get(instr.uid, frozenset()))
            if "held" in out:
                return True
    return False


def _release_guaranteed_after(program: ThreadifiedProgram,
                              acquire_node: ThreadNode,
                              release_node: ThreadNode) -> bool:
    """Is the releasing callback guaranteed to run after the acquirer?

    The one statically sound guarantee our model offers: same component,
    and the release lives in ``onDestroy`` (everything precedes
    onDestroy, and a destroyed component's teardown always runs)."""
    if acquire_node.component is None:
        return False
    if acquire_node.component != release_node.component:
        return False
    return release_node.method_name == "onDestroy" and activity_mhb(
        acquire_node.method_name, "onDestroy",
        UI_CALLBACKS | SYSTEM_CALLBACKS,
    )


def detect_nosleep(
    program: ThreadifiedProgram, pointsto: PointsToResult
) -> List[NoSleepWarning]:
    """Find acquire sites that may leave the resource held forever."""
    module = program.module
    events = collect_resource_events(program, pointsto)
    acquires = [e for e in events if e.kind == "acquire"]
    releases = [e for e in events if e.kind == "release"]

    warnings: Dict[Tuple[int, int], NoSleepWarning] = {}
    for acquire in acquires:
        class_name, method_name = acquire.method_qname.rsplit(".", 1)
        method = module.lookup_method(class_name, method_name)
        if method is None or not _leaks_on_some_path(method, acquire.uid,
                                                     module):
            continue  # released on every local path: no bug
        matching = [
            r for r in releases
            if r.contract == acquire.contract
            and (r.objects & acquire.objects
                 or (not r.objects and not acquire.objects))
            and r.uid != acquire.uid
            # a partial release on another path of the *same* callback does
            # not rescue the leak path; only other callbacks/threads count
            and r.method_qname != acquire.method_qname
        ]
        acquire_node = program.forest.node(acquire.node_id)
        guaranteed = [
            r for r in matching
            if _release_guaranteed_after(
                program, acquire_node, program.forest.node(r.node_id)
            )
        ]
        if guaranteed:
            continue  # a must-ordered release exists: pruned
        severity = RACY_RELEASE if matching else LEAKED
        key = (acquire.uid, acquire.node_id)
        if key not in warnings:
            warnings[key] = NoSleepWarning(
                acquire=acquire, severity=severity, releases=matching
            )
    return sorted(warnings.values(),
                  key=lambda w: (w.acquire.method_qname, w.acquire.uid))
