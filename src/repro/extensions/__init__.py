"""Extensions beyond the paper's core tables (its section 9 directions)."""

from .nosleep import (
    collect_resource_events,
    detect_nosleep,
    LEAKED,
    NoSleepWarning,
    RACY_RELEASE,
    RESOURCE_CONTRACTS,
    ResourceEvent,
)

__all__ = [
    "collect_resource_events", "detect_nosleep", "LEAKED", "NoSleepWarning",
    "RACY_RELEASE", "RESOURCE_CONTRACTS", "ResourceEvent",
]
