"""Parallel, cached corpus-analysis runner.

The corpus drivers (Table 1, Figure 5, Tables 2/3, the timing study) all
reduce to *one independent analysis per app* followed by aggregation, so
they share this runner: a process-per-task fan-out over apps (the
fault-isolating pool of :mod:`repro.resilience.pool`) with a
content-addressed on-disk result cache in front (see
:mod:`repro.runner.cache`).

Determinism contract: results are keyed and re-ordered by the input app
order and every payload is serialized in a canonical form (warnings sorted
by :func:`repro.runner.serialize.warning_sort_key`), so a ``--jobs 4`` run
is byte-identical to a serial run no matter which worker finishes first.
``tests/test_runner.py`` pins this property.

Observability: every task executes under a fresh :class:`repro.obs
.Recorder` whose snapshot (span tree rooted at ``app:<name>`` plus the
analysis counters) rides back across the process boundary -- and into the
cache, so cache hits replay the metrics recorded when the entry was
built.  The runner exposes them as :attr:`CorpusRunner.last_metrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import merge_snapshots, MetricsSnapshot, Recorder, RunEventLog
from ..obs import span as obs_span, track_memory, use as obs_use
from ..obs.telemetry import LiveAggregator
from ..resilience import (
    active_plan,
    checkpoint,
    compose_observers,
    Fault,
    FaultPolicy,
    run_tasks,
    task_scope,
)
from .cache import cache_key, ResultCache
from .serialize import config_fingerprint


def _task_table1(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..corpus import app
    from ..harness.table1 import build_row
    from .serialize import row_to_dict

    row = build_row(
        app(app_name),
        validate=params.get("validate", True),
        random_attempts=params.get("random_attempts", 40),
        config=params.get("config"),
    )
    return row_to_dict(row)


def _task_figure5(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..corpus import app
    from ..harness.figure5 import figure5_app_data

    return figure5_app_data(app(app_name), params.get("config"))


def _task_table2(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.table2 import table2_app_data

    return table2_app_data(app_name, params.get("config"))


def _task_table3(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..corpus import app
    from ..harness.table3 import table3_app_data

    return table3_app_data(app(app_name), params.get("config"))


def _task_timing(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..corpus import app
    from ..harness.table1 import analyze_corpus_app

    result = analyze_corpus_app(app(app_name), params.get("config"))
    return {"timings": dict(result.timings)}


def _task_generated(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.generated import generated_app_data

    return generated_app_data(app_name, params)


def _task_gen_timing(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.generated import analyze_generated_app

    result = analyze_generated_app(
        app_name, params["generator"], params.get("config")
    )
    return {"timings": dict(result.timings)}


def _task_analyze(app_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """One service/CLI analysis job unit: sources arrive *in* the params
    (``{"sources": {app: [[path, text], ...]}}``) instead of being
    resolved from the corpus registry -- the ``repro serve`` daemon feeds
    request bodies through here."""
    from ..core import analyze_app
    from .serialize import result_data_to_dict, result_to_data

    files = [tuple(entry) for entry in params["sources"][app_name]]
    result = analyze_app(files, config=params.get("config"))
    return {"result": result_data_to_dict(result_to_data(result))}


_TASKS = {
    "table1": _task_table1,
    "figure5": _task_figure5,
    "table2": _task_table2,
    "table3": _task_table3,
    "timing": _task_timing,
    "generated": _task_generated,
    "gen-timing": _task_gen_timing,
    "analyze": _task_analyze,
}

TASK_KINDS = tuple(sorted(_TASKS))


def execute_app_task(kind: str, app_name: str,
                     params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one per-app analysis task, without instrumentation."""
    return _TASKS[kind](app_name, params)


def execute_app_task_observed(kind: str, app_name: str,
                              params: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process entry point: run one task under a fresh recorder.

    Returns an envelope ``{"data": <task payload>, "obs": <snapshot>}``.
    The span tree is rooted at ``app:<name>``, so a ``--trace`` render of
    a ``--jobs N`` run nests each worker's spans under its own app root
    instead of interleaving them.
    """
    recorder = Recorder()
    with task_scope(app_name):
        with obs_use(recorder):
            if params.get("memory"):
                # opt-in tracemalloc gauges (mem.app.peak_kb and
                # mem.stage.<span>.peak_kb) ride the same snapshot
                with track_memory(recorder):
                    with obs_span(f"app:{app_name}", kind=kind):
                        checkpoint("task")
                        data = _TASKS[kind](app_name, params)
            else:
                with obs_span(f"app:{app_name}", kind=kind):
                    checkpoint("task")
                    data = _TASKS[kind](app_name, params)
    return {"data": data, "obs": recorder.snapshot().to_dict()}


def _envelope_duration(envelope: Dict[str, Any]) -> Optional[float]:
    """The worker-measured wall time of an envelope's root app span."""
    try:
        spans = envelope["obs"]["spans"]
        duration = spans[0]["duration_s"]
    except (KeyError, IndexError, TypeError):
        return None
    return float(duration) if duration is not None else None


def _envelope_snapshot(envelope: Dict[str, Any]) -> Optional[MetricsSnapshot]:
    """The metrics snapshot an envelope carried back, if any."""
    obs = envelope.get("obs")
    if not isinstance(obs, dict):
        return None
    return MetricsSnapshot.from_dict(obs)


def _source_for(kind: str, app_name: str, params: Dict[str, Any]) -> str:
    """The source text whose content addresses this task's cache entry."""
    if kind == "analyze":
        # Request-supplied sources (the service path): the canonical
        # concatenation of every file's path and text, so any edit -- or
        # a rename -- re-analyzes, while the same app posted in a
        # different batch (or by a different client) still hits.
        return "\x00".join(
            f"{path}\n{text}"
            for path, text in params["sources"][app_name]
        )
    if kind == "table2":
        from ..corpus.injector import injected_source

        return injected_source(app_name)
    if kind in ("generated", "gen-timing"):
        # Generated apps have no registry entry: regenerate the source
        # from the (config, index) coordinates carried in the params.
        from ..corpus.generator import (
            generate_app, generated_app_index, GeneratorConfig,
        )

        gconfig = GeneratorConfig.from_dict(params["generator"])
        return generate_app(gconfig, generated_app_index(app_name)).source
    from ..corpus import app

    return app(app_name).source()


@dataclass
class RunStats:
    """What one driver invocation actually did."""

    analyzed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    #: apps that ended in a fault (error envelope) instead of a result
    faulted: int = 0
    #: transient-fault re-submissions performed
    retries: int = 0
    #: faults that were per-app deadline expiries
    timeouts: int = 0
    #: cache entries quarantined as ``.json.corrupt`` during this run
    cache_corrupt: int = 0
    #: fault-kind histogram, e.g. ``{"parse": 1, "timeout": 1}``
    fault_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.analyzed + self.cached

    def to_snapshot(self) -> MetricsSnapshot:
        """The run's fan-out/cache behaviour as a metrics snapshot --
        the structured form behind every stderr summary and
        ``--metrics-out`` payload."""
        counters = {
            "runner.apps.analyzed": self.analyzed,
            "runner.apps.cached": self.cached,
            "runner.cache.hits": self.cache_hits,
            "runner.cache.misses": self.cache_misses,
            "runner.cache.stores": self.cache_stores,
        }
        # Fault-tolerance counters appear only on runs that needed them,
        # keeping fault-free metrics payloads byte-stable across versions.
        if self.faulted:
            counters["runner.apps.faulted"] = self.faulted
        if self.retries:
            counters["runner.retries"] = self.retries
        if self.timeouts:
            counters["runner.timeouts"] = self.timeouts
        if self.cache_corrupt:
            counters["runner.cache.corrupt"] = self.cache_corrupt
        for kind in sorted(self.fault_kinds):
            counters[f"runner.faults.{kind}"] = self.fault_kinds[kind]
        return MetricsSnapshot(
            counters=counters,
            gauges={
                "runner.jobs": float(self.jobs),
                "runner.wall_seconds": self.wall_seconds,
            },
        )

    def describe(self) -> str:
        from ..obs import describe_run

        return describe_run(self.to_snapshot())


@dataclass
class RunMetrics:
    """Observability bundle for one driver invocation."""

    #: fan-out and cache behaviour of the run itself
    run: MetricsSnapshot
    #: per-app analysis snapshots, in input-app order (cache hits replay
    #: the snapshot recorded when the entry was built)
    apps: Dict[str, MetricsSnapshot] = field(default_factory=dict)

    def totals(self) -> MetricsSnapshot:
        """Counters/gauges summed over every app in the run."""
        return merge_snapshots(self.apps.values())


class CorpusRunner:
    """Fan per-app analysis tasks out over processes, behind the cache.

    ``jobs <= 1`` runs in-process (no executor), which is also the
    fallback when only one app misses the cache.  ``cache=None`` disables
    caching entirely.

    ``policy`` governs fault tolerance (per-app timeout, transient
    retries, keep-going vs fail-fast); the default fails fast with a
    one-line :class:`~repro.resilience.FaultError`.  Apps that end in a
    fault under ``keep_going`` come back as ``{"error": {...}}``
    payloads -- drivers skip them -- and the normalized faults are
    exposed, in input-app order, as :attr:`last_faults`.

    ``events`` attaches a :class:`repro.obs.RunEventLog`: the runner
    narrates each run as a structured event stream (run-start, per-app
    lifecycle, run-end) flushed in input-app order.  ``memory=True``
    turns on tracemalloc peak gauges in every worker; it joins the cache
    fingerprint, so instrumented and plain runs never share entries.

    ``telemetry`` attaches a :class:`repro.obs.LiveAggregator`: the
    runner feeds it each app's outcome (and metrics snapshot) the moment
    it lands, which is what the ``--serve-telemetry`` endpoint reads
    mid-run.  The aggregator is a pure observer -- results, reports and
    bench counters are byte-identical with and without it.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[FaultPolicy] = None,
                 events: Optional[RunEventLog] = None,
                 memory: bool = False,
                 telemetry: Optional[LiveAggregator] = None) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.policy = policy or FaultPolicy()
        self.events = events
        self.memory = bool(memory)
        self.telemetry = telemetry
        self.last_stats: Optional[RunStats] = None
        self.last_metrics: Optional[RunMetrics] = None
        self.last_faults: List[Fault] = []

    @staticmethod
    def _fingerprint(params: Dict[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "config": config_fingerprint(params.get("config"))
        }
        for name, value in params.items():
            # "sources" is content-addressed per app via _source_for;
            # hashing the whole map here would key every entry on its
            # *batch* composition and defeat cross-request cache hits.
            if name not in ("config", "sources"):
                out[name] = value
        # An active fault-injection plan changes analysis outcomes, so
        # its digest joins the key: injected results can never poison --
        # or be satisfied by -- the regular cache.
        plan = active_plan()
        if plan is not None:
            out["fault_plan"] = plan.digest()
        return out

    def run(
        self,
        kind: str,
        app_names: Sequence[str],
        params: Optional[Dict[str, Any]] = None,
    ) -> Tuple[List[Dict[str, Any]], RunStats]:
        """Execute ``kind`` for every app; results follow the input order."""
        if kind not in _TASKS:
            raise ValueError(f"unknown task kind {kind!r}; "
                             f"expected one of {TASK_KINDS}")
        start = time.perf_counter()
        params = dict(params or {})
        if self.memory:
            # only set when on, so plain runs keep their cache keys
            params["memory"] = True
        fingerprint = self._fingerprint(params)
        cache_base = (
            (self.cache.hits, self.cache.misses, self.cache.stores,
             self.cache.corrupt)
            if self.cache is not None else (0, 0, 0, 0)
        )

        events = self.events
        telemetry = self.telemetry
        if events is not None:
            events.run_start(kind, app_names)
        if telemetry is not None:
            telemetry.run_started(kind, len(dict.fromkeys(app_names)))

        envelopes: Dict[str, Dict[str, Any]] = {}
        keys: Dict[str, str] = {}
        pending: List[str] = []
        for name in app_names:
            if name in envelopes or name in pending:
                continue  # duplicate input name: analyze once
            if self.cache is not None:
                key = cache_key(kind, _source_for(kind, name, params),
                                fingerprint)
                keys[name] = key
                hit = self.cache.lookup(key)
                if hit is not None:
                    envelopes[name] = hit
                    if events is not None:
                        events.app_event(name, "app-start")
                        events.app_event(name, "cache-hit")
                        events.app_done(name, "cached",
                                        _envelope_duration(hit))
                    if telemetry is not None:
                        telemetry.app_finished(
                            name, "cached", _envelope_duration(hit),
                            _envelope_snapshot(hit),
                        )
                    continue
            pending.append(name)

        events_observer = None
        if events is not None:
            def events_observer(event: str, name: str,
                                payload: Any) -> None:
                if event == "start":
                    events.app_event(name, "app-start")
                elif event == "retry":
                    events.app_event(name, "retry", kind=payload.kind)
                elif event == "fault":
                    if payload.kind == "timeout" \
                            and self.policy.timeout is not None:
                        events.app_event(name, "timeout",
                                         seconds=self.policy.timeout)
                    events.app_event(name, "fault", kind=payload.kind)
                    events.app_done(name, "faulted")
                elif event == "ok":
                    events.app_done(name, "analyzed",
                                    _envelope_duration(payload))

        telemetry_observer = None
        if telemetry is not None:
            def telemetry_observer(event: str, name: str,
                                   payload: Any) -> None:
                if event == "start":
                    telemetry.app_started(name)
                elif event == "retry":
                    telemetry.record_retry()
                elif event == "fault":
                    telemetry.app_finished(name, "faulted")
                elif event == "ok":
                    telemetry.app_finished(
                        name, "analyzed", _envelope_duration(payload),
                        _envelope_snapshot(payload),
                    )

        observer = compose_observers([events_observer, telemetry_observer])

        retries = 0
        faults: Dict[str, Fault] = {}
        if pending:
            outcome = run_tasks(kind, pending, params, self.jobs,
                                self.policy, observer)
            envelopes.update(outcome.envelopes)
            retries = outcome.retries
            faults = outcome.faults
            if self.cache is not None:
                for name in pending:
                    # Error envelopes are never cached: a transient
                    # fault must not replay from disk as a permanent one.
                    if name not in faults:
                        self.cache.store(keys[name], envelopes[name])

        stats = RunStats(
            analyzed=len(pending) - len(faults),
            cached=len(envelopes) - len(pending),
            wall_seconds=time.perf_counter() - start,
            jobs=self.jobs,
            faulted=len(faults),
            retries=retries,
        )
        for fault in faults.values():
            stats.fault_kinds[fault.kind] = \
                stats.fault_kinds.get(fault.kind, 0) + 1
        stats.timeouts = stats.fault_kinds.get("timeout", 0)
        if self.cache is not None:
            stats.cache_hits = self.cache.hits - cache_base[0]
            stats.cache_misses = self.cache.misses - cache_base[1]
            stats.cache_stores = self.cache.stores - cache_base[2]
            stats.cache_corrupt = self.cache.corrupt - cache_base[3]
        if events is not None:
            events.run_end(
                analyzed=stats.analyzed,
                cached=stats.cached,
                faulted=stats.faulted,
                wall_seconds=round(stats.wall_seconds, 6),
            )
        if telemetry is not None:
            telemetry.run_finished(stats.to_snapshot())
        self.last_stats = stats
        self.last_faults = [faults[name] for name in app_names
                            if name in faults]
        self.last_metrics = RunMetrics(
            run=stats.to_snapshot(),
            apps={
                name: MetricsSnapshot.from_dict(envelopes[name]["obs"])
                for name in app_names
                if name in envelopes and "obs" in envelopes[name]
            },
        )
        return [
            envelopes[name]["data"] if "data" in envelopes[name]
            else {"error": envelopes[name]["error"]}
            for name in app_names
        ], stats
